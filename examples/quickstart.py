#!/usr/bin/env python3
"""Quickstart: compute the well-founded model of a program with negation.

This walks through the core workflow of the library:

1. write a logic program with negation (the win–move game of Example 5.2);
2. compute its alternating fixpoint partial model — by Theorem 7.8 this is
   the well-founded model;
3. inspect the three-valued verdicts and the Table-I-style iteration trace;
4. compare with the stable models of the same program.

Run with:  python examples/quickstart.py
"""

from repro import parse_program, alternating_fixpoint
from repro.core import stable_models
from repro.engine import solve, ask, answers


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A program with recursive negation: the win-move game.
    #    Position X is won when some move leads to a position the opponent
    #    cannot win.  The graph has a draw cycle (a <-> b) and a decided
    #    tail (b -> c -> d).
    # ------------------------------------------------------------------ #
    program = parse_program(
        """
        move(a, b).  move(b, a).  move(b, c).  move(c, d).
        wins(X) :- move(X, Y), not wins(Y).
        """
    )

    # ------------------------------------------------------------------ #
    # 2. The alternating fixpoint = the well-founded partial model.
    # ------------------------------------------------------------------ #
    result = alternating_fixpoint(program)
    print("== Alternating fixpoint partial model ==")
    print("true      :", sorted(str(a) for a in result.true_atoms() if a.predicate == "wins"))
    print("false     :", sorted(str(a) for a in result.false_atoms() if a.predicate == "wins"))
    print("undefined :", sorted(str(a) for a in result.undefined_atoms if a.predicate == "wins"))
    print("total model?", result.is_total)
    print()

    # ------------------------------------------------------------------ #
    # 3. The iteration trace: underestimates and overestimates of the
    #    negative conclusions alternate until the even stages converge.
    # ------------------------------------------------------------------ #
    print("== Iteration trace (Table I style) ==")
    for stage in result.stages:
        kind = "under" if stage.is_underestimate else "over "
        negatives = sorted(f"~{a}" for a in stage.negative if a.predicate == "wins")
        positives = sorted(str(a) for a in stage.positive if a.predicate == "wins")
        print(f"  k={stage.index} ({kind})  false={negatives}  S_P={positives}")
    print()

    # ------------------------------------------------------------------ #
    # 4. Stable models: the draw cycle is resolved both ways.
    # ------------------------------------------------------------------ #
    print("== Stable models ==")
    for model in stable_models(program):
        wins = sorted(str(a) for a in model.true_atoms if a.predicate == "wins")
        print("  stable model with wins =", wins)
    print()

    # ------------------------------------------------------------------ #
    # 5. The one-call engine API with queries.
    # ------------------------------------------------------------------ #
    solution = solve(program)  # picks the alternating fixpoint automatically
    print("== Queries ==")
    print("  wins(c)?           ", ask(solution, "wins(c)").value)
    print("  wins(a)?           ", ask(solution, "wins(a)").value)
    print("  who surely wins?   ", sorted(a["X"] for a in answers(solution, "wins(X)")))


if __name__ == "__main__":
    main()
