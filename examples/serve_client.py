#!/usr/bin/env python3
"""Driving the knowledge-base HTTP service end to end.

``repro serve`` exposes a live :class:`repro.KnowledgeBase` as a JSON API:
snapshot-isolated paginated queries, ground asks, explanations, and
serialized ``assert``/``retract``/``batch`` writes — every response
stamped with the model *epoch* it was served at, so a client can tell
exactly which version of the world it is looking at.

This example starts the server in-process on an ephemeral port (the same
:func:`repro.service.run_server` the CLI uses), then walks the whole API
with plain :mod:`urllib`:

1. paginated and filtered queries (``/query/<predicate>?a0=...``),
2. three-valued asks and answer enumeration (``/ask?q=...``),
3. a proof tree over HTTP (``/explain?atom=...``),
4. single writes and an atomic batch, watching the epoch advance,
5. the error surface: a 404 route and a 400 malformed write,
6. health/readiness probes and the service counters.

Run with:  python examples/serve_client.py
"""

import json
import threading
import urllib.error
import urllib.request

from repro import KnowledgeBase
from repro.service import QueryService, ServiceHTTPServer

RULES = """
wins(X) :- move(X, Y), not wins(Y).
reach(X, Y) :- move(X, Y).
reach(X, Z) :- reach(X, Y), move(Y, Z).
"""

MOVES = [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")]


def call(base: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON request; returns (status, payload) without raising."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    kb = KnowledgeBase(RULES, facts={"move": MOVES})
    service = QueryService(kb).start()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    host, port = httpd.server_address[:2]
    base = f"http://{host}:{port}"
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    print(f"serving on {base}")

    # ------------------------------------------------------------------ #
    # 1. Queries: paginated rows, positional filters, the undefined stratum.
    # ------------------------------------------------------------------ #
    status, wins = call(base, "/query/wins")
    print(f"\nwins at epoch {wins['epoch']}: {wins['rows']}")

    status, page = call(base, "/query/reach?per_page=3&page=2")
    meta = page["pagination"]
    print(f"reach page {meta['page']}/{meta['pages']} of {meta['total']}: {page['rows']}")

    status, from_b = call(base, "/query/reach?a0=b")
    print(f"reach from b: {from_b['rows']}")

    status, undefined = call(base, "/query/wins?truth=undefined")
    print(f"undefined wins: {undefined['rows']}  (a<->b cycle is unresolved)")

    # ------------------------------------------------------------------ #
    # 2. Asks: ground verdicts and answer substitutions.
    # ------------------------------------------------------------------ #
    status, verdict = call(base, "/ask?q=wins(c)")
    print(f"\nwins(c)? {verdict['verdict']}")
    status, answers = call(base, "/ask?q=reach(a,%20X)")
    print(f"reach(a, X) answers: {answers['answers']}")

    # ------------------------------------------------------------------ #
    # 3. Explanations travel over HTTP too.
    # ------------------------------------------------------------------ #
    status, explanation = call(base, "/explain?atom=wins(c)")
    print(f"\nwhy wins(c) is {explanation['verdict']}:")
    for line in explanation["explanation"][:4]:
        print(f"  {line}")

    # ------------------------------------------------------------------ #
    # 4. Writes: single mutations and an atomic batch bump the epoch.
    # ------------------------------------------------------------------ #
    status, written = call(base, "/assert", {"fact": "move(d, e)"})
    print(f"\nasserted move(d, e): changed={written['changed']} epoch={written['epoch']}")
    status, batch = call(
        base,
        "/batch",
        {
            "operations": [
                {"op": "retract", "fact": "move(d, e)"},
                {"op": "assert", "fact": "move(d, a)"},
            ]
        },
    )
    print(f"batch applied={batch['applied']} changed={batch['changed']} epoch={batch['epoch']}")
    status, wins = call(base, "/query/wins")
    print(f"wins at epoch {wins['epoch']}: {wins['rows']}")

    # ------------------------------------------------------------------ #
    # 5. The uniform error payload: {"error": {code, message, status}}.
    # ------------------------------------------------------------------ #
    status, missing = call(base, "/no-such-route")
    print(f"\nGET /no-such-route -> {status} {missing['error']['code']}")
    status, invalid = call(base, "/assert", {"fact": "move(X, b)"})
    print(f"POST non-ground fact -> {status} {invalid['error']['code']}")

    # ------------------------------------------------------------------ #
    # 6. Operational surface: probes and counters.
    # ------------------------------------------------------------------ #
    status, health = call(base, "/healthz")
    status, ready = call(base, "/readyz")
    status, stats = call(base, "/stats")
    print(f"\nhealthz: {health['status']}  readyz: {ready['status']}")
    interesting = {k: v for k, v in stats["counters"].items() if "service." in k}
    print(f"counters: {interesting}")

    httpd.shutdown()
    httpd.server_close()
    service.stop()
    kb.close()
    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
