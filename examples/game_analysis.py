#!/usr/bin/env python3
"""Game analysis with the well-founded semantics (Example 5.2 / Figure 4).

The win–move game is the canonical program with *recursive* negation: it
cannot be stratified, yet the well-founded semantics gives every position a
natural status — won, lost, or drawn.  This example analyses the paper's
three Figure 4 graphs and a larger random tournament, and shows how the
stable models enumerate the ways draws could be broken.

Run with:  python examples/game_analysis.py
"""

from repro.core import stable_models
from repro.games import (
    figure4a_edges,
    figure4b_edges,
    figure4c_edges,
    random_game_edges,
    solve_game,
    win_move_program,
)


def describe(name: str, edges) -> None:
    solution = solve_game(edges)
    print(f"--- {name} ({len(edges)} moves) ---")
    print("  won  :", sorted(map(str, solution.won)))
    print("  lost :", sorted(map(str, solution.lost)))
    print("  drawn:", sorted(map(str, solution.drawn)))
    print("  total model:", solution.result.is_total,
          "| alternating-fixpoint iterations:", solution.result.iterations)
    print()


def main() -> None:
    print("=== The three graphs of Figure 4 ===\n")
    describe("Figure 4(a): acyclic", figure4a_edges())
    describe("Figure 4(b): cycle with a tail (partial model)", figure4b_edges())
    describe("Figure 4(c): cycle but total model", figure4c_edges())

    # ------------------------------------------------------------------ #
    # Stable models break the draws of Figure 4(b) in both directions.
    # ------------------------------------------------------------------ #
    print("=== Stable models of Figure 4(b): the draw resolved both ways ===")
    program = win_move_program(figure4b_edges())
    for index, model in enumerate(stable_models(program), start=1):
        wins = sorted(a.args[0].value for a in model.true_atoms if a.predicate == "wins")
        print(f"  stable model {index}: wins = {wins}")
    print()

    # ------------------------------------------------------------------ #
    # A bigger random tournament: the well-founded analysis scales
    # polynomially (Section 5), unlike stable-model enumeration.
    # ------------------------------------------------------------------ #
    print("=== A random 40-position tournament ===")
    edges = random_game_edges(nodes=40, out_degree=3, seed=11)
    solution = solve_game(edges)
    print(f"  positions: {len(solution.won) + len(solution.lost) + len(solution.drawn)}")
    print(f"  won {len(solution.won)} / lost {len(solution.lost)} / drawn {len(solution.drawn)}")
    print(f"  alternating-fixpoint iterations: {solution.result.iterations}")
    sample = sorted(map(str, solution.drawn))[:6]
    print(f"  a few drawn positions (locked in cycles): {sample}")


if __name__ == "__main__":
    main()
