#!/usr/bin/env python3
"""A persistent knowledge base: close the process, keep the facts.

The paper's deductive-database framing (Section 2.5) separates the rule
set from the EDB instance it is applied to.  With the pluggable
:class:`repro.FactStore` storage layer the EDB can live in a SQLite file:
``KnowledgeBase.open("kb.db")`` binds a session to the durable backend,
every ``assert_fact`` / ``retract_fact`` is written through, aborted
batches never reach disk, and reopening the same path restores the exact
fact base — and therefore the exact query answers.

This example builds a small flight-connections database, closes it,
reopens it as a "second process" would, and shows the derived relation
surviving the round trip.  It also shows the same rules evaluated over
two different store backends (memory and SQLite) producing identical
models — the storage choice changes durability, never answers.

Run with:  python examples/persistent_kb.py
"""

import os
import tempfile

from repro import KnowledgeBase, MemoryStore

RULES = """
connected(X, Y) :- flight(X, Y).
connected(X, Y) :- flight(X, Z), connected(Z, Y).
isolated(X) :- airport(X), not connected(hub, X).
"""

FLIGHTS = [("hub", "ams"), ("ams", "osl"), ("osl", "hel")]
AIRPORTS = [("hub",), ("ams",), ("osl",), ("hel",), ("lux",)]


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="repro-"), "flights.db")

    # ------------------------------------------------------------------ #
    # 1. First session: create the database file and load the EDB.
    # ------------------------------------------------------------------ #
    with KnowledgeBase.open(path, RULES) as kb:
        kb.load({"flight": FLIGHTS, "airport": AIRPORTS})
        print("== First session ==")
        print("facts stored      :", kb.fact_count())
        print("reachable from hub:", sorted(row[1] for row in kb.query("connected", "hub", None)))
        print("isolated airports :", sorted(row[0] for row in kb.query("isolated")))

        # An aborted batch is rolled back before it ever reaches disk.
        try:
            with kb.batch():
                kb.assert_fact("flight", "hel", "lux")
                raise RuntimeError("change of plans")
        except RuntimeError:
            pass
        print("after aborted batch, hel->lux stored:", kb.store.contains("flight", "hel", "lux"))

    # ------------------------------------------------------------------ #
    # 2. Second session (a new process would look the same): reopen and
    #    query — the EDB, and hence the model, is restored from the file.
    # ------------------------------------------------------------------ #
    with KnowledgeBase.open(path, RULES) as kb:
        print("\n== Reopened session ==")
        print("facts restored    :", kb.fact_count())
        print("reachable from hub:", sorted(row[1] for row in kb.query("connected", "hub", None)))
        kb.assert_fact("flight", "hel", "lux")      # this one is for real
        print("isolated after hel->lux:", sorted(row[0] for row in kb.query("isolated")))

    # ------------------------------------------------------------------ #
    # 3. Same rules, different backend: answers are backend-independent.
    # ------------------------------------------------------------------ #
    memory = KnowledgeBase(RULES, store=MemoryStore())
    memory.load({"flight": FLIGHTS + [("hel", "lux")], "airport": AIRPORTS})
    with KnowledgeBase.open(path, RULES) as durable:
        assert sorted(memory.query("connected")) == sorted(durable.query("connected"))
        assert sorted(memory.query("isolated")) == sorted(durable.query("isolated"))
        print("\nmemory and sqlite sessions agree on every derived tuple")

    os.remove(path)


if __name__ == "__main__":
    main()
