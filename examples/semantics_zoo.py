#!/usr/bin/env python3
"""A tour of the semantics the paper compares (Sections 2.1–2.4).

One small program family is evaluated under every semantics implemented in
the library — Horn minimum model, stratified/perfect, Fitting (Kripke–
Kleene), inflationary (IFP), well-founded (via the alternating fixpoint and
via unfounded sets), and stable models — so their agreements and
disagreements can be seen side by side.

Run with:  python examples/semantics_zoo.py
"""

from repro.datalog import parse_program
from repro.datalog.atoms import atom
from repro.semantics import compare_semantics

PROGRAMS = {
    "barber (odd negative loop)": (
        """
        % The barber shaves those who do not shave themselves.
        shaves_self :- not shaves_self.
        villager.
        """,
        [atom("shaves_self"), atom("villager")],
    ),
    "choice (even negative loop)": (
        """
        coffee :- not tea.
        tea :- not coffee.
        awake :- coffee.
        awake :- tea.
        """,
        [atom("coffee"), atom("awake")],
    ),
    "work-shift rules (stratified)": (
        """
        assigned(alice).
        backup(bob).
        on_call(X) :- backup(X), not assigned(X).
        covered :- assigned(X).
        """,
        [atom("on_call", "bob"), atom("on_call", "alice"), atom("covered")],
    ),
    "positive cycle (WFS vs Fitting)": (
        """
        installed(app) :- depends(app).
        depends(app) :- installed(app).
        broken :- not installed(app).
        """,
        [atom("installed", "app"), atom("broken")],
    ),
}

COLUMNS = [
    ("well_founded", "WFS"),
    ("alternating_fixpoint", "AFP"),
    ("fitting", "Fitting"),
    ("stratified", "Stratified"),
    ("inflationary", "IFP"),
    ("stable", "Stable"),
]


def main() -> None:
    for title, (text, probes) in PROGRAMS.items():
        program = parse_program(text)
        comparison = compare_semantics(program)
        print(f"=== {title} ===")
        print("    " + "".join(f"{label:>12s}" for _, label in COLUMNS))
        for probe in probes:
            verdicts = comparison.verdicts_for(probe)
            row = "".join(f"{verdicts[key]:>12s}" for key, _ in COLUMNS)
            print(f"  {str(probe):<22s}{row}")
        agreement = "yes" if comparison.agreement_afp_wfs() else "NO"
        stable_count = "skipped" if comparison.stable is None else len(comparison.stable)
        print(f"  (Theorem 7.8 AFP == WFS: {agreement}; stable models: {stable_count})")
        print()


if __name__ == "__main__":
    main()
