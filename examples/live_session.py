#!/usr/bin/env python3
"""A live knowledge-base session: update the EDB, keep the model warm.

The deductive-database reading of the paper (Section 2.5) is a database
that evolves: facts arrive and are retracted while the rule set stays
fixed.  This example drives a :class:`repro.KnowledgeBase` through a game
season:

1. load the opening move graph and query who wins;
2. assert and retract moves and watch verdicts flip — each update
   re-solves only the dependency-graph components downstream of the
   change (the ``last_update`` stats show the reuse);
3. group a multi-move rebalance in a transactional batch;
4. explain a verdict against the live model.

Run with:  python examples/live_session.py
"""

from repro import EngineConfig, KnowledgeBase
from repro.workloads import layered_program


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A session over the win-move rules, EDB loaded separately.
    # ------------------------------------------------------------------ #
    kb = KnowledgeBase("wins(X) :- move(X, Y), not wins(Y).")
    kb.load({"move": [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")]})

    print("== Opening position ==")
    print("winning positions:", sorted(row[0] for row in kb.query("wins")))
    print("drawn (undefined):", sorted(row[0] for row in kb.query("wins").undefined))

    # ------------------------------------------------------------------ #
    # 2. The board changes: d gets an escape move, c's win evaporates.
    # ------------------------------------------------------------------ #
    kb.assert_fact("move", "d", "e")
    print("\n== After move(d, e) is asserted ==")
    print("winning positions:", sorted(row[0] for row in kb.query("wins")))
    print("wins(c) verdict  :", kb.value_of("wins(c)").value)

    kb.retract_fact("move", "d", "e")
    print("after retraction :", sorted(row[0] for row in kb.query("wins")))

    # ------------------------------------------------------------------ #
    # 3. Batched updates are transactional and refresh once.
    # ------------------------------------------------------------------ #
    with kb.batch():
        kb.retract_fact("move", "b", "c")
        kb.assert_fact("move", "c", "b")
    print("\n== After the batched rebalance ==")
    print("winning positions:", sorted(row[0] for row in kb.query("wins")))
    print("drawn (undefined):", sorted(row[0] for row in kb.query("wins").undefined))

    # ------------------------------------------------------------------ #
    # 4. Explanations read the same live model.
    # ------------------------------------------------------------------ #
    print("\n== Why does c hold its verdict? ==")
    print(kb.explain("wins(c)").render())

    # ------------------------------------------------------------------ #
    # 5. Ground programs get incremental maintenance: only components
    #    downstream of the change are re-solved.
    # ------------------------------------------------------------------ #
    tower = KnowledgeBase(
        layered_program(8, 40), config=EngineConfig(semantics="well-founded")
    )
    tower.solution
    tower.assert_fact("chain(7, 39)")
    tower.solution  # reads trigger the refresh; updates themselves are lazy
    stats = tower.last_update
    print("\n== Incremental refresh on an 8-layer tower ==")
    print(stats.describe())
    print(f"reuse: {stats.reuse_fraction:.0%} of components kept their frozen verdict")


if __name__ == "__main__":
    main()
