#!/usr/bin/env python3
"""Alternating fixpoint logic with first-order rule bodies (Section 8).

Example 8.2 of the paper defines the *well-founded nodes* of a graph — the
nodes with no infinite descending chain of edges into them — with a single
rule whose body is a negated universal/existential formula::

    w(X) <- not exists Y ( e(Y, X) and not w(Y) )

This example:

1. evaluates that rule directly with the generalised alternating fixpoint
   (alternating fixpoint logic);
2. applies the Lloyd–Topor elementary simplification to obtain the normal
   program ``w(X) :- not u(X).  u(X) :- e(Y, X), not w(Y).`` and re-evaluates
   with the ordinary alternating fixpoint (Theorem 8.7: the positive parts
   agree);
3. runs a fixpoint-logic (FP) transitive closure and checks Theorem 8.1.

Run with:  python examples/first_order_bodies.py
"""

from repro.core import alternating_fixpoint
from repro.datalog import Program
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.fol import (
    FiniteStructure,
    GeneralProgram,
    GeneralRule,
    and_,
    atom_formula,
    exists,
    fixpoint_logic_model,
    general_alternating_fixpoint,
    lloyd_topor_transform,
    domain_facts,
    not_,
    or_,
)


def well_founded_rule() -> GeneralRule:
    return GeneralRule(
        Atom("w", (Variable("X"),)),
        not_(exists(["Y"], and_(atom_formula("e", "Y", "X"), not_(atom_formula("w", "Y"))))),
    )


def tc_rule() -> GeneralRule:
    return GeneralRule(
        Atom("tc", (Variable("X"), Variable("Y"))),
        or_(
            atom_formula("e", "X", "Y"),
            exists(["Z"], and_(atom_formula("e", "X", "Z"), atom_formula("tc", "Z", "Y"))),
        ),
    )


def main() -> None:
    # A graph with a well-founded chain (1 -> 2 -> 3), a self-loop (4) and a
    # node fed by the loop (5).
    structure = FiniteStructure.from_edges(
        [(1, 2), (2, 3), (4, 4), (4, 5)], relation="e"
    )
    general = GeneralProgram([well_founded_rule()])

    # -- 1. Alternating fixpoint logic on the first-order rule ------------- #
    direct = general_alternating_fixpoint(general, structure)
    print("== Example 8.2 evaluated directly (alternating fixpoint logic) ==")
    print("  well-founded nodes :", sorted(a.args[0].value for a in direct.true_of_predicate("w")))
    print("  unfounded nodes    :", sorted(a.args[0].value for a in direct.false_of_predicate("w")))
    print("  total model?", direct.is_total)
    print()

    # -- 2. Lloyd–Topor transformation into a normal program --------------- #
    transformed = lloyd_topor_transform(general)
    print("== The normal program produced by elementary simplification ==")
    for rule in transformed.program:
        print("  ", rule)
    print("  auxiliary relations:", dict(transformed.auxiliary_polarity))
    print()

    pieces = [transformed.program, structure.edb.as_program()]
    if transformed.domain_predicate:
        pieces.append(domain_facts(structure, transformed.domain_predicate))
    normal_result = alternating_fixpoint(Program.union(*pieces))
    w_true = sorted(
        a.args[0].value for a in normal_result.true_atoms() if a.predicate == "w"
    )
    print("  positive w atoms of the normal program's AFP model:", w_true)
    print("  (Theorem 8.7: matches the direct evaluation above)")
    print()

    # -- 3. Fixpoint logic and Theorem 8.1 --------------------------------- #
    fp_structure = FiniteStructure.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)], relation="e")
    fp_program = GeneralProgram([tc_rule()])
    fp = fixpoint_logic_model(fp_program, fp_structure)
    afp = general_alternating_fixpoint(fp_program, fp_structure)
    print("== Theorem 8.1 on a transitive-closure FP system ==")
    print("  FP least fixpoint size      :", len(fp.true_atoms))
    print("  positive part of AFP model  :", len(afp.positive_fixpoint))
    print("  identical?", fp.true_atoms == afp.positive_fixpoint)


if __name__ == "__main__":
    main()
