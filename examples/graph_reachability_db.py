#!/usr/bin/env python3
"""Deductive-database example: graph queries over an EDB (Example 2.1).

The paper motivates logic programs as query languages over an extensional
database.  This example loads a small flight network as an EDB, defines the
concepts of Example 2.1 (paths, their complement, sources) as IDB rules,
and answers the example queries — including the complement of transitive
closure, which needs the well-founded / stratified semantics and famously
misbehaves under the inflationary semantics (Example 2.2).

Run with:  python examples/graph_reachability_db.py
"""

from repro.datalog import Database, parse_program
from repro.engine import answers, ask, solve
from repro.semantics import compare_semantics
from repro.datalog.atoms import atom


FLIGHTS = [
    ("lisbon", "madrid"),
    ("madrid", "paris"),
    ("paris", "berlin"),
    ("berlin", "warsaw"),
    ("paris", "rome"),
    ("rome", "athens"),
    ("athens", "rome"),       # a cycle: rome <-> athens
    ("reykjavik", "oslo"),    # a separate component
]

RULES = """
% Example 2.1's concepts over an edge relation e/2.
node(X) :- e(X, Y).
node(Y) :- e(X, Y).

p(X, Y)  :- e(X, Y).                         % there is a path from X to Y
p(X, Y)  :- e(X, Z), p(Z, Y).
np(X, Y) :- node(X), node(Y), not p(X, Y).   % there is NO path from X to Y
hasin(Y) :- e(X, Y).
s(X)     :- node(X), not hasin(X).           % X is a source (no incoming edges)
"""


def main() -> None:
    database = Database.from_tuples({"e": FLIGHTS})
    rules = parse_program(RULES)
    solution = solve(rules, database=database)
    print("semantics chosen automatically:", solution.semantics)
    print()

    # -- Example 2.1's sample queries ----------------------------------- #
    print("Is there a path from lisbon to warsaw?",
          ask(solution, "p(lisbon, warsaw)").value)
    print("Is there a path from warsaw to lisbon?",
          ask(solution, "p(warsaw, lisbon)").value)

    reachable_from_lisbon = sorted(a["Y"] for a in answers(solution, "p(lisbon, Y)"))
    print("Everything reachable from lisbon:", reachable_from_lisbon)

    sources = sorted(a["X"] for a in answers(solution, "s(X)"))
    print("Sources (no incoming flights):", sources)

    # "What nodes have paths to berlin, but not to rome?"
    to_berlin_not_rome = sorted(
        a["X"] for a in answers(solution, "p(X, berlin), np(X, rome)")
    )
    print("Cities reaching berlin but not rome:", to_berlin_not_rome)

    # "Is there a path from any source to athens?"
    from_sources = sorted(a["X"] for a in answers(solution, "p(X, athens), s(X)"))
    print("Sources reaching athens:", from_sources)
    print()

    # -- Example 2.2: the complement of transitive closure -------------- #
    print("== np (complement of reachability) under different semantics ==")
    program = database.attach(rules)
    comparison = compare_semantics(program, enumerate_stable=False)
    probes = [
        atom("np", "rome", "lisbon"),      # genuinely unreachable
        atom("np", "lisbon", "rome"),      # reachable, so np must be false
        atom("np", "rome", "rome"),        # on the cycle: reachable from itself
    ]
    header = f"{'atom':28s} {'well-founded':>14s} {'stratified':>12s} {'fitting':>10s} {'inflationary':>14s}"
    print(header)
    for probe in probes:
        verdicts = comparison.verdicts_for(probe)
        print(
            f"{str(probe):28s} {verdicts['well_founded']:>14s} "
            f"{verdicts['stratified']:>12s} {verdicts['fitting']:>10s} "
            f"{verdicts['inflationary']:>14s}"
        )
    print()
    print("Note how the inflationary semantics claims np for *reachable* pairs")
    print("(it fires the negation in round one, before p has been computed),")
    print("and how Fitting cannot decide pairs involving the rome/athens cycle.")


if __name__ == "__main__":
    main()
