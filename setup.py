"""Legacy setup shim.

The environment this reproduction targets has no ``wheel`` package
available offline, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  Keeping a minimal ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` work everywhere;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
