"""Experiment E12 — ablation of the implementation choices.

DESIGN.md calls out three implementation decisions worth quantifying:

* the counting-based ``S_P`` evaluation versus the naive ``T_{P∪Ĩ}``
  iteration the definition literally prescribes;
* the relevance-pruned grounding versus the naive Herbrand instantiation;
* computing the well-founded model via the alternating fixpoint versus via
  the ``W_P`` (unfounded-set) iteration.

Each pair is benchmarked on the same workload with the results asserted
equal, so the ablation also serves as a differential correctness check.
"""

import pytest

from _metrics import emit, timed
from repro.core import (
    alternating_fixpoint,
    build_context,
    eventual_consequence,
    eventual_consequence_naive,
    well_founded_model,
)
from repro.fixpoint.lattice import NegativeSet
from repro.games import random_game_edges, win_move_program
from repro.workloads import complement_of_transitive_closure_program, random_propositional_program
from repro.games.graphs import chain_edges


PROGRAM = random_propositional_program(atoms=30, rules=90, seed=7)
GAME = win_move_program(random_game_edges(20, 3, seed=7))

# Best times seen so far this run, so the slow half of each ablation pair
# can emit the pair's speedup (tests run in file order).
_OBSERVED: dict[str, float] = {}


def _record(label: str, workload: str, best: float, fast_counterpart: str | None = None) -> None:
    _OBSERVED[label] = best
    speedups = {}
    if fast_counterpart is not None and fast_counterpart in _OBSERVED:
        speedups[f"{fast_counterpart}_over_{label}"] = best / _OBSERVED[fast_counterpart]
    emit(
        "ablation_strategies",
        workload=workload,
        timings={label: best},
        speedups=speedups,
    )


# --------------------------------------------------------------------- #
# Ablation 1: S_P evaluation strategy.
# --------------------------------------------------------------------- #
@pytest.mark.repro("E12")
def test_sp_counting_propagation(benchmark):
    context = build_context(PROGRAM)
    negatives = NegativeSet(sorted(context.base, key=str)[::2])
    fast, best = timed(benchmark, lambda: eventual_consequence(context, negatives))
    assert fast == eventual_consequence_naive(context, negatives)
    _record("sp_counting", "random_propositional:30x90", best)


@pytest.mark.repro("E12")
def test_sp_naive_iteration(benchmark):
    context = build_context(PROGRAM)
    negatives = NegativeSet(sorted(context.base, key=str)[::2])
    _, best = timed(benchmark, lambda: eventual_consequence_naive(context, negatives))
    _record("sp_naive", "random_propositional:30x90", best, fast_counterpart="sp_counting")


# --------------------------------------------------------------------- #
# Ablation 2: grounding strategy.
# --------------------------------------------------------------------- #
NTC = complement_of_transitive_closure_program(chain_edges(5))


@pytest.mark.repro("E12")
def test_grounding_relevant(benchmark):
    context, best = timed(benchmark, lambda: build_context(NTC, grounder="relevant"))
    assert context.rule_count > 0
    _record("ground_relevant", "ntc_chain:5", best)


@pytest.mark.repro("E12")
def test_grounding_naive(benchmark):
    context, best = timed(benchmark, lambda: build_context(NTC, grounder="naive"))
    # The naive instantiation is strictly larger but must give the same
    # derivable atoms.
    relevant = build_context(NTC, grounder="relevant")
    assert context.rule_count >= relevant.rule_count
    assert alternating_fixpoint(context).true_atoms() == alternating_fixpoint(relevant).true_atoms()
    _record("ground_naive", "ntc_chain:5", best, fast_counterpart="ground_relevant")


# --------------------------------------------------------------------- #
# Ablation 3: AFP iteration vs W_P iteration.
# --------------------------------------------------------------------- #
@pytest.mark.repro("E12")
@pytest.mark.parametrize("name,program", [("random-prop", PROGRAM), ("win-move", GAME)])
def test_wfs_via_alternating_fixpoint(benchmark, name, program):
    context = build_context(program)
    result, best = timed(benchmark, lambda: alternating_fixpoint(context))
    assert result.model is not None
    _record(f"wfs_afp:{name}", name, best)


@pytest.mark.repro("E12")
@pytest.mark.parametrize("name,program", [("random-prop", PROGRAM), ("win-move", GAME)])
def test_wfs_via_unfounded_sets(benchmark, name, program):
    context = build_context(program)
    result, best = timed(benchmark, lambda: well_founded_model(context))
    afp = alternating_fixpoint(context)
    assert result.model.true_atoms == afp.true_atoms()
    assert result.model.false_atoms == afp.false_atoms()
    _record(f"wfs_unfounded:{name}", name, best, fast_counterpart=f"wfs_afp:{name}")
