"""Experiment E9 — Theorems 8.1, 8.6 and 8.7 (simulation of fixpoint logic).

A fixpoint-logic system evaluated three ways must agree on the original
relations:

1. the FP least fixpoint;
2. the positive part of the alternating fixpoint of the same general
   program (Theorem 8.1);
3. the positive part of the AFP model of the Lloyd–Topor normal program
   obtained by elementary simplifications (Theorems 8.6–8.7).

The benchmark measures each pipeline on reachability and well-foundedness
systems over graph workloads.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint
from repro.datalog import Program
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.fol import (
    FiniteStructure,
    GeneralProgram,
    GeneralRule,
    and_,
    atom_formula,
    domain_facts,
    exists,
    fixpoint_logic_model,
    general_alternating_fixpoint,
    lloyd_topor_transform,
    not_,
    or_,
)
from repro.games.graphs import chain_edges, lollipop_edges, random_digraph_edges


def tc_system() -> GeneralProgram:
    rule = GeneralRule(
        Atom("tc", (Variable("X"), Variable("Y"))),
        or_(
            atom_formula("e", "X", "Y"),
            exists(["Z"], and_(atom_formula("e", "X", "Z"), atom_formula("tc", "Z", "Y"))),
        ),
    )
    return GeneralProgram([rule])


def wf_system() -> GeneralProgram:
    rule = GeneralRule(
        Atom("w", (Variable("X"),)),
        not_(exists(["Y"], and_(atom_formula("e", "Y", "X"), not_(atom_formula("w", "Y"))))),
    )
    return GeneralProgram([rule])


GRAPHS = [
    ("chain-6", chain_edges(6)),
    ("lollipop-3-4", lollipop_edges(3, 4)),
    ("random-7", random_digraph_edges(7, 0.3, seed=9)),
]

SYSTEMS = [("reachability", tc_system, "tc"), ("well-foundedness", wf_system, "w")]


def _record(pipeline: str, system_name: str, graph_name: str, best: float) -> None:
    emit(
        "fp_simulation",
        workload=f"{system_name}:{graph_name}",
        timings={pipeline: best},
    )


def normal_program_for(system: GeneralProgram, structure: FiniteStructure) -> Program:
    transformed = lloyd_topor_transform(system)
    pieces = [transformed.program, structure.edb.as_program()]
    if transformed.domain_predicate:
        pieces.append(domain_facts(structure, transformed.domain_predicate))
    return Program.union(*pieces)


@pytest.mark.repro("E9")
@pytest.mark.parametrize("graph_name,edges", GRAPHS)
@pytest.mark.parametrize("system_name,system_factory,relation", SYSTEMS)
def test_fp_least_fixpoint(benchmark, graph_name, edges, system_name, system_factory, relation):
    structure = FiniteStructure.from_edges(edges, relation="e")
    system = system_factory()
    result, best = timed(benchmark, lambda: fixpoint_logic_model(system, structure))
    assert result.of_predicate(relation) == result.true_atoms
    _record("fp_least_fixpoint", system_name, graph_name, best)


@pytest.mark.repro("E9")
@pytest.mark.parametrize("graph_name,edges", GRAPHS)
@pytest.mark.parametrize("system_name,system_factory,relation", SYSTEMS)
def test_afp_logic_agrees_with_fp(benchmark, graph_name, edges, system_name, system_factory, relation):
    """Theorem 8.1: positive AFP part == FP least fixpoint."""
    structure = FiniteStructure.from_edges(edges, relation="e")
    system = system_factory()
    fp = fixpoint_logic_model(system, structure)

    afp, best = timed(benchmark, lambda: general_alternating_fixpoint(system, structure))

    assert afp.positive_fixpoint == fp.true_atoms
    _record("general_afp", system_name, graph_name, best)


@pytest.mark.repro("E9")
@pytest.mark.parametrize("graph_name,edges", GRAPHS)
@pytest.mark.parametrize("system_name,system_factory,relation", SYSTEMS)
def test_lloyd_topor_normal_program_agrees_with_fp(
    benchmark, graph_name, edges, system_name, system_factory, relation
):
    """Theorems 8.6/8.7: the normal program preserves the positive part on
    the original relations."""
    structure = FiniteStructure.from_edges(edges, relation="e")
    system = system_factory()
    fp = fixpoint_logic_model(system, structure)
    program = normal_program_for(system, structure)

    result, best = timed(benchmark, lambda: alternating_fixpoint(program))

    original = {a for a in result.true_atoms() if a.predicate == relation}
    assert original == fp.true_atoms
    _record("lloyd_topor_afp", system_name, graph_name, best)
