"""Experiment E5 — Example 8.2 (well-founded nodes, first-order rule bodies).

The paper's Section 8 example defines the well-founded nodes of a graph
with a single FP-style rule and shows how elementary simplification turns
it into the normal program ``w(X) :- not u(X).  u(X) :- e(Y, X), not w(Y).``
These benchmarks evaluate both formulations on graph families with and
without cycles, asserting that the positive ``w`` atoms are exactly the
well-founded nodes in both cases (Theorem 8.7's agreement).
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint
from repro.datalog import Program
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.fol import (
    FiniteStructure,
    GeneralProgram,
    GeneralRule,
    and_,
    atom_formula,
    domain_facts,
    exists,
    general_alternating_fixpoint,
    lloyd_topor_transform,
    not_,
)
from repro.games.graphs import chain_edges, cycle_edges, lollipop_edges, nodes_of
from repro.workloads import well_founded_nodes_program


def wf_general_program() -> GeneralProgram:
    rule = GeneralRule(
        Atom("w", (Variable("X"),)),
        not_(exists(["Y"], and_(atom_formula("e", "Y", "X"), not_(atom_formula("w", "Y"))))),
    )
    return GeneralProgram([rule])


def expected_well_founded(edges):
    nodes = nodes_of(edges)
    predecessors = {n: {s for s, t in edges if t == n} for n in nodes}

    def has_infinite_chain(node, path):
        if node in path:
            return True
        return any(has_infinite_chain(p, path | {node}) for p in predecessors[node])

    return {n for n in nodes if not has_infinite_chain(n, set())}


GRAPHS = [
    ("chain-8", chain_edges(8)),
    ("cycle-5-plus-tail", lollipop_edges(5, 4)),
    ("pure-cycle-6", cycle_edges(6)),
]


def _record(formulation: str, graph_name: str, best: float) -> None:
    emit(
        "example82_wellfounded_nodes",
        workload=graph_name,
        timings={formulation: best},
    )


@pytest.mark.repro("E5")
@pytest.mark.parametrize("name,edges", GRAPHS)
def test_wellfounded_nodes_via_alternating_fixpoint_logic(benchmark, name, edges):
    structure = FiniteStructure.from_edges(edges, relation="e")
    program = wf_general_program()

    result, best = timed(benchmark, lambda: general_alternating_fixpoint(program, structure))

    winners = {a.args[0].value for a in result.true_of_predicate("w")}
    assert winners == expected_well_founded(edges)
    # On the first-order formulation the model is total: unfounded nodes are
    # explicitly false (negation of a universal closure is expressible).
    assert result.is_total
    _record("first_order_afp", name, best)


@pytest.mark.repro("E5")
@pytest.mark.parametrize("name,edges", GRAPHS)
def test_wellfounded_nodes_via_lloyd_topor_normal_program(benchmark, name, edges):
    structure = FiniteStructure.from_edges(edges, relation="e")
    transformed = lloyd_topor_transform(wf_general_program())
    pieces = [transformed.program, structure.edb.as_program()]
    if transformed.domain_predicate:
        pieces.append(domain_facts(structure, transformed.domain_predicate))
    program = Program.union(*pieces)

    result, best = timed(benchmark, lambda: alternating_fixpoint(program))

    winners = {a.args[0].value for a in result.true_atoms() if a.predicate == "w"}
    assert winners == expected_well_founded(edges)
    _record("lloyd_topor", name, best)


@pytest.mark.repro("E5")
@pytest.mark.parametrize("name,edges", GRAPHS)
def test_wellfounded_nodes_via_handwritten_normal_program(benchmark, name, edges):
    # The normal program exactly as printed in Example 8.2 (with a node
    # guard for safety).
    program = well_founded_nodes_program(edges)
    result, best = timed(benchmark, lambda: alternating_fixpoint(program))
    winners = {a.args[0].value for a in result.true_atoms() if a.predicate == "w"}
    assert winners == expected_well_founded(edges)
    _record("handwritten_normal", name, best)
