"""Experiment E3 — Figure 4 / Example 5.2 (win–move games).

Regenerates the three analyses of Figure 4:

* (a) acyclic move graph — total AFP model, winners ``{b, e, g}``;
* (b) cyclic graph with a tail — partial model: ``wins(c)`` true,
  ``wins(d)`` false, ``a``/``b`` drawn; two stable models resolve the draw;
* (c) cyclic graph with a total model — ``wins(b)`` true, the model is also
  the unique stable model.

Each benchmark times the alternating-fixpoint game analysis.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, stable_models, unique_stable_model
from repro.games import (
    figure4a_edges,
    figure4b_edges,
    figure4c_edges,
    solve_game,
    win_move_program,
)


def _record(figure: str, solution, best: float) -> None:
    emit(
        "fig4_winmove",
        workload=figure,
        sizes={
            "won": len(solution.won),
            "lost": len(solution.lost),
            "drawn": len(solution.drawn),
        },
        timings={"solve_game": best},
    )


@pytest.mark.repro("E3")
def test_fig4a_acyclic_total_model(benchmark, report):
    solution, best = timed(benchmark, lambda: solve_game(figure4a_edges()))
    assert solution.won == {"b", "e", "g"}
    assert solution.lost == {"a", "c", "d", "f", "h", "i"}
    assert solution.drawn == set()
    report(
        "Figure 4(a) — acyclic game",
        [("won", sorted(solution.won)), ("lost", sorted(solution.lost))],
    )
    # Total AFP model => unique stable model (Section 5).
    program = win_move_program(figure4a_edges())
    assert unique_stable_model(program).true_atoms == alternating_fixpoint(program).true_atoms()
    _record("figure4a", solution, best)


@pytest.mark.repro("E3")
def test_fig4b_cycle_partial_model(benchmark, report):
    solution, best = timed(benchmark, lambda: solve_game(figure4b_edges()))
    assert solution.won == {"c"}
    assert solution.lost == {"d"}
    assert solution.drawn == {"a", "b"}
    models = stable_models(win_move_program(figure4b_edges()))
    winners = {
        frozenset(a.args[0].value for a in model.true_atoms if a.predicate == "wins")
        for model in models
    }
    assert winners == {frozenset({"a", "c"}), frozenset({"b", "c"})}
    report(
        "Figure 4(b) — cyclic game, partial model",
        [
            ("won", sorted(solution.won)),
            ("lost", sorted(solution.lost)),
            ("drawn", sorted(solution.drawn)),
            ("stable models", [sorted(w) for w in winners]),
        ],
    )
    _record("figure4b", solution, best)


@pytest.mark.repro("E3")
def test_fig4c_cycle_total_model(benchmark, report):
    solution, best = timed(benchmark, lambda: solve_game(figure4c_edges()))
    assert solution.won == {"b"}
    assert solution.lost == {"a", "c"}
    assert solution.drawn == set()
    assert solution.result.is_total
    report(
        "Figure 4(c) — cyclic game, total model",
        [("won", sorted(solution.won)), ("lost", sorted(solution.lost))],
    )
    _record("figure4c", solution, best)
