"""Experiment E16 — incremental model maintenance versus from-scratch solving.

A deductive database is updated far more often than its rule set changes.
The :class:`repro.session.KnowledgeBase` keeps the component-wise
well-founded solution warm: an ``assert_fact``/``retract_fact`` invalidates
only the SCC components of the atom dependency graph reachable (in the
dependent direction) from the changed atoms, re-solves just those with
:func:`repro.core.modular.solve_component`, and reuses the frozen verdicts
of everything else.

On the ``layered_program`` workload a single fact asserted into the top
layer touches one layer's negation chain out of ``layers`` — the affected
region is a constant fraction of one layer while a from-scratch modular
solve pays for the whole program, so update latency is sublinear in
program size.  The acceptance criterion of the ISSUE: at 12 layers × 200,
the incremental refresh re-evaluates only the affected components
(asserted on the :class:`~repro.session.UpdateStats` component counters)
and is ≥5× faster than a from-scratch modular solve, with models
byte-identical to from-scratch at every step.

Run with ``pytest benchmarks/bench_incremental.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.config import EngineConfig
from repro.core.context import build_context
from repro.core.modular import modular_well_founded
from repro.engine.solver import solve_configured
from repro.session import KnowledgeBase
from repro.workloads import layered_program

ACCEPTANCE_LAYERS = 12
ACCEPTANCE_SIZE = 200
SCALING_SWEEP = trim([(3, 60), (6, 120), (12, 200)], keep=2)
REPEAT = 5

WFS = EngineConfig(semantics="well-founded")


def _top_layer_fact(layers: int, size: int) -> str:
    """A fact whose dependents are confined to the top layer's chain: the
    chain's highest rung occurs only in rule bodies, so asserting it flips
    the alternation phase of that one chain and nothing below."""
    return f"chain({layers - 1}, {size - 1})"


def _best_update(kb: KnowledgeBase, fact: str) -> float:
    """Best assert→refresh latency over REPEAT assert/retract round trips
    (the retract restores the baseline so every assert sees the same
    model)."""
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        kb.assert_fact(fact)
        kb.solution  # force the refresh
        best = min(best, time.perf_counter() - start)
        kb.retract_fact(fact)
        kb.solution
    return best


def _best_scratch(program) -> float:
    """Best from-scratch modular solve over a prebuilt context (grounding
    excluded — the toughest fair baseline)."""
    context = build_context(program)
    best = float("inf")
    for _ in range(min(REPEAT, 3)):
        start = time.perf_counter()
        modular_well_founded(context)
        best = min(best, time.perf_counter() - start)
    return best


def _assert_matches_scratch(kb: KnowledgeBase) -> None:
    scratch = solve_configured(kb._program(), WFS)
    assert kb.solution.interpretation == scratch.interpretation, (
        "incrementally maintained model diverged from from-scratch solve"
    )
    assert kb.solution.base == scratch.base, "atom universe diverged"


@pytest.mark.repro("E16")
def test_single_fact_update_acceptance(report):
    """≥5× over from-scratch at 12×200, with only the affected components
    re-evaluated and the model identical to from-scratch at every step."""
    program = layered_program(ACCEPTANCE_LAYERS, ACCEPTANCE_SIZE)
    kb = KnowledgeBase(program, config=WFS)
    kb.solution  # initial solve
    assert kb.is_incremental
    total = kb.last_update.components_total

    fact = _top_layer_fact(ACCEPTANCE_LAYERS, ACCEPTANCE_SIZE)
    kb.assert_fact(fact)
    _assert_matches_scratch(kb)
    stats = kb.last_update
    assert stats.mode == "delta"
    # Only the top layer's chain (plus its bridge) is downstream of the
    # asserted rung: a sliver of the program, not proportional to it.
    assert stats.components_recomputed <= ACCEPTANCE_SIZE + 2
    assert stats.components_recomputed < total / 5
    assert stats.components_reused == total - stats.components_recomputed
    kb.retract_fact(fact)
    _assert_matches_scratch(kb)

    update = _best_update(kb, fact)
    scratch = _best_scratch(program)
    report(
        f"incremental update vs from-scratch modular ({ACCEPTANCE_LAYERS}x{ACCEPTANCE_SIZE})",
        [
            (f"components {total}, recomputed {stats.components_recomputed} "
             f"({stats.reuse_fraction:.0%} reused)",),
            (f"update     {update * 1000:9.3f} ms",),
            (f"scratch    {scratch * 1000:9.3f} ms",),
            (f"speedup    {scratch / update:9.1f}x",),
        ],
    )
    emit(
        "incremental",
        workload=f"layered:{ACCEPTANCE_LAYERS}x{ACCEPTANCE_SIZE}",
        sizes={
            "components": total,
            "components_recomputed": stats.components_recomputed,
        },
        timings={"incremental_update": update, "from_scratch": scratch},
        speedups={"incremental_over_scratch": scratch / update},
        extra={"reuse_fraction": round(stats.reuse_fraction, 4)},
    )
    assert scratch >= 5 * update, (
        f"incremental refresh must be ≥5× faster than from-scratch: "
        f"update {update * 1000:.3f} ms, scratch {scratch * 1000:.3f} ms "
        f"({scratch / update:.1f}x)"
    )


@pytest.mark.repro("E16")
def test_update_latency_sublinear(report):
    """Update latency must grow strictly slower than from-scratch solve
    time: the incremental advantage widens with program size."""
    rows = []
    ratios = []
    for layers, size in SCALING_SWEEP:
        program = layered_program(layers, size)
        kb = KnowledgeBase(program, config=WFS)
        kb.solution
        fact = _top_layer_fact(layers, size)
        update = _best_update(kb, fact)
        scratch = _best_scratch(program)
        ratios.append(scratch / update)
        emit(
            "incremental",
            workload=f"layered:{layers}x{size}",
            sizes={"layers": layers, "layer_size": size},
            timings={"incremental_update": update, "from_scratch": scratch},
            speedups={"incremental_over_scratch": scratch / update},
        )
        rows.append(
            (
                f"{layers:3d} layers x {size:3d}",
                f"update {update * 1000:8.3f} ms",
                f"scratch {scratch * 1000:8.3f} ms",
                f"ratio {scratch / update:6.1f}x",
            )
        )
    report("update latency vs from-scratch across sizes", rows)
    assert ratios[-1] > ratios[0], (
        "update latency must be sublinear in program size (widening ratio): "
        + ", ".join(f"{ratio:.2f}x" for ratio in ratios)
    )


@pytest.mark.repro("E16")
def test_floating_fact_touches_nothing():
    """A fact no rule mentions refreshes in O(1): zero components."""
    kb = KnowledgeBase(layered_program(3, 20), config=WFS)
    kb.solution
    kb.assert_fact("audit_marker(1)")
    assert kb.is_true("audit_marker", 1)
    stats = kb.last_update
    assert stats.mode == "delta"
    assert stats.components_recomputed == 0
    assert stats.floating_changed == 1
    kb.retract_fact("audit_marker(1)")
    assert kb.is_false("audit_marker", 1)


@pytest.mark.repro("E16")
def test_batched_updates_pay_one_refresh(report):
    """A batch of updates costs one refresh covering the union of the
    affected regions — not one refresh per mutation."""
    layers, size = trim([(8, 100)], keep=1)[0]
    program = layered_program(layers, size)
    kb = KnowledgeBase(program, config=WFS)
    kb.solution
    before = kb.last_update

    with kb.batch():
        for layer in range(layers):
            kb.assert_fact(f"chain({layer}, {size - 1})")
    kb.solution
    stats = kb.last_update
    assert stats.mode == "delta"
    assert stats.changed == layers
    _assert_matches_scratch(kb)
    report(
        "batched update",
        [(f"{layers} asserts -> one refresh: {stats.describe()}",)],
    )
    assert before is not stats
