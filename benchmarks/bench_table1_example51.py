"""Experiment E1 — Table I (Example 5.1).

Regenerates the alternating-fixpoint iteration table of Example 5.1: the
sequence of negative-literal sets ``Ĩ_k`` and derived positive sets
``S_P(Ĩ_k)``, and the resulting AFP partial model.  The benchmark times the
full alternating-fixpoint computation on the example program; the
assertions check every row against the values printed in the paper.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint
from repro.datalog import parse_program
from repro.datalog.atoms import atom

EXAMPLE_5_1 = """
p_a :- p_c, not p_b.
p_b :- not p_a.
p_c.
p_d :- p_e, not p_f.
p_d :- p_f, not p_g.
p_d :- p_h.
p_e :- p_d.
p_f :- p_e.
p_f :- not p_c.
p_i :- p_c, not p_d.
"""


def p(*names: str) -> frozenset:
    return frozenset(atom(f"p_{name}") for name in names)


# The rows of Table I: k -> (atoms false in Ĩ_k, atoms in S_P(Ĩ_k)).
TABLE_I = {
    0: (p(), p("c")),
    1: (p("a", "b", "d", "e", "f", "g", "h", "i"), p("a", "b", "c", "i")),
    2: (p("d", "e", "f", "g", "h"), p("c", "i")),
    3: (p("a", "b", "d", "e", "f", "g", "h"), p("a", "b", "c", "i")),
    4: (p("d", "e", "f", "g", "h"), p("c", "i")),
}


@pytest.mark.repro("E1")
def test_table1_alternating_fixpoint_trace(benchmark, report):
    program = parse_program(EXAMPLE_5_1)

    result, best = timed(benchmark, lambda: alternating_fixpoint(program))

    rows = []
    for stage in result.stages:
        expected_negative, expected_positive = TABLE_I[stage.index]
        assert frozenset(stage.negative.atoms) == expected_negative
        assert stage.positive == expected_positive
        rows.append(
            (
                f"k={stage.index}",
                "false=" + ",".join(sorted(str(a) for a in stage.negative)),
                "S_P=" + ",".join(sorted(str(a) for a in stage.positive)),
            )
        )
    report("Table I — alternating fixpoint of Example 5.1", rows)

    # The AFP partial model printed below the table in the paper.
    assert result.true_atoms() == p("c", "i")
    assert result.false_atoms() == p("d", "e", "f", "g", "h")
    assert result.undefined_atoms == p("a", "b")
    assert len(result.stages) == 5
    emit(
        "table1_example51",
        workload="example_5_1",
        sizes={"stages": len(result.stages)},
        timings={"alternating_fixpoint": best},
    )
