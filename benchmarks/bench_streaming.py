"""Experiment E19 — streaming delta maintenance under high-churn feeds.

The incremental session (E16) invalidates whole SCC components per
update; :mod:`repro.delta` maintains per-component derivation state at
*atom* granularity instead — counting for one-pass components, DRed for
recursive definite ones — so redundant-support churn (the common case on
a social graph where every hop has parallel supports) costs O(affected
derivations), and propagation stops the moment no verdict moves.  This
benchmark replays seeded churn streams from :mod:`repro.workloads.streams`
and

* measures sustained assert/retract throughput and p99 refresh latency
  of atom-level ``maintenance="delta"`` against component-level
  ``maintenance="component"`` on the same engine, same stream — the
  acceptance floor is **≥5×** update throughput;
* asserts the maintained model **byte-identical** to a from-scratch
  solve at checkpoints throughout the stream, and
  ``UpdateStats.mode == "delta"`` on every fast-path refresh;
* replays a counting-only access-policy stream through a full
  :class:`~repro.session.KnowledgeBase` session, and a coalesced window
  of writes through the :class:`~repro.service.QueryService` writer
  (``refresh="coalesce"``), asserting one shared epoch per window.

Run with ``pytest benchmarks/bench_streaming.py -s``; smoke mode
(``REPRO_BENCH_SMOKE=1``) trims stream lengths but keeps every assertion,
including the ≥5× floor.
"""

from __future__ import annotations

import threading
import time

import pytest

from _metrics import emit
from _smoke import SMOKE
from repro.config import EngineConfig
from repro.datalog.rules import Program, Rule
from repro.engine.solver import solve_configured
from repro.service import QueryService
from repro.session import IncrementalEngine, KnowledgeBase
from repro.workloads import access_policy_stream, social_graph_stream

WFS = EngineConfig(semantics="well-founded")

PEOPLE = 300 if SMOKE else 900
STEPS = 160 if SMOKE else 400
CHECKPOINTS = 4
POLICY_USERS = 24 if SMOKE else 60
POLICY_STEPS = 120 if SMOKE else 300


def _split(program: Program) -> tuple[Program, set]:
    """A generated program as (rules-only program, initial fact atoms)."""
    rules = Program(rule for rule in program if not rule.is_fact)
    facts = {rule.head for rule in program.facts()}
    return rules, facts


def _model_bytes(model, base) -> bytes:
    """Canonical byte serialisation of a partial model + atom universe."""
    lines = sorted(str(atom) for atom in model.true_atoms)
    lines.extend(sorted(f"not {atom}" for atom in model.false_atoms))
    lines.extend(sorted(f"base {atom}" for atom in base))
    return "\n".join(lines).encode("utf-8")


def _scratch_bytes(rules: Program, facts: set) -> bytes:
    program = Program(list(rules) + [Rule(atom) for atom in sorted(facts, key=str)])
    solution = solve_configured(program, WFS)
    return _model_bytes(solution.interpretation, solution.base)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _replay(maintenance: str, rules: Program, facts: set, ops, checkpoints=()):
    """Replay *ops* against one engine; returns (latencies, modes, engine).

    At each checkpoint index the maintained model is asserted
    byte-identical to a from-scratch solve of the current program.
    """
    engine = IncrementalEngine(rules, maintenance=maintenance)
    current = set(facts)
    engine.refresh(frozenset(current), None)
    latencies: list[float] = []
    modes: set[str] = set()
    for index, op in enumerate(ops):
        (current.add if op.kind == "assert" else current.discard)(op.atom)
        start = time.perf_counter()
        stats = engine.refresh(frozenset(current), {op.atom})
        latencies.append(time.perf_counter() - start)
        modes.add(stats.mode)
        if index in checkpoints:
            maintained = _model_bytes(engine.model, engine.base)
            assert maintained == _scratch_bytes(rules, current), (
                f"{maintenance} model diverged from from-scratch at op {index}"
            )
    return latencies, modes, engine


@pytest.mark.repro("E19")
def test_streaming_throughput_acceptance(report):
    """≥5× sustained update throughput for atom-level delta maintenance
    over component-level re-solve on the social-graph churn stream, with
    byte-identical checkpoints and mode=="delta" throughout."""
    program, ops = social_graph_stream(
        PEOPLE, extra_edges=PEOPLE // 3, back_edges=12, steps=STEPS, seed=7
    )
    rules, facts = _split(program)
    checkpoints = {(i + 1) * len(ops) // CHECKPOINTS - 1 for i in range(CHECKPOINTS)}

    delta_lat, delta_modes, delta_engine = _replay(
        "delta", rules, facts, ops, checkpoints
    )
    comp_lat, comp_modes, comp_engine = _replay(
        "component", rules, facts, ops, checkpoints
    )
    assert delta_modes == {"delta"}, f"fast path not taken: {delta_modes}"
    assert comp_modes == {"incremental"}
    assert delta_engine.model == comp_engine.model

    delta_total, comp_total = sum(delta_lat), sum(comp_lat)
    throughput = len(ops) / delta_total
    speedup = comp_total / delta_total
    methods = delta_engine.last_update.methods
    report(
        f"streaming churn ({PEOPLE} people, {len(ops)} ops)",
        [
            (f"delta      {delta_total * 1000:9.1f} ms total, "
             f"p99 {_percentile(delta_lat, 0.99) * 1000:7.3f} ms, "
             f"{throughput:8.0f} ops/s",),
            (f"component  {comp_total * 1000:9.1f} ms total, "
             f"p99 {_percentile(comp_lat, 0.99) * 1000:7.3f} ms",),
            (f"speedup    {speedup:9.1f}x  (last methods: {dict(methods)})",),
        ],
    )
    emit(
        "streaming",
        workload=f"social-graph:{PEOPLE}p+{PEOPLE // 3}e+12b",
        sizes={"people": PEOPLE, "operations": len(ops)},
        timings={
            "delta_total": delta_total,
            "component_total": comp_total,
            "delta_p99": _percentile(delta_lat, 0.99),
            "component_p99": _percentile(comp_lat, 0.99),
        },
        speedups={"delta_over_component": speedup},
        extra={
            "throughput_ops_per_s": round(throughput, 1),
            "checkpoints": CHECKPOINTS,
        },
    )
    assert speedup >= 5, (
        f"atom-level delta maintenance must sustain ≥5x component-level "
        f"re-solve throughput: delta {delta_total * 1000:.1f} ms, "
        f"component {comp_total * 1000:.1f} ms ({speedup:.1f}x)"
    )


@pytest.mark.repro("E19")
def test_policy_stream_counting_path(report):
    """The access-policy stream is pure counter maintenance end to end —
    through the full session surface, byte-identical at every step."""
    program, ops = access_policy_stream(POLICY_USERS, steps=POLICY_STEPS, seed=11)
    kb = KnowledgeBase(program, config=WFS)
    kb.solution
    latencies: list[float] = []
    methods: set[str] = set()
    for op in ops:
        start = time.perf_counter()
        if op.kind == "assert":
            kb.assert_fact(op.atom)
        else:
            kb.retract_fact(op.atom)
        kb.solution
        latencies.append(time.perf_counter() - start)
        assert kb.last_update.mode == "delta"
        methods.update(kb.last_update.methods)
    scratch = solve_configured(kb._program(), WFS)
    assert _model_bytes(kb.solution.interpretation, kb.solution.base) == _model_bytes(
        scratch.interpretation, scratch.base
    )
    assert methods <= {"counting"}, f"expected pure counting, saw {methods}"
    total = sum(latencies)
    report(
        f"access-policy churn ({POLICY_USERS} users, {len(ops)} ops, session)",
        [
            (f"total {total * 1000:9.1f} ms, "
             f"p99 {_percentile(latencies, 0.99) * 1000:7.3f} ms, "
             f"{len(ops) / total:8.0f} ops/s",),
        ],
    )
    emit(
        "streaming",
        workload=f"access-policy:{POLICY_USERS}u",
        sizes={"users": POLICY_USERS, "operations": len(ops)},
        timings={"session_total": total, "session_p99": _percentile(latencies, 0.99)},
        extra={"methods": sorted(methods)},
    )


@pytest.mark.repro("E19")
def test_coalesced_service_windows(report):
    """Concurrent writers against a ``refresh="coalesce"`` service land in
    shared refresh windows: fewer refreshes than writes, every write
    acknowledged, and the final model identical to from-scratch."""
    writers = 4
    per_writer = 15 if SMOKE else 40
    program, ops = access_policy_stream(
        POLICY_USERS, steps=writers * per_writer, seed=13
    )
    kb = KnowledgeBase(program, config=WFS.replace(refresh="coalesce"))
    chunks = [ops[i::writers] for i in range(writers)]
    outcomes: list[int] = []
    failures: list[BaseException] = []
    lock = threading.Lock()
    with QueryService(kb, queue_size=writers * per_writer) as service:

        def run(chunk):
            try:
                for op in chunk:
                    outcome = service.submit(((op.kind, op.atom),))
                    with lock:
                        outcomes.append(outcome.epoch)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        started = time.perf_counter()
        threads = [threading.Thread(target=run, args=(chunk,)) for chunk in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = service.stats()
    assert not failures, failures
    assert len(outcomes) == len(ops)
    counters = stats["counters"]
    coalesced = counters.get("service.coalesced_requests", 0)
    windows = counters.get("service.coalesced_windows", 0)
    # Windows share one epoch per refresh: distinct epochs < acknowledged
    # writes whenever any window coalesced more than one request.
    assert counters.get("service.writes_applied", 0) == len(ops)
    scratch = solve_configured(kb._program(), WFS)
    assert _model_bytes(kb.solution.interpretation, kb.solution.base) == _model_bytes(
        scratch.interpretation, scratch.base
    )
    report(
        f"coalesced service churn ({writers} writers x {len(ops) // writers} ops)",
        [
            (f"total {elapsed * 1000:9.1f} ms, {len(ops) / elapsed:8.0f} ops/s",),
            (f"windows {windows}, coalesced requests {coalesced}, "
             f"epochs {len(set(outcomes))}/{len(outcomes)}",),
        ],
    )
    emit(
        "streaming",
        workload=f"service-coalesce:{writers}w",
        sizes={"writers": writers, "operations": len(ops)},
        timings={"service_total": elapsed},
        extra={
            "coalesced_windows": windows,
            "coalesced_requests": coalesced,
            "distinct_epochs": len(set(outcomes)),
        },
    )
