"""Experiment E2 — Figure 2 (convergence of alternating under/over-estimates).

Figure 2 of the paper pictures the alternating sequence: even stages are
underestimates of the well-founded negative set ``W̃`` converging from
below, odd stages are overestimates of ``W̃ ∪ W?`` converging from above.
This benchmark reproduces that picture quantitatively on Example 5.1 and on
a family of structured programs, asserting the sandwich property at every
stage and measuring the computation.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, well_founded_model
from repro.datalog import parse_program
from repro.games import lollipop_edges, win_move_program
from repro.workloads import two_player_choice_program

EXAMPLE_5_1 = """
p_a :- p_c, not p_b.
p_b :- not p_a.
p_c.
p_d :- p_e, not p_f.
p_d :- p_f, not p_g.
p_d :- p_h.
p_e :- p_d.
p_f :- p_e.
p_f :- not p_c.
p_i :- p_c, not p_d.
"""


def check_sandwich(result, wfs):
    """Even stages ⊆ W̃; odd stages ⊇ W̃ ∪ W? (as negative atom sets)."""
    w_false = wfs.model.false_atoms
    w_false_or_undefined = w_false | wfs.undefined_atoms
    series = []
    for stage in result.stages:
        negatives = frozenset(stage.negative.atoms)
        if stage.is_underestimate:
            assert negatives <= w_false
        else:
            assert negatives >= w_false_or_undefined
        series.append((stage.index, len(negatives)))
    return series


@pytest.mark.repro("E2")
def test_fig2_alternation_on_example_5_1(benchmark, report):
    program = parse_program(EXAMPLE_5_1)
    wfs = well_founded_model(program)

    result, best = timed(benchmark, lambda: alternating_fixpoint(program))

    series = check_sandwich(result, wfs)
    report(
        "Figure 2 — |Ĩ_k| per stage (under/over alternation), Example 5.1",
        [(f"k={k}", f"|negatives|={size}") for k, size in series],
    )
    emit(
        "fig2_alternation",
        workload="example_5_1",
        sizes={"stages": len(series)},
        timings={"alternating_fixpoint": best},
    )


@pytest.mark.repro("E2")
@pytest.mark.parametrize("pairs,winners", [(2, 2), (4, 4), (8, 8)])
def test_fig2_alternation_on_choice_programs(benchmark, pairs, winners):
    program = two_player_choice_program(pairs, winners)
    wfs = well_founded_model(program)
    result, best = timed(benchmark, lambda: alternating_fixpoint(program))
    check_sandwich(result, wfs)
    emit(
        "fig2_alternation",
        workload=f"choice:{pairs}x{winners}",
        sizes={"pairs": pairs, "winners": winners},
        timings={"alternating_fixpoint": best},
    )


@pytest.mark.repro("E2")
@pytest.mark.parametrize("cycle,tail", [(2, 4), (3, 6), (4, 12)])
def test_fig2_alternation_on_game_graphs(benchmark, cycle, tail):
    program = win_move_program(lollipop_edges(cycle, tail))
    wfs = well_founded_model(program)
    result, best = timed(benchmark, lambda: alternating_fixpoint(program))
    series = check_sandwich(result, wfs)
    # Longer tails force more alternation rounds: the number of stages grows
    # with the depth of the decided part of the game.
    assert len(series) >= 3
    emit(
        "fig2_alternation",
        workload=f"win_move_lollipop:{cycle}x{tail}",
        sizes={"cycle": cycle, "tail": tail, "stages": len(series)},
        timings={"alternating_fixpoint": best},
    )
