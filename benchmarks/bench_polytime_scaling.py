"""Experiment E7 — the polynomial-time claim of Section 5.

"For finite H, it is routine to show that the least fixpoint of A_P is
computable in time that is polynomial in the size of H, if the program P is
regarded as fixed."  The benchmark sweeps win–move games and random
propositional programs of increasing size and records the alternating
fixpoint cost; the assertions check the structural facts that drive the
polynomial bound (the number of S̃_P applications is at most ~2·|H| + 2)
rather than wall-clock ratios, which pytest-benchmark records for
EXPERIMENTS.md.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, build_context
from repro.games import chain_edges, random_game_edges, win_move_program
from repro.workloads import random_propositional_program

GAME_SIZES = [8, 16, 32, 64, 128]
PROGRAM_SIZES = [(10, 30), (20, 60), (40, 120), (80, 240)]


def _record(workload: str, context, result, best: float) -> None:
    emit(
        "polytime_scaling",
        workload=workload,
        sizes={"atoms": len(context.base), "stages": result.iterations},
        timings={"alternating_fixpoint": best},
    )


@pytest.mark.repro("E7")
@pytest.mark.parametrize("nodes", GAME_SIZES)
def test_scaling_win_move_random_games(benchmark, nodes):
    program = win_move_program(random_game_edges(nodes, out_degree=3, seed=nodes))
    context = build_context(program)

    result, best = timed(benchmark, lambda: alternating_fixpoint(context))

    # Each application of A_P adds at least one new negative conclusion
    # until the fixpoint, so the number of stages is linearly bounded.
    assert result.iterations <= 2 * len(context.base) + 2
    _record(f"win_move_random:{nodes}", context, result, best)


@pytest.mark.repro("E7")
@pytest.mark.parametrize("nodes", GAME_SIZES)
def test_scaling_win_move_chain_games(benchmark, nodes):
    """Chains are the worst case for alternation depth: the game value
    propagates one position per A_P application."""
    program = win_move_program(chain_edges(nodes))
    context = build_context(program)
    result, best = timed(benchmark, lambda: alternating_fixpoint(context))
    assert result.is_total
    assert result.iterations <= 2 * len(context.base) + 2
    _record(f"win_move_chain:{nodes}", context, result, best)


@pytest.mark.repro("E7")
@pytest.mark.parametrize("atoms,rules", PROGRAM_SIZES)
def test_scaling_random_propositional_programs(benchmark, atoms, rules):
    program = random_propositional_program(atoms=atoms, rules=rules, seed=atoms)
    context = build_context(program)
    result, best = timed(benchmark, lambda: alternating_fixpoint(context))
    assert result.iterations <= 2 * len(context.base) + 2
    _record(f"random_propositional:{atoms}x{rules}", context, result, best)
