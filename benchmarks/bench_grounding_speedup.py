"""Experiment E14 — scan versus indexed semi-naive grounding.

Since PR 1 the *ground* fixpoints are semi-naive and indexed, so on
non-ground workloads the runtime is dominated by ``relevant_ground``.  The
indexed matcher (``repro.datalog.joins``) replaces the naive envelope
fixpoint + per-conjunct linear scans of the original matcher with
delta-driven grounding over lazily built argument-position hash indexes
and greedy join ordering.  This benchmark sweeps the three non-ground
workloads the ISSUE names:

* **transitive closure** on linear chains — the deep-recursion worst case
  for the scan matcher (one envelope round per path length, each round a
  full re-scan): the asymptotic gap, ≥5× required already at moderate
  sizes and measured via a wall-clock budget at 300 nodes;
* **same-generation** on binary trees — a three-way join whose middle
  conjunct explodes without index probes and join reordering;
* **win–move** on random game graphs — join-light (one positive conjunct,
  envelope converges in one round), included as the no-regression guard:
  indexes must not cost anything when there is nothing to join.

Every comparison asserts the two matchers produce identical ground rule
sets, so a timing run doubles as a differential check.

Run with ``pytest benchmarks/bench_grounding_speedup.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.datalog.grounding import GroundingLimits, relevant_ground
from repro.exceptions import GroundingTimeout
from repro.games import binary_tree_edges, chain_edges, random_game_edges, win_move_program
from repro.workloads import same_generation_program, transitive_closure_program

CHAIN_SIZES = trim([20, 40])
TREE_DEPTHS = trim([3, 4])
GAME_SIZES = trim([400, 1200])
# The acceptance-criterion size: the scan matcher needs tens of minutes
# here, so it runs under a wall-clock budget (see below).
ACCEPTANCE_CHAIN_SIZE = 300
REPEAT = 3


def _best_time(function) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _compare(program):
    """Return (scan seconds, indexed seconds) after asserting the two
    matchers ground the program to the identical rule set."""
    indexed_rules = set(relevant_ground(program, matcher="indexed").rules)
    scan_rules = set(relevant_ground(program, matcher="scan").rules)
    assert indexed_rules == scan_rules
    scan = _best_time(lambda: relevant_ground(program, matcher="scan"))
    indexed = _best_time(lambda: relevant_ground(program, matcher="indexed"))
    return scan, indexed


@pytest.mark.repro("E14")
def test_transitive_closure_chain_speedup(report):
    """Chains make the scan matcher quadratic twice over: ~n envelope
    rounds, each re-matching the rules against all ~n²/2 derived atoms."""
    rows = []
    timings = {}
    for size in CHAIN_SIZES:
        program = transitive_closure_program(chain_edges(size))
        scan, indexed = _compare(program)
        timings[size] = (scan, indexed)
        emit(
            "grounding_speedup",
            workload=f"transitive_closure_chain:{size}",
            sizes={"nodes": size},
            timings={"scan": scan, "indexed": indexed},
            speedups={"indexed_over_scan": scan / indexed},
        )
        rows.append((size, f"scan {scan * 1000:9.2f} ms", f"indexed {indexed * 1000:9.2f} ms",
                     f"speedup {scan / indexed:7.1f}x"))
    report("transitive closure chains: scan vs indexed grounding", rows)
    scan, indexed = timings[CHAIN_SIZES[-1]]
    assert indexed < scan, (
        f"indexed grounding ({indexed:.4f}s) must beat the scan matcher "
        f"({scan:.4f}s) on the {CHAIN_SIZES[-1]}-node chain"
    )


@pytest.mark.repro("E14")
@pytest.mark.benchslow
def test_transitive_closure_chain300_acceptance(report):
    """The acceptance criterion: ≥5× on a ≥300-node linear chain.

    The scan matcher cannot finish this size in CI time (it needs tens of
    minutes), so it runs under a ``max_seconds`` budget of 5× the indexed
    time (plus margin): either it finishes and the ratio is asserted
    directly, or it times out and the elapsed time — a lower bound on its
    true cost — already proves the 5× gap.
    """
    program = transitive_closure_program(chain_edges(ACCEPTANCE_CHAIN_SIZE))
    start = time.perf_counter()
    grounded = relevant_ground(program, matcher="indexed")
    indexed = time.perf_counter() - start
    budget = max(5 * indexed * 1.5, 2.0)
    start = time.perf_counter()
    try:
        relevant_ground(program, GroundingLimits(max_seconds=budget), matcher="scan")
        scan = time.perf_counter() - start
        timed_out = False
    except GroundingTimeout as timeout:
        scan = timeout.elapsed
        timed_out = True
    report(
        f"chain-{ACCEPTANCE_CHAIN_SIZE} transitive closure",
        [
            (f"ground rules {len(grounded)}",),
            (f"indexed {indexed:8.2f} s",),
            (f"scan    {scan:8.2f} s" + ("  (aborted at budget)" if timed_out else ""),),
            (f"speedup ≥ {scan / indexed:6.1f}x",),
        ],
    )
    emit(
        "grounding_speedup",
        workload=f"transitive_closure_chain:{ACCEPTANCE_CHAIN_SIZE}",
        sizes={"nodes": ACCEPTANCE_CHAIN_SIZE, "ground_rules": len(grounded)},
        timings={"scan": scan, "indexed": indexed},
        speedups={"indexed_over_scan": scan / indexed},
        extra={"scan_aborted_at_budget": timed_out},
    )
    assert scan >= 5 * indexed, (
        f"indexed grounding must be ≥5× faster on the "
        f"{ACCEPTANCE_CHAIN_SIZE}-node chain: indexed {indexed:.2f}s, "
        f"scan {'≥' if timed_out else ''}{scan:.2f}s"
    )


@pytest.mark.repro("E14")
def test_same_generation_speedup(report):
    """Same-generation's recursive rule joins two ``parent`` conjuncts
    around the ``sg`` delta; without argument indexes the middle conjunct
    degenerates into a full cross product per candidate."""
    rows = []
    timings = {}
    for depth in TREE_DEPTHS:
        program = same_generation_program(binary_tree_edges(depth))
        scan, indexed = _compare(program)
        timings[depth] = (scan, indexed)
        emit(
            "grounding_speedup",
            workload=f"same_generation_tree:{depth}",
            sizes={"depth": depth},
            timings={"scan": scan, "indexed": indexed},
            speedups={"indexed_over_scan": scan / indexed},
        )
        rows.append((f"depth {depth}", f"scan {scan * 1000:9.2f} ms",
                     f"indexed {indexed * 1000:9.2f} ms", f"speedup {scan / indexed:7.1f}x"))
    report("same-generation on binary trees: scan vs indexed grounding", rows)
    scan, indexed = timings[TREE_DEPTHS[-1]]
    assert indexed < scan, (
        f"indexed grounding ({indexed:.4f}s) must beat the scan matcher "
        f"({scan:.4f}s) on the depth-{TREE_DEPTHS[-1]} same-generation tree"
    )


@pytest.mark.repro("E14")
def test_win_move_no_regression(report):
    """Win–move grounds in a single envelope round with a one-conjunct
    body, so there is nothing for hash joins to win — the assertion is the
    other direction: the index machinery must not make join-light
    workloads meaningfully slower (the indexed path still saves the scan
    matcher's separate re-instantiation pass)."""
    rows = []
    timings = {}
    for size in GAME_SIZES:
        program = win_move_program(random_game_edges(size, out_degree=4, seed=size))
        scan, indexed = _compare(program)
        timings[size] = (scan, indexed)
        emit(
            "grounding_speedup",
            workload=f"win_move_random:{size}",
            sizes={"positions": size},
            timings={"scan": scan, "indexed": indexed},
            speedups={"indexed_over_scan": scan / indexed},
        )
        rows.append((size, f"scan {scan * 1000:9.2f} ms", f"indexed {indexed * 1000:9.2f} ms",
                     f"ratio {indexed / scan:6.2f}"))
    report("win-move random games: scan vs indexed grounding", rows)
    scan, indexed = timings[GAME_SIZES[-1]]
    assert indexed <= scan * 1.25, (
        f"indexed grounding ({indexed:.4f}s) regressed more than 25% against "
        f"the scan matcher ({scan:.4f}s) on the join-light win-move workload"
    )


@pytest.mark.repro("E14")
@pytest.mark.parametrize("matcher", ["indexed", "scan"])
def test_timed_grounding_chain40(benchmark, matcher):
    """pytest-benchmark recording for EXPERIMENTS.md-style comparison."""
    program = transitive_closure_program(chain_edges(40))
    grounded = benchmark(lambda: relevant_ground(program, matcher=matcher))
    assert grounded.is_ground
