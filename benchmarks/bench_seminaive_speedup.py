"""Experiment E13 — naive versus semi-naive evaluation strategies.

The semi-naive engine (``repro.evaluation``) drives every fixpoint with
per-rule unsatisfied-literal counters and per-atom watch lists, so each
(atom, rule) pair is touched O(1) times per ``S_P`` evaluation; the naive
strategy re-applies ``T_{P∪Ĩ}`` by scanning every ground rule each round,
exactly as Definition 4.2 reads.  This benchmark sweeps the two workloads
the scaling experiment (E7) uses — win–move games and random propositional
programs — computing the well-founded model via the alternating fixpoint
under both strategies.  It asserts:

* the two strategies produce identical models at every size, and
* at the largest size of each workload the semi-naive strategy is strictly
  faster (on chain games the gap is asymptotic: naive costs
  O(stages² · rules), semi-naive O(stages · rules)).

Run with ``pytest benchmarks/bench_seminaive_speedup.py -s``.
"""

import time

import pytest

from _metrics import emit
from repro.core import alternating_fixpoint, build_context
from repro.games import chain_edges, random_game_edges, win_move_program
from repro.workloads import random_propositional_program

CHAIN_SIZES = [16, 32, 64]
RANDOM_GAME_SIZES = [16, 32, 64]
PROGRAM_SIZES = [(20, 60), (40, 120), (80, 240)]
# Best-of-5 keeps the strictly-faster assertions robust on noisy shared
# runners: one clean run per strategy decides, not the scheduler.
REPEAT = 5


def _best_time(function) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _compare(context):
    """Return (naive seconds, seminaive seconds) after asserting the two
    strategies agree on the model."""
    fast = alternating_fixpoint(context, strategy="seminaive")
    slow = alternating_fixpoint(context, strategy="naive")
    assert fast.true_atoms() == slow.true_atoms()
    assert fast.false_atoms() == slow.false_atoms()
    naive = _best_time(lambda: alternating_fixpoint(context, strategy="naive"))
    seminaive = _best_time(lambda: alternating_fixpoint(context, strategy="seminaive"))
    return naive, seminaive


@pytest.mark.repro("E13")
def test_win_move_chain_speedup(report):
    """Chains are the deep-alternation worst case: the game value propagates
    one position per A_P application, so the naive strategy pays a full rule
    scan per inner round per stage."""
    rows = []
    timings = {}
    for size in CHAIN_SIZES:
        context = build_context(win_move_program(chain_edges(size)))
        naive, seminaive = _compare(context)
        timings[size] = (naive, seminaive)
        emit(
            "seminaive_speedup",
            workload=f"win_move_chain:{size}",
            sizes={"positions": size},
            timings={"naive": naive, "seminaive": seminaive},
            speedups={"seminaive_over_naive": naive / seminaive},
        )
        rows.append((size, f"naive {naive * 1000:8.2f} ms", f"seminaive {seminaive * 1000:8.2f} ms",
                     f"speedup {naive / seminaive:6.1f}x"))
    report("win-move chain: naive vs seminaive", rows)
    naive, seminaive = timings[CHAIN_SIZES[-1]]
    assert seminaive < naive, (
        f"semi-naive ({seminaive:.4f}s) must beat naive ({naive:.4f}s) "
        f"on the {CHAIN_SIZES[-1]}-position chain game"
    )


@pytest.mark.repro("E13")
def test_win_move_random_game_speedup(report):
    rows = []
    timings = {}
    for size in RANDOM_GAME_SIZES:
        context = build_context(win_move_program(random_game_edges(size, out_degree=3, seed=size)))
        naive, seminaive = _compare(context)
        timings[size] = (naive, seminaive)
        emit(
            "seminaive_speedup",
            workload=f"win_move_random:{size}",
            sizes={"positions": size},
            timings={"naive": naive, "seminaive": seminaive},
            speedups={"seminaive_over_naive": naive / seminaive},
        )
        rows.append((size, f"naive {naive * 1000:8.2f} ms", f"seminaive {seminaive * 1000:8.2f} ms",
                     f"speedup {naive / seminaive:6.1f}x"))
    report("win-move random games: naive vs seminaive", rows)
    naive, seminaive = timings[RANDOM_GAME_SIZES[-1]]
    assert seminaive < naive


@pytest.mark.repro("E13")
def test_polytime_scaling_speedup(report):
    """The polynomial-time workload of E7 (random propositional programs)."""
    rows = []
    timings = {}
    for atoms, rules in PROGRAM_SIZES:
        context = build_context(random_propositional_program(atoms=atoms, rules=rules, seed=atoms))
        naive, seminaive = _compare(context)
        timings[(atoms, rules)] = (naive, seminaive)
        emit(
            "seminaive_speedup",
            workload=f"random_propositional:{atoms}x{rules}",
            sizes={"atoms": atoms, "rules": rules},
            timings={"naive": naive, "seminaive": seminaive},
            speedups={"seminaive_over_naive": naive / seminaive},
        )
        rows.append(((atoms, rules), f"naive {naive * 1000:8.2f} ms",
                     f"seminaive {seminaive * 1000:8.2f} ms", f"speedup {naive / seminaive:6.1f}x"))
    report("random propositional programs: naive vs seminaive", rows)
    naive, seminaive = timings[PROGRAM_SIZES[-1]]
    assert seminaive < naive


@pytest.mark.repro("E13")
@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_timed_afp_chain64(benchmark, strategy):
    """pytest-benchmark recording for EXPERIMENTS.md-style comparison."""
    context = build_context(win_move_program(chain_edges(64)))
    result = benchmark(lambda: alternating_fixpoint(context, strategy=strategy))
    assert result.is_total
