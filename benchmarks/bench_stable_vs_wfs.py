"""Experiment E8 — stable models vs the well-founded model (Section 2.4).

The paper contrasts the polynomial-time well-founded model with the
NP-complete stable-model existence problem (Elkan; Marek–Truszczyński) and
proves the structural relationships: every stable model extends the
well-founded model, and a total well-founded model is the unique stable
model.  The benchmarks measure both computations on the worst-case family
for enumeration — ``k`` independent negative loops, which have ``2^k``
stable models while the well-founded model stays flat — and on random
programs, asserting the containment relations throughout.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, build_context, stable_models
from repro.workloads import random_negative_loop_program, random_propositional_program

LOOP_SIZES = [2, 4, 6, 8]


def _record(computation: str, workload: str, best: float, **extra) -> None:
    emit(
        "stable_vs_wfs",
        workload=workload,
        timings={computation: best},
        extra=extra or None,
    )


@pytest.mark.repro("E8")
@pytest.mark.parametrize("pairs", LOOP_SIZES)
def test_wfs_cost_stays_flat_on_choice_programs(benchmark, pairs):
    program = random_negative_loop_program(pairs, seed=pairs)
    context = build_context(program)

    result, best = timed(benchmark, lambda: alternating_fixpoint(context))

    # The well-founded model decides nothing here: all 2k atoms undefined.
    assert len(result.undefined_atoms) == 2 * pairs
    assert result.iterations <= 4
    _record("well_founded", f"negative_loops:{pairs}", best)


@pytest.mark.repro("E8")
@pytest.mark.parametrize("pairs", LOOP_SIZES)
def test_stable_enumeration_cost_doubles_per_choice(benchmark, pairs):
    program = random_negative_loop_program(pairs, seed=pairs)
    context = build_context(program)
    afp = alternating_fixpoint(context)

    models, best = timed(benchmark, lambda: stable_models(context, afp=afp))

    assert len(models) == 2 ** pairs
    _record("stable_enumeration", f"negative_loops:{pairs}", best, models=len(models))


@pytest.mark.repro("E8")
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_stable_models_extend_wfs_on_random_programs(benchmark, seed):
    program = random_propositional_program(atoms=10, rules=24, seed=seed)
    context = build_context(program)
    afp = alternating_fixpoint(context)

    models, best = timed(benchmark, lambda: stable_models(context, afp=afp))

    for model in models:
        assert afp.true_atoms() <= model.true_atoms
        assert frozenset(afp.negative_fixpoint.atoms) <= model.false_atoms
    if afp.is_total:
        assert len(models) == 1
    _record("stable_enumeration", f"random_propositional:10x24:seed{seed}", best, models=len(models))
