"""Experiment E18 — query-service throughput under concurrent churn.

The query service promises that concurrency never costs correctness:
readers are snapshot-isolated while one writer churns the EDB, so every
response must be exactly the model of the epoch it is stamped with.  This
benchmark drives the full HTTP stack (stdlib ``http.server`` + urllib
clients) with several reader threads hammering ``/query/wins`` while a
writer thread alternates an ``assert``/``retract`` pair, and

* reports sustained requests/sec plus p50/p99 latency for the reads that
  ran *during* writer churn;
* **asserts snapshot consistency on every single response**: the churn is
  an alternating pair, so the well-founded model of each epoch is known in
  closed form (odd epoch → ``wins = {b}``, even epoch → ``wins = {c}``) and
  any torn read — rows from one epoch stamped with another — fails the run;
* times the in-process ``QueryService.query`` path on the same churn for
  comparison, separating HTTP-stack cost from snapshot-read cost.

Run with ``pytest benchmarks/bench_service.py -s``; smoke mode
(``REPRO_BENCH_SMOKE=1``) trims the request counts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from _metrics import emit
from _smoke import SMOKE
from repro.datalog import parse_atom
from repro.service import QueryService, ServiceHTTPServer
from repro.session import KnowledgeBase

RULES = "wins(X) :- move(X, Y), not wins(Y)."
MOVES = {"move": [("a", "b"), ("b", "a"), ("b", "c")]}
CHURN_ATOM = "move(c, d)"

READERS = 2 if SMOKE else 4
REQUESTS_PER_READER = 40 if SMOKE else 300
IN_PROCESS_READS = 500 if SMOKE else 5000

#: Closed-form oracle for the churn: epoch 1 is the seed model (wins={b});
#: each assert of move(c, d) flips wins to {c}, each retract flips it back.
EXPECTED = {0: [["b"]], 1: [["c"]]}
EXPECTED_TUPLES = {0: [("b",)], 1: [("c",)]}


def _expected_rows(epoch: int, table: dict) -> list:
    return table[(epoch - 1) % 2]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Churn:
    """Background writer alternating assert/retract of the churn atom."""

    def __init__(self, service: QueryService):
        self.service = service
        self.stop = threading.Event()
        self.writes = 0
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        atom = parse_atom(CHURN_ATOM)
        asserted = False
        while not self.stop.is_set():
            if asserted:
                self.service.retract_fact(atom)
            else:
                self.service.assert_fact(atom)
            asserted = not asserted
            self.writes += 1

    def __enter__(self) -> "_Churn":
        self.thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop.set()
        self.thread.join(30)


def test_http_throughput_with_consistency_asserted_per_response(report):
    kb = KnowledgeBase(RULES, facts=MOVES)
    service = QueryService(kb, max_readers=READERS + 2).start()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}/query/wins"
    server_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    server_thread.start()

    latencies: list[list[float]] = [[] for _ in range(READERS)]
    violations: list[str] = []

    def reader(slot: int) -> None:
        for _ in range(REQUESTS_PER_READER):
            start = time.perf_counter()
            with urllib.request.urlopen(url, timeout=30) as response:
                payload = json.loads(response.read())
            latencies[slot].append(time.perf_counter() - start)
            expected = _expected_rows(payload["epoch"], EXPECTED)
            if payload["rows"] != expected:
                violations.append(
                    f"epoch {payload['epoch']}: rows {payload['rows']} != {expected}"
                )
                return

    try:
        with _Churn(service) as churn:
            threads = [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(READERS)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
        writes = churn.writes
    finally:
        httpd.shutdown()
        server_thread.join(10)
        httpd.server_close()
        service.stop()
        kb.close()

    assert not violations, f"snapshot consistency violated: {violations[0]}"
    samples = [sample for slot in latencies for sample in slot]
    assert len(samples) == READERS * REQUESTS_PER_READER
    throughput = len(samples) / wall
    p50 = _percentile(samples, 0.50)
    p99 = _percentile(samples, 0.99)
    assert writes > 0, "writer churn never ran"
    # Robustness floor, not a perf claim: the service must sustain
    # concurrent readers during churn without collapsing.
    assert throughput > 20, f"service collapsed to {throughput:.1f} req/s"

    report(
        "service HTTP throughput under writer churn",
        [
            ("readers", READERS, "requests", len(samples)),
            ("writes applied during run", writes),
            ("req/s", f"{throughput:.0f}"),
            ("p50", f"{p50 * 1e3:.2f} ms", "p99", f"{p99 * 1e3:.2f} ms"),
        ],
    )
    emit(
        "service",
        workload="http-query-under-churn",
        sizes={
            "readers": READERS,
            "requests": len(samples),
            "writes_during_run": writes,
        },
        timings={"p50": p50, "p99": p99, "wall": wall},
        extra={
            "requests_per_second": round(throughput, 1),
            "consistency_checked_responses": len(samples),
            "consistency_violations": 0,
        },
    )


def test_in_process_snapshot_read_throughput(report):
    kb = KnowledgeBase(RULES, facts=MOVES)
    service = QueryService(kb).start()
    violations: list[str] = []
    latencies: list[float] = []
    try:
        with _Churn(service) as churn:
            start_wall = time.perf_counter()
            for _ in range(IN_PROCESS_READS):
                start = time.perf_counter()
                result = service.query("wins")
                latencies.append(time.perf_counter() - start)
                expected = _expected_rows(result["epoch"], EXPECTED_TUPLES)
                if result["rows"] != expected:
                    violations.append(
                        f"epoch {result['epoch']}: {result['rows']} != {expected}"
                    )
                    break
            wall = time.perf_counter() - start_wall
        writes = churn.writes
    finally:
        service.stop()
        kb.close()

    assert not violations, f"snapshot consistency violated: {violations[0]}"
    throughput = IN_PROCESS_READS / wall
    p99 = _percentile(latencies, 0.99)
    assert writes > 0
    report(
        "in-process snapshot reads under writer churn",
        [
            ("reads", IN_PROCESS_READS, "writes during run", writes),
            ("reads/s", f"{throughput:.0f}", "p99", f"{p99 * 1e6:.1f} us"),
        ],
    )
    emit(
        "service",
        workload="in-process-query-under-churn",
        sizes={"reads": IN_PROCESS_READS, "writes_during_run": writes},
        timings={"p99": p99, "wall": wall},
        extra={"reads_per_second": round(throughput, 1)},
    )
