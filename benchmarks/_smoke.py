"""Smoke-mode size trimming for the benchmark harness.

The CI smoke step sets ``REPRO_BENCH_SMOKE=1`` and runs every benchmark
entry point (``-m benchsmoke``) with its size sweeps trimmed to the
smallest entries, so regressions in the perf harness itself are caught on
every push without paying for the full sweeps.
"""

from __future__ import annotations

import os

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def trim(values, keep: int = 1) -> list:
    """The full size sweep, or just its first *keep* entries in smoke mode."""
    values = list(values)
    return values[:keep] if SMOKE else values
