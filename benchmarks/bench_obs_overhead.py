"""Experiment E18 — the observability layer must be free when disabled.

The ``repro.obs`` recorder threads through every phase of the solver
(grounding, condensation, per-component dispatch, assembly), so the PR's
acceptance criterion is a guard, not a speedup: with the default
:class:`~repro.obs.NullRecorder` the instrumented engine may cost at most
3% over the uninstrumented call path on the bench_modular_wfs workload.
The hot loops hoist a single ``recorder.enabled`` check and branch to
recorder-free code, so the two paths differ only by that boolean — the
guard catches anyone later moving per-iteration work outside the branch.

The benchmark also measures the :class:`~repro.obs.TraceRecorder` cost
(informative, not asserted — tracing is allowed to pay for what it
records) and asserts the models are byte-identical across the default,
null-recorder and tracing runs, with the null run leaving zero span
records behind.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.core.context import build_context
from repro.core.modular import modular_well_founded
from repro.obs import NullRecorder, TraceRecorder
from repro.workloads import layered_program

# The bench_modular_wfs acceptance workload (trimmed in smoke mode, where
# trim() keeps the head of the list and [-1] then picks it).
LAYERS, SIZE = trim([(4, 40), (12, 200)], keep=1)[-1]
#: The acceptance ceiling, with a small allowance for timer noise on
#: shared CI runners — the best-of-REPEAT comparison of two identical
#: code paths still jitters by a few percent at millisecond scales.
OVERHEAD_CEILING = 1.03
NOISE_MARGIN = 1.02
REPEAT = 7


def _best_time(function) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _render(model) -> bytes:
    lines = sorted(str(atom) for atom in model.true_atoms)
    lines.extend(sorted(f"not {atom}" for atom in model.false_atoms))
    return "\n".join(lines).encode("utf-8")


@pytest.mark.repro("E18")
def test_null_recorder_overhead_acceptance(report):
    """NullRecorder ≤3% over the default call path on the layered workload."""
    context = build_context(layered_program(LAYERS, SIZE))
    null_recorder = NullRecorder()

    # Warm both arms first — the very first solves pay one-off costs
    # (allocator growth, branch warmup) that would land on whichever arm
    # runs first and masquerade as recorder overhead.
    for _ in range(2):
        modular_well_founded(context)
        modular_well_founded(context, recorder=null_recorder)

    # Interleave the measurements so drift (thermal, scheduler) hits both
    # arms equally; each arm keeps its own best.
    default_best = float("inf")
    null_best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        modular_well_founded(context)
        default_best = min(default_best, time.perf_counter() - start)
        start = time.perf_counter()
        modular_well_founded(context, recorder=null_recorder)
        null_best = min(null_best, time.perf_counter() - start)
    traced = _best_time(lambda: modular_well_founded(context, recorder=TraceRecorder()))

    overhead = null_best / default_best
    report(
        f"obs overhead on layered {LAYERS}x{SIZE}",
        [
            (f"default       {default_best * 1000:9.3f} ms",),
            (f"null recorder {null_best * 1000:9.3f} ms  ({overhead:5.3f}x)",),
            (f"tracing       {traced * 1000:9.3f} ms  ({traced / default_best:5.3f}x)",),
        ],
    )
    emit(
        "obs_overhead",
        workload=f"layered:{LAYERS}x{SIZE}",
        sizes={"layers": LAYERS, "layer_size": SIZE},
        timings={"default": default_best, "null_recorder": null_best, "tracing": traced},
        speedups={
            "null_over_default": overhead,
            "tracing_over_default": traced / default_best,
        },
    )
    assert overhead <= OVERHEAD_CEILING * NOISE_MARGIN, (
        f"NullRecorder overhead must stay within 3%: default "
        f"{default_best * 1000:.3f} ms, null {null_best * 1000:.3f} ms "
        f"({(overhead - 1) * 100:.1f}% over)"
    )


@pytest.mark.repro("E18")
def test_models_identical_and_null_records_nothing():
    """Same partial model byte-for-byte whichever recorder observes the run,
    and the null recorder leaves no trace of the observation."""
    context = build_context(layered_program(4, 20))
    null_recorder = NullRecorder()
    tracing = TraceRecorder()

    default = modular_well_founded(context)
    nulled = modular_well_founded(context, recorder=null_recorder)
    traced = modular_well_founded(context, recorder=tracing)

    blobs = {_render(r.model) for r in (default, nulled, traced)}
    assert len(blobs) == 1, "recorder choice changed the well-founded model"
    assert not null_recorder.enabled
    assert not hasattr(null_recorder, "spans")
    assert tracing.spans, "the tracing run must have recorded spans"
