"""Experiment E11 — agreement on (locally) stratified programs (Section 2.4).

"Every locally stratified program has a total well-founded model and a
unique stable model that coincide with each other and with the perfect
model."  The benchmarks evaluate stratified workloads under the stratified
evaluator, the alternating fixpoint and the stable-model enumerator and
assert the three-way agreement, timing each evaluator for the ablation
record in EXPERIMENTS.md.
"""

import pytest

from _metrics import emit, timed
from repro.analysis import classify
from repro.core import alternating_fixpoint, build_context, stable_models
from repro.games.graphs import chain_edges, complete_dag_edges, random_digraph_edges
from repro.semantics import stratified_model
from repro.workloads import complement_of_transitive_closure_program, reachability_program


def workloads():
    yield "ntc-chain-6", complement_of_transitive_closure_program(chain_edges(6))
    yield "ntc-dag-5", complement_of_transitive_closure_program(complete_dag_edges(5))
    yield "ntc-random-6", complement_of_transitive_closure_program(
        random_digraph_edges(6, 0.3, seed=21)
    )
    yield "reach-chain-10", reachability_program(chain_edges(10), sources=["n0"])


WORKLOADS = list(workloads())
IDS = [name for name, _ in WORKLOADS]


def _record(evaluator: str, workload: str, best: float) -> None:
    emit("stratified_agreement", workload=workload, timings={evaluator: best})


@pytest.mark.repro("E11")
@pytest.mark.parametrize("name,program", WORKLOADS, ids=IDS)
def test_stratified_evaluator(benchmark, name, program):
    assert classify(program, check_local=False).is_stratified
    result, best = timed(benchmark, lambda: stratified_model(program))
    assert result.true_atoms
    _record("stratified", name, best)


@pytest.mark.repro("E11")
@pytest.mark.parametrize("name,program", WORKLOADS, ids=IDS)
def test_alternating_fixpoint_is_total_and_agrees(benchmark, name, program):
    stratified = stratified_model(program)

    afp, best = timed(benchmark, lambda: alternating_fixpoint(program))

    assert afp.is_total
    assert afp.true_atoms() == stratified.true_atoms
    _record("alternating_fixpoint", name, best)


@pytest.mark.repro("E11")
@pytest.mark.parametrize("name,program", WORKLOADS[:2], ids=IDS[:2])
def test_unique_stable_model_agrees(benchmark, name, program):
    context = build_context(program)
    afp = alternating_fixpoint(context)

    models, best = timed(benchmark, lambda: stable_models(context, afp=afp))

    assert len(models) == 1
    assert models[0].true_atoms == afp.true_atoms()
    _record("stable_enumeration", name, best)
