"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
outcomes).  The benchmarks use ``pytest-benchmark`` for timing and also
*assert* the qualitative shape the paper reports — who wins, what is true /
false / undefined — so a benchmark run doubles as a reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_configure(config):  # pragma: no cover - benchmarking plumbing
    config.addinivalue_line("markers", "repro(experiment): paper experiment id")
    config.addinivalue_line(
        "markers", "benchsmoke: fast benchmark subset runnable on every CI push"
    )
    config.addinivalue_line(
        "markers", "benchslow: heavy benchmark excluded from the CI smoke step"
    )


def pytest_collection_modifyitems(config, items):  # pragma: no cover - plumbing
    # Every benchmark doubles as a reproduction check, so the CI smoke step
    # (`-m benchsmoke`, with REPRO_BENCH_SMOKE=1 trimming the size sweeps —
    # see _smoke.py) runs them all except the ones explicitly marked
    # benchslow.
    for item in items:
        if "benchslow" not in item.keywords:
            item.add_marker(pytest.mark.benchsmoke)


@pytest.fixture
def report(capsys):
    """Print a small labelled table from inside a benchmark without it being
    swallowed by the capture plugin (shown with ``-s`` or on failure)."""

    def _report(title: str, rows: list[tuple]) -> None:
        print(f"\n[{title}]")
        for row in rows:
            print("   ", *row)

    return _report
