"""Experiment E15 — component-wise versus monolithic well-founded evaluation.

The monolithic alternating fixpoint pays (number of global stages) ×
(whole-program ``S_P`` cost); on layered workloads the stage count grows
with the negation-chain depth while every stage touches every layer, so
the total work is quadratic-ish in the program size.  The component-wise
evaluator (:mod:`repro.core.modular`) condenses the atom dependency graph,
solves each SCC with the cheapest sound method, and only runs the
alternating fixpoint on the tiny negation-through-recursion clusters —
near-linear total work.

``layered_program`` is the adversarial case the ISSUE names: stacked
negation chains (each needs Θ(depth) global stages monolithically, but
every rung is a singleton SCC), one undefined triangle per layer (the
per-component alternating fixpoint), and observers resting on the
undefined atoms (the stratified double closure).

Every comparison asserts the partial models are byte-identical across the
modular engine, the monolithic alternating fixpoint, and the unfounded-set
characterisation (``well_founded_model``), so a timing run doubles as a
Theorem 7.8 / splitting-property check.

Run with ``pytest benchmarks/bench_modular_wfs.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.core.alternating import alternating_fixpoint
from repro.core.context import build_context
from repro.core.modular import modular_well_founded
from repro.core.wellfounded import well_founded_model
from repro.workloads import layered_program

# The acceptance criterion: ≥5× on a layered workload of ≥8 negation
# clusters.  Small enough (~2s total) to run on every CI push.
ACCEPTANCE_LAYERS = 12
ACCEPTANCE_SIZE = 200
SCALING_SWEEP = trim([(2, 40), (6, 100), (12, 200)], keep=2)
REPEAT = 3


def _best_time(function) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _render(true_atoms, false_atoms) -> bytes:
    """A canonical byte serialisation of a partial model."""
    lines = sorted(str(atom) for atom in true_atoms)
    lines.extend(sorted(f"not {atom}" for atom in false_atoms))
    return "\n".join(lines).encode("utf-8")


def _assert_byte_identical(context):
    """Modular, monolithic-AFP and unfounded-set models, byte for byte."""
    modular = modular_well_founded(context)
    monolithic = alternating_fixpoint(context, keep_stages=False)
    unfounded = well_founded_model(context)
    blobs = {
        "modular": _render(modular.model.true_atoms, modular.model.false_atoms),
        "monolithic": _render(
            monolithic.positive_fixpoint, monolithic.negative_fixpoint.atoms
        ),
        "unfounded-set": _render(
            unfounded.model.true_atoms, unfounded.model.false_atoms
        ),
    }
    assert blobs["modular"] == blobs["monolithic"] == blobs["unfounded-set"], (
        "well-founded models diverge across evaluation paths"
    )
    return modular, monolithic


@pytest.mark.repro("E15")
def test_layered_acceptance(report):
    """≥5× modular over monolithic at 12 layers × 200-deep chains, with the
    three evaluation paths producing byte-identical partial models."""
    context = build_context(layered_program(ACCEPTANCE_LAYERS, ACCEPTANCE_SIZE))
    modular_result, monolithic_result = _assert_byte_identical(context)

    modular = _best_time(lambda: modular_well_founded(context))
    monolithic = _best_time(lambda: alternating_fixpoint(context, keep_stages=False))
    stats = modular_result.statistics()
    report(
        f"layered {ACCEPTANCE_LAYERS}x{ACCEPTANCE_SIZE}: modular vs monolithic WFS",
        [
            (f"atoms {stats['atoms']}, ground rules {stats['ground_rules']}",),
            (f"components {stats['components']} (methods {stats['methods']})",),
            (f"monolithic stages {monolithic_result.iterations}",),
            (f"modular    {modular * 1000:9.2f} ms",),
            (f"monolithic {monolithic * 1000:9.2f} ms",),
            (f"speedup    {monolithic / modular:9.1f}x",),
        ],
    )
    emit(
        "modular_wfs",
        workload=f"layered:{ACCEPTANCE_LAYERS}x{ACCEPTANCE_SIZE}",
        sizes={
            "atoms": stats["atoms"],
            "ground_rules": stats["ground_rules"],
            "components": stats["components"],
        },
        timings={"modular": modular, "monolithic": monolithic},
        speedups={"modular_over_monolithic": monolithic / modular},
        extra={
            "methods": stats["methods"],
            "monolithic_stages": monolithic_result.iterations,
        },
    )
    assert monolithic >= 5 * modular, (
        f"modular engine must be ≥5× faster on the layered workload: "
        f"modular {modular * 1000:.2f} ms, monolithic {monolithic * 1000:.2f} ms "
        f"({monolithic / modular:.1f}x)"
    )


@pytest.mark.repro("E15")
def test_layer_scaling(report):
    """Modular work grows near-linearly with the workload while monolithic
    alternation degrades super-linearly; the gap must widen with size."""
    rows = []
    ratios = []
    for layers, size in SCALING_SWEEP:
        context = build_context(layered_program(layers, size))
        _assert_byte_identical(context)
        modular = _best_time(lambda: modular_well_founded(context))
        monolithic = _best_time(lambda: alternating_fixpoint(context, keep_stages=False))
        ratios.append(monolithic / modular)
        emit(
            "modular_wfs",
            workload=f"layered:{layers}x{size}",
            sizes={"layers": layers, "layer_size": size},
            timings={"modular": modular, "monolithic": monolithic},
            speedups={"modular_over_monolithic": monolithic / modular},
        )
        rows.append(
            (
                f"{layers:3d} layers x {size:3d}",
                f"modular {modular * 1000:8.2f} ms",
                f"monolithic {monolithic * 1000:8.2f} ms",
                f"ratio {monolithic / modular:6.1f}x",
            )
        )
    report("layered workload sweep: modular vs monolithic", rows)
    assert ratios[-1] > ratios[0], (
        "the modular advantage must grow with workload size: "
        + ", ".join(f"{ratio:.2f}x" for ratio in ratios)
    )


@pytest.mark.repro("E15")
def test_dispatch_statistics():
    """The layered workload exercises all three per-component methods with
    the expected multiplicities."""
    layers, size = 4, 12
    modular = modular_well_founded(build_context(layered_program(layers, size)))
    counts = modular.method_counts()
    assert counts["alternating"] == layers
    assert counts["stratified"] == 2 * layers
    assert counts["horn"] == modular.component_count - 3 * layers
    # Each undefined triangle is one 3-atom component.
    triangles = [r for r in modular.components if r.method == "alternating"]
    assert all(r.size == 3 for r in triangles)


@pytest.mark.repro("E15")
@pytest.mark.parametrize("engine", ["modular", "monolithic"])
def test_timed_layered_wfs(benchmark, engine):
    """pytest-benchmark recording for EXPERIMENTS.md-style comparison."""
    context = build_context(layered_program(4, 40))
    if engine == "modular":
        result = benchmark(lambda: modular_well_founded(context))
        assert result.model.false_atoms
    else:
        result = benchmark(lambda: alternating_fixpoint(context, keep_stages=False))
        assert result.false_atoms()
