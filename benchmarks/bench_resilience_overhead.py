"""Experiment E19 — budget metering must be (nearly) free when unused.

The :mod:`repro.resilience` budget meter threads checkpoints through every
hot loop of the solver (grounding, condensation, alternating stages,
unfounded-set iterations, per-component dispatch).  Like the recorder
before it (E18), the acceptance criterion is a guard: a run governed by a
*generous* budget — one that never trips — may cost at most 3% over the
unbudgeted call path on the bench_modular_wfs workload.  Unbudgeted runs
see the no-op ``NULL_METER`` singleton, so their per-iteration cost is one
attribute load; budgeted runs pay a strided clock check.  This guard
catches anyone later tightening the stride or moving per-iteration work
outside it.

The benchmark also asserts the budgeted and unbudgeted models are
byte-identical: metering may only observe, never steer.

Run with ``pytest benchmarks/bench_resilience_overhead.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.core.context import build_context
from repro.core.modular import modular_well_founded
from repro.resilience import Budget, metered
from repro.workloads import layered_program

# The bench_modular_wfs acceptance workload (trimmed in smoke mode, where
# trim() keeps the head of the list and [-1] then picks it).
LAYERS, SIZE = trim([(4, 40), (12, 200)], keep=1)[-1]
#: Acceptance ceiling plus a small allowance for timer noise on shared CI
#: runners — best-of-REPEAT comparisons of near-identical code paths still
#: jitter by a few percent at millisecond scales.
OVERHEAD_CEILING = 1.03
NOISE_MARGIN = 1.02
REPEAT = 7

#: Generous enough that neither limit can trip on this workload: the run
#: exercises the full metered path (deadline arithmetic, step counting)
#: without ever aborting.
GENEROUS = Budget(max_seconds=3600.0, max_steps=10**9)


def _render(model) -> bytes:
    lines = sorted(str(atom) for atom in model.true_atoms)
    lines.extend(sorted(f"not {atom}" for atom in model.false_atoms))
    return "\n".join(lines).encode("utf-8")


def _budgeted(context):
    with metered(GENEROUS):
        return modular_well_founded(context)


@pytest.mark.repro("E19")
def test_generous_budget_overhead_acceptance(report):
    """A never-tripping budget ≤3% over the unmetered path."""
    context = build_context(layered_program(LAYERS, SIZE))

    # Warm both arms — first solves pay one-off costs (allocator growth,
    # branch warmup) that would otherwise land on whichever arm runs first
    # and masquerade as metering overhead.
    for _ in range(2):
        modular_well_founded(context)
        _budgeted(context)

    # Interleave the measurements so drift (thermal, scheduler) hits both
    # arms equally; each arm keeps its own best.
    plain_best = float("inf")
    budgeted_best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        modular_well_founded(context)
        plain_best = min(plain_best, time.perf_counter() - start)
        start = time.perf_counter()
        _budgeted(context)
        budgeted_best = min(budgeted_best, time.perf_counter() - start)

    overhead = budgeted_best / plain_best
    report(
        f"resilience overhead on layered {LAYERS}x{SIZE}",
        [
            (f"unbudgeted      {plain_best * 1000:9.3f} ms",),
            (f"generous budget {budgeted_best * 1000:9.3f} ms  ({overhead:5.3f}x)",),
        ],
    )
    emit(
        "resilience",
        workload=f"layered:{LAYERS}x{SIZE}",
        sizes={"layers": LAYERS, "layer_size": SIZE},
        timings={"unbudgeted": plain_best, "generous_budget": budgeted_best},
        speedups={"budgeted_over_unbudgeted": overhead},
    )
    assert overhead <= OVERHEAD_CEILING * NOISE_MARGIN, (
        f"budget metering overhead must stay within 3%: unbudgeted "
        f"{plain_best * 1000:.3f} ms, budgeted {budgeted_best * 1000:.3f} ms "
        f"({(overhead - 1) * 100:.1f}% over)"
    )


@pytest.mark.repro("E19")
def test_budgeted_model_identical():
    """Metering may only observe: same partial model byte-for-byte with
    and without a governing budget."""
    context = build_context(layered_program(4, 20))
    plain = modular_well_founded(context)
    budgeted = _budgeted(context)
    assert _render(plain.model) == _render(budgeted.model)
