"""Compiled kernel versus object-level engines on the acceptance workloads.

The object-level modular engine already beats the monolithic alternating
fixpoint by dispatching per SCC, but it still pays CPython object costs on
every inference: hashing ``Atom`` instances into dicts, allocating
frozensets per component, chasing pointers through rule objects.  The
compiled kernel (:mod:`repro.kernel`) interns the ground atom universe
into dense integer ids once, lowers rules into flat ``array('i')``
segments, and evaluates with Dowling–Gallier counters over a single
``bytearray`` truth vector — same dispatch, no per-inference objects.

The kernel is compile-once / evaluate-many: the IR is cached on the
``GroundContext`` (that is what the session, incremental, and service
layers reuse across refreshes), so the headline timing here is the
evaluation with a warm IR cache and the one-off compile is timed and
emitted separately.

Every workload asserts the partial models are **byte-identical** across
kernel, object modular, and monolithic alternating fixpoint before any
timing is trusted, and the per-atom memory footprint of the kernel state
is measured against the object-level model representation.

Run with ``pytest benchmarks/bench_kernel_speedup.py -s``.
"""

import sys
import time

import pytest

from _metrics import emit
from _smoke import SMOKE
from repro.core.alternating import alternating_fixpoint
from repro.core.context import build_context
from repro.core.modular import modular_well_founded
from repro.games.graphs import chain_edges, random_game_edges
from repro.games.winmove import win_move_program
from repro.kernel import compile_context, kernel_well_founded
from repro.workloads import layered_program, random_propositional_program

REPEAT = 3

# (name, program factory, full-size speedup floor).  The two primary
# acceptance workloads carry the 10x floor from the ISSUE; the random
# workloads have denser alternating components where the object engine
# is less disadvantaged, so they carry the 5x floor.  Smoke mode trims
# every workload and relaxes every floor to the CI-wide 5x.
if SMOKE:
    WORKLOADS = [
        ("layered:4x60", lambda: layered_program(4, 60), 5.0),
        ("win_move:chain:400", lambda: win_move_program(chain_edges(400)), 5.0),
        (
            "win_move:random_game:300",
            lambda: win_move_program(random_game_edges(300, out_degree=3, seed=7)),
            5.0,
        ),
        (
            "random_prop:40x120",
            lambda: random_propositional_program(40, 120, seed=3),
            5.0,
        ),
    ]
else:
    WORKLOADS = [
        ("layered:12x200", lambda: layered_program(12, 200), 10.0),
        ("win_move:chain:2000", lambda: win_move_program(chain_edges(2000)), 10.0),
        (
            "win_move:random_game:1000",
            lambda: win_move_program(random_game_edges(1000, out_degree=3, seed=7)),
            5.0,
        ),
        (
            "random_prop:80x240",
            lambda: random_propositional_program(80, 240, seed=3),
            5.0,
        ),
    ]


def _best_time(function) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _render(true_atoms, false_atoms) -> bytes:
    """A canonical byte serialisation of a partial model."""
    lines = sorted(str(atom) for atom in true_atoms)
    lines.extend(sorted(f"not {atom}" for atom in false_atoms))
    return "\n".join(lines).encode("utf-8")


def _assert_byte_identical(context):
    """Kernel, object modular, and monolithic AFP models, byte for byte."""
    kernel = kernel_well_founded(context)
    modular = modular_well_founded(context)
    monolithic = alternating_fixpoint(context, keep_stages=False)
    blobs = {
        "kernel": _render(kernel.model.true_atoms, kernel.model.false_atoms),
        "modular": _render(modular.model.true_atoms, modular.model.false_atoms),
        "monolithic": _render(
            monolithic.positive_fixpoint, monolithic.negative_fixpoint.atoms
        ),
    }
    assert blobs["kernel"] == blobs["modular"] == blobs["monolithic"], (
        "well-founded models diverge across kernel/modular/monolithic"
    )
    return kernel, modular


def _object_model_bytes(model) -> int:
    """Rough footprint of the object-level truth state: the two model sets
    plus every Atom object (with its args tuple) they reference.  Shallow
    per-atom payloads (predicate/argument strings are shared via interning
    in practice) — a deliberately conservative lower bound."""
    total = sys.getsizeof(model.true_atoms) + sys.getsizeof(model.false_atoms)
    for atom in model.true_atoms | model.false_atoms:
        total += sys.getsizeof(atom) + sys.getsizeof(atom.args)
    return total


@pytest.mark.repro("E16")
@pytest.mark.parametrize(
    ("workload", "factory", "floor"),
    WORKLOADS,
    ids=[name for name, _, _ in WORKLOADS],
)
def test_kernel_speedup(report, workload, factory, floor):
    """Kernel evaluation beats the object modular engine by the per-workload
    floor, with byte-identical models and a per-atom memory drop."""
    context = build_context(factory())

    compile_start = time.perf_counter()
    compiled = compile_context(context)
    compile_seconds = time.perf_counter() - compile_start

    kernel_result, modular_result = _assert_byte_identical(context)

    kernel = _best_time(lambda: kernel_well_founded(context))
    modular = _best_time(lambda: modular_well_founded(context))

    stats = compiled.statistics()
    atoms = max(1, stats["atoms"])
    # Kernel truth state: one byte per atom; the IR arrays are the
    # compile-once cost, reported separately per atom for context.
    kernel_state_per_atom = 1.0
    ir_bytes_per_atom = stats["bytes"] / atoms
    object_bytes = _object_model_bytes(modular_result.model)
    object_per_atom = object_bytes / atoms

    speedup = modular / kernel
    report(
        f"{workload}: compiled kernel vs object modular WFS",
        [
            (f"atoms {stats['atoms']}, rules {stats['rules']}, components {stats['components']}",),
            (f"kernel  {kernel * 1000:9.2f} ms  (warm IR cache)",),
            (f"modular {modular * 1000:9.2f} ms",),
            (f"compile {compile_seconds * 1000:9.2f} ms  (once per grounding)",),
            (f"speedup {speedup:9.1f}x  (floor {floor:.0f}x)",),
            (
                f"memory/atom: truth {kernel_state_per_atom:.0f} B + IR {ir_bytes_per_atom:.0f} B"
                f"  vs object model {object_per_atom:.0f} B",
            ),
        ],
    )
    emit(
        "kernel",
        workload=workload,
        sizes={
            "atoms": stats["atoms"],
            "rules": stats["rules"],
            "components": stats["components"],
            "body_entries": stats["body_entries"],
        },
        timings={
            "kernel": kernel,
            "modular": modular,
            "kernel_compile": compile_seconds,
        },
        speedups={"kernel_over_modular": speedup},
        extra={
            "methods": kernel_result.method_counts(),
            "memory_per_atom_bytes": {
                "kernel_truth": round(kernel_state_per_atom, 2),
                "kernel_ir": round(ir_bytes_per_atom, 2),
                "object_model": round(object_per_atom, 2),
                "reduction_vs_object": round(
                    object_per_atom / (kernel_state_per_atom + ir_bytes_per_atom), 2
                ),
            },
            "models_byte_identical": True,
        },
    )
    assert kernel_state_per_atom + ir_bytes_per_atom < object_per_atom, (
        "kernel per-atom footprint must undercut the object model: "
        f"{kernel_state_per_atom + ir_bytes_per_atom:.1f} B vs {object_per_atom:.1f} B"
    )
    assert modular >= floor * kernel, (
        f"kernel must be ≥{floor:.0f}x faster than object modular on {workload}: "
        f"kernel {kernel * 1000:.2f} ms, modular {modular * 1000:.2f} ms "
        f"({speedup:.1f}x)"
    )


@pytest.mark.repro("E16")
def test_kernel_vs_monolithic(report):
    """Against the monolithic alternating fixpoint the kernel compounds the
    component dispatch win with the flat-array win."""
    layers, size = (4, 60) if SMOKE else (12, 200)
    context = build_context(layered_program(layers, size))
    compile_context(context)
    _assert_byte_identical(context)
    kernel = _best_time(lambda: kernel_well_founded(context))
    monolithic = _best_time(lambda: alternating_fixpoint(context, keep_stages=False))
    report(
        f"layered {layers}x{size}: kernel vs monolithic AFP",
        [
            (f"kernel     {kernel * 1000:9.2f} ms",),
            (f"monolithic {monolithic * 1000:9.2f} ms",),
            (f"speedup    {monolithic / kernel:9.1f}x",),
        ],
    )
    emit(
        "kernel",
        workload=f"layered:{layers}x{size}:vs_monolithic",
        timings={"kernel": kernel, "monolithic": monolithic},
        speedups={"kernel_over_monolithic": monolithic / kernel},
    )
    assert monolithic >= 20 * kernel, (
        f"kernel must be ≥20x faster than the monolithic fixpoint: "
        f"{monolithic / kernel:.1f}x"
    )


@pytest.mark.repro("E16")
@pytest.mark.parametrize("engine", ["kernel", "modular"])
def test_timed_kernel_wfs(benchmark, engine):
    """pytest-benchmark recording for EXPERIMENTS.md-style comparison."""
    context = build_context(layered_program(4, 40))
    if engine == "kernel":
        compile_context(context)
        result = benchmark(lambda: kernel_well_founded(context))
    else:
        result = benchmark(lambda: modular_well_founded(context))
    assert result.model.false_atoms
