"""Machine-readable benchmark metrics — one ``BENCH_<name>.json`` per module.

Every ``bench_*.py`` funnels its measurements through :func:`emit`, so CI
can archive the numbers behind EXPERIMENTS.md as artifacts instead of
scraping them out of captured stdout.  A file holds::

    {
      "schema": 1,
      "benchmark": "<name>",
      "records": [
        {"workload": "...", "sizes": {...}, "timings_s": {...},
         "speedups": {...}, ...},
        ...
      ]
    }

``timings_s`` maps phase/variant labels to seconds (best-of-N, matching
what the benchmark asserts on); ``speedups`` maps ratio labels to floats.
Files land in ``$REPRO_BENCH_OUT`` (created if needed) or, by default,
the repository root.  The first :func:`emit` for a name in a process truncates any
stale file from a previous run; later calls from the same run append, so
a module's parametrised tests accumulate into one document.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Mapping, Optional

SCHEMA_VERSION = 1

# Names already written by this process: first emit truncates, later
# emits append — re-runs never accumulate records from older sessions.
_INITIALISED: set[str] = set()


def output_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    # Default to the repository root (parent of benchmarks/) so BENCH_*.json
    # files land in a stable place regardless of pytest's working directory.
    return Path(__file__).resolve().parent.parent


def _round_values(mapping: Optional[Mapping[str, float]]) -> dict[str, float]:
    return {key: round(float(value), 6) for key, value in (mapping or {}).items()}


def emit(
    name: str,
    *,
    workload: str,
    sizes: Optional[Mapping[str, object]] = None,
    timings: Optional[Mapping[str, float]] = None,
    speedups: Optional[Mapping[str, float]] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Path:
    """Append one measurement record to ``BENCH_<name>.json``.

    *timings* are seconds; *sizes* describe the workload (atoms, rules,
    layers, ...); *speedups* are dimensionless ratios; *extra* is for
    anything else worth archiving (method counts, agreement flags, ...).
    Returns the path written.
    """
    directory = output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"

    document: dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "benchmark": name,
        "records": [],
    }
    if name in _INITIALISED and path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded.get("records"), list):
                document = loaded
        except (OSError, ValueError):
            pass  # unreadable → start the document over
    _INITIALISED.add(name)

    record: dict[str, object] = {
        "workload": workload,
        "sizes": dict(sizes or {}),
        "timings_s": _round_values(timings),
        "speedups": _round_values(speedups),
    }
    if extra:
        record["extra"] = dict(extra)
    document["records"].append(record)

    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(path)
    return path


def benchmark_best(benchmark) -> Optional[float]:
    """Best observed seconds from a ``pytest-benchmark`` fixture, or ``None``
    when benchmarking is disabled and no stats were collected."""
    try:
        return float(benchmark.stats.stats.min)
    except (AttributeError, TypeError):
        return None


def timed(benchmark, function):
    """Run *function* under the ``benchmark`` fixture; return
    ``(result, seconds)``.

    With benchmarking enabled, *seconds* is the fixture's best round.
    Under ``--benchmark-disable`` (the CI smoke run) the fixture calls the
    function exactly once and records nothing, so the wall-clock time of
    that single call stands in — less precise, but every module still
    emits its ``BENCH_*.json``."""
    start = time.perf_counter()
    result = benchmark(function)
    wall = time.perf_counter() - start
    best = benchmark_best(benchmark)
    return result, wall if best is None else best
