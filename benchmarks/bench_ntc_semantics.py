"""Experiment E4 — Example 2.2 / Section 8.5 (complement of transitive closure).

The paper's recurring example: ``ntc(X, Y) :- not tc(X, Y)`` computes the
complement of reachability under the stratified / well-founded / stable
semantics, but the inflationary (IFP) semantics fires the negation in round
one and floods ``ntc`` with every pair, and the Fitting semantics leaves
pairs touching a cycle undefined.  The benchmarks compute ``ntc`` on chains,
cycles and random graphs under each semantics and assert exactly that
pattern of agreement and failure.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, build_context
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.games.graphs import chain_edges, cycle_edges, random_digraph_edges, nodes_of
from repro.semantics import fitting_model, inflationary_model, stratified_model
from repro.workloads import complement_of_transitive_closure_program


def reachable_pairs(edges):
    nodes = nodes_of(edges)
    successors = {}
    for source, target in edges:
        successors.setdefault(source, set()).add(target)
    closure = set()
    for start in nodes:
        frontier = list(successors.get(start, ()))
        seen = set()
        while frontier:
            node = frontier.pop()
            if (start, node) in closure:
                continue
            closure.add((start, node))
            frontier.extend(successors.get(node, ()))
        del seen
    return {(s, t) for s in nodes for t in nodes} - closure, closure


def _record(semantics: str, workload: str, best: float) -> None:
    emit("ntc_semantics", workload=workload, timings={semantics: best})


def ntc_atoms(interpretation_true_atoms):
    return {
        (a.args[0].value, a.args[1].value)
        for a in interpretation_true_atoms
        if a.predicate == "ntc"
    }


@pytest.mark.repro("E4")
@pytest.mark.parametrize("edges_name,edges", [
    ("chain-6", chain_edges(6)),
    ("cycle-5", cycle_edges(5)),
    ("random-8", random_digraph_edges(8, 0.25, seed=3)),
])
def test_ntc_well_founded_matches_true_complement(benchmark, edges_name, edges):
    if not edges:
        pytest.skip("empty random graph")
    program = complement_of_transitive_closure_program(edges)
    expected_complement, _ = reachable_pairs(edges)

    result, best = timed(benchmark, lambda: alternating_fixpoint(program))

    assert result.is_total
    assert ntc_atoms(result.true_atoms()) == expected_complement
    _record("well_founded", edges_name, best)


@pytest.mark.repro("E4")
@pytest.mark.parametrize("edges_name,edges", [
    ("chain-6", chain_edges(6)),
    ("cycle-5", cycle_edges(5)),
])
def test_ntc_stratified_agrees_with_wfs(benchmark, edges_name, edges):
    program = complement_of_transitive_closure_program(edges)
    expected_complement, _ = reachable_pairs(edges)
    result, best = timed(benchmark, lambda: stratified_model(program))
    assert ntc_atoms(result.true_atoms) == expected_complement
    _record("stratified", edges_name, best)


@pytest.mark.repro("E4")
@pytest.mark.parametrize("edges_name,edges", [
    ("chain-5", chain_edges(5)),
    ("cycle-4", cycle_edges(4)),
])
def test_ntc_inflationary_overshoots(benchmark, report, edges_name, edges):
    """IFP puts every pair into ntc — including pairs that ARE reachable."""
    program = complement_of_transitive_closure_program(edges)
    expected_complement, closure = reachable_pairs(edges)

    result, best = timed(benchmark, lambda: inflationary_model(program))

    ifp_ntc = ntc_atoms(result.true_atoms)
    assert ifp_ntc >= expected_complement
    assert ifp_ntc & closure, "IFP should wrongly include reachable pairs"
    report(
        f"Example 2.2 under IFP ({edges_name})",
        [
            ("true complement size", len(expected_complement)),
            ("IFP ntc size", len(ifp_ntc)),
            ("wrongly included pairs", len(ifp_ntc & closure)),
        ],
    )
    _record("inflationary", edges_name, best)


@pytest.mark.repro("E4")
def test_ntc_fitting_undefined_on_cycles(benchmark):
    """Fitting leaves ntc undefined for pairs whose tc proof search loops."""
    edges = cycle_edges(3) + [("m", "m2")]  # a cycle plus a detached edge
    program = complement_of_transitive_closure_program(edges)

    result, best = timed(benchmark, lambda: fitting_model(program))

    probe = Atom("ntc", (Constant("n0"), Constant("m")))  # not reachable, via cycle
    assert result.model.value_of_atom(probe).value == "undefined"
    # The well-founded semantics decides the same pair.
    afp = alternating_fixpoint(build_context(program))
    assert afp.value_of(probe) == "true"
    _record("fitting", "cycle3_plus_edge", best)
