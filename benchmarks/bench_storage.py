"""Experiment E17 — shared FactStore grounding versus per-run rebuild.

Before the storage redesign every grounding run copied the whole EDB into
a fresh ``RelationStore`` and rebuilt its bound-position hash indexes from
scratch.  With the :class:`~repro.storage.FactStore` protocol the grounder
probes the live store in place: the EDB rows are never copied, and the
indexes one run builds survive into the next.  This benchmark times the
two paths on the ISSUE's workloads:

* **chain-40 transitive closure** — derivation-heavy (the overlay of
  derived atoms dwarfs the 40-row EDB), so shared storage must hold
  *parity*: the split-relation probe indirection may not cost anything;
* **layered reachability** — a bulk-EDB workload (thousands of edge
  facts, a thin derived relation) where skipping the per-run re-insert
  and re-index of the fact base is a measurable win.

It also reports the :class:`~repro.storage.SqliteStore` timing split on
the same workloads (durability has a price; the point is that it is a
constant factor, not a blow-up), and every comparison asserts the three
paths ground to the identical rule set — a timing run doubles as a
differential check.

Run with ``pytest benchmarks/bench_storage.py -s``.
"""

import time

import pytest

from _metrics import emit
from _smoke import trim
from repro.datalog.grounding import stream_relevant_ground
from repro.datalog.parser import parse_program
from repro.datalog.rules import Program
from repro.games import chain_edges
from repro.storage import MemoryStore, SqliteStore
from repro.workloads import transitive_closure_program

REPEAT = 5
#: Shared-store grounding must be no slower than the per-run rebuild;
#: the margin absorbs CI timer noise on the parity-shaped workloads.
PARITY_MARGIN = 1.25

CHAIN_SIZES = trim([40])
LAYERED_SHAPES = trim([(20, 100)])


def _best(function, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _split(program: Program) -> tuple[Program, list]:
    rules = Program(rule for rule in program if not rule.is_fact)
    facts = [rule.head for rule in program.facts()]
    return rules, facts


def _layered_reachability(layers: int, width: int) -> Program:
    """A layered DAG (bulk EDB) with a thin derived reachability relation."""
    lines = ["reach(X) :- src(X).", "reach(Y) :- reach(X), edge(X, Y).", "src(n0_0)."]
    for layer in range(layers - 1):
        for i in range(width):
            lines.append(f"edge(n{layer}_{i}, n{layer + 1}_{i}).")
            lines.append(f"edge(n{layer}_{i}, n{layer + 1}_{(i + 1) % width}).")
    return parse_program("\n".join(lines))


def _compare(program: Program):
    """Time the legacy per-run rebuild against grounding off a shared
    MemoryStore and a SqliteStore, asserting identical rule sets."""
    rules, facts = _split(program)

    memory = MemoryStore()
    for fact in facts:
        memory.add_atom(fact)
    durable = SqliteStore(":memory:")
    for fact in facts:
        durable.add_atom(fact)

    legacy_rules = set(stream_relevant_ground(program))
    shared_rules = set(stream_relevant_ground(rules, store=memory))  # warms the indexes
    sqlite_rules = set(stream_relevant_ground(rules, store=durable))
    assert shared_rules == legacy_rules
    assert sqlite_rules == legacy_rules

    legacy = _best(lambda: list(stream_relevant_ground(program)))
    shared = _best(lambda: list(stream_relevant_ground(rules, store=memory)))
    sqlite = _best(lambda: list(stream_relevant_ground(rules, store=durable)), repeat=3)
    durable.close()
    return legacy, shared, sqlite


@pytest.mark.repro("E17")
def test_chain_transitive_closure_parity(report):
    """Derivation-dominated workload: the shared store must cost nothing."""
    rows = []
    timings = {}
    for size in CHAIN_SIZES:
        program = transitive_closure_program(chain_edges(size))
        legacy, shared, sqlite = _compare(program)
        timings[size] = (legacy, shared)
        emit(
            "storage",
            workload=f"transitive_closure_chain:{size}",
            sizes={"nodes": size},
            timings={"rebuild": legacy, "shared_memory": shared, "sqlite": sqlite},
            speedups={"shared_over_rebuild": legacy / shared},
        )
        rows.append(
            (
                f"chain-{size}",
                f"rebuild {legacy * 1000:9.2f} ms",
                f"shared {shared * 1000:9.2f} ms",
                f"sqlite {sqlite * 1000:9.2f} ms",
                f"ratio {legacy / shared:5.2f}x",
            )
        )
    report("transitive closure: per-run rebuild vs shared FactStore", rows)
    legacy, shared = timings[CHAIN_SIZES[-1]]
    assert shared <= legacy * PARITY_MARGIN, (
        f"shared-store grounding regressed on chain-{CHAIN_SIZES[-1]}: "
        f"{shared * 1000:.2f} ms vs {legacy * 1000:.2f} ms rebuild"
    )


@pytest.mark.repro("E17")
def test_layered_bulk_edb(report):
    """Bulk-EDB workload: skipping the per-run fact re-index must pay."""
    rows = []
    timings = {}
    for layers, width in LAYERED_SHAPES:
        program = _layered_reachability(layers, width)
        legacy, shared, sqlite = _compare(program)
        timings[(layers, width)] = (legacy, shared)
        emit(
            "storage",
            workload=f"layered_reachability:{layers}x{width}",
            sizes={"layers": layers, "width": width},
            timings={"rebuild": legacy, "shared_memory": shared, "sqlite": sqlite},
            speedups={"shared_over_rebuild": legacy / shared},
        )
        rows.append(
            (
                f"layered {layers}x{width}",
                f"rebuild {legacy * 1000:9.2f} ms",
                f"shared {shared * 1000:9.2f} ms",
                f"sqlite {sqlite * 1000:9.2f} ms",
                f"ratio {legacy / shared:5.2f}x",
            )
        )
    report("layered reachability (bulk EDB): rebuild vs shared FactStore", rows)
    legacy, shared = timings[LAYERED_SHAPES[-1]]
    assert shared <= legacy * PARITY_MARGIN, (
        f"shared-store grounding regressed on the layered workload: "
        f"{shared * 1000:.2f} ms vs {legacy * 1000:.2f} ms rebuild"
    )


@pytest.mark.repro("E17")
def test_models_identical_across_storage_paths():
    """The acceptance differential: MemoryStore, SqliteStore and the legacy
    attached-facts path produce byte-identical well-founded models."""
    from repro.config import EngineConfig
    from repro.engine.solver import solve_configured

    program = transitive_closure_program(chain_edges(12))
    rules, facts = _split(program)
    config = EngineConfig(semantics="well-founded")

    legacy = solve_configured(program, config)
    outcomes = [(legacy.interpretation.true_atoms, legacy.interpretation.false_atoms, legacy.base)]
    for backend in (MemoryStore(), SqliteStore(":memory:")):
        for fact in facts:
            backend.add_atom(fact)
        solution = solve_configured(rules, config, store=backend)
        outcomes.append(
            (solution.interpretation.true_atoms, solution.interpretation.false_atoms, solution.base)
        )
        backend.close()
    assert outcomes[0] == outcomes[1] == outcomes[2]
