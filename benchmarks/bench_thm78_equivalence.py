"""Experiment E6 — Theorem 7.8 (alternating fixpoint == well-founded model).

The paper's main theorem is checked empirically across workload families:
for every program, the model computed by iterating ``A_P = S̃_P ∘ S̃_P`` is
literal-for-literal identical to the model computed from unfounded sets and
``W_P``.  The benchmark also compares the cost of the two constructions —
the alternating fixpoint recomputes ``S_P`` from scratch each pass, while
the ``W_P`` iteration grows the partial model monotonically — which is the
trade-off an implementor of the paper would care about.
"""

import pytest

from _metrics import emit, timed
from repro.core import alternating_fixpoint, build_context, well_founded_model
from repro.games import random_game_edges, win_move_program
from repro.workloads import random_propositional_program, well_founded_nodes_program
from repro.games.graphs import lollipop_edges, random_digraph_edges


def workloads():
    yield "random-prop-40", random_propositional_program(atoms=20, rules=40, seed=1)
    yield "random-prop-120", random_propositional_program(atoms=40, rules=120, seed=2)
    yield "win-move-random-24", win_move_program(random_game_edges(24, 3, seed=3))
    yield "win-move-lollipop", win_move_program(lollipop_edges(4, 12))
    yield "wf-nodes-random-12", well_founded_nodes_program(random_digraph_edges(12, 0.2, seed=4))


WORKLOADS = list(workloads())


@pytest.mark.repro("E6")
@pytest.mark.parametrize("name,program", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_afp_model_equals_wfs_model(benchmark, name, program):
    context = build_context(program)

    afp, best = timed(benchmark, lambda: alternating_fixpoint(context))

    wfs = well_founded_model(context)
    assert afp.model.true_atoms == wfs.model.true_atoms
    assert afp.model.false_atoms == wfs.model.false_atoms
    assert afp.undefined_atoms == wfs.undefined_atoms
    emit("thm78_equivalence", workload=name, timings={"alternating_fixpoint": best})


@pytest.mark.repro("E6")
@pytest.mark.parametrize("name,program", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_wfs_via_unfounded_sets_baseline(benchmark, name, program):
    """Timing baseline: the same models computed with the W_P iteration."""
    context = build_context(program)
    result, best = timed(benchmark, lambda: well_founded_model(context))
    assert result.model is not None
    emit("thm78_equivalence", workload=name, timings={"unfounded_sets": best})
