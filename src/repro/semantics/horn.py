"""Minimum models of definite (Horn) programs — van Emden & Kowalski.

The paper's Section 3.4 takes the Horn immediate consequence transformation
``T_P`` as the starting point of its uniform framework; the minimum model of
a definite program is ``T_P↑ω(∅)``.  The alternating fixpoint must agree
with this model on Horn programs (there are no negative literals for the
stability transformation to act on), which the property-based tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import EngineConfig, merge_entry_config
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..exceptions import EvaluationError
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet
from ..fixpoint.operators import FixpointTrace, iterate_to_fixpoint
from ..resilience.budget import metered
from ..core.context import GroundContext, build_context
from ..core.eventual import eventual_consequence

__all__ = ["HornModelResult", "horn_minimum_model", "horn_model_trace"]


@dataclass(frozen=True)
class HornModelResult:
    """The minimum model of a definite program, as atoms and as a total
    interpretation over the context base."""

    context: GroundContext
    true_atoms: frozenset[Atom]

    @property
    def interpretation(self) -> PartialInterpretation:
        return PartialInterpretation.total_from_true(self.true_atoms, self.context.base)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.true_atoms


def _require_definite(program: Program) -> None:
    if not program.is_definite:
        offending = next(rule for rule in program if not rule.is_definite)
        raise EvaluationError(
            f"program is not definite (Horn): rule '{offending}' has a negative literal"
        )


def horn_minimum_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    strategy: str | None = None,
    config: EngineConfig | None = None,
) -> HornModelResult:
    """The least Herbrand model of a definite program.

    Raises :class:`EvaluationError` when the program contains negation.
    A *config* supplies ``strategy``/``limits`` together.
    """
    strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits
    )
    with metered(budget):
        if isinstance(program, GroundContext):
            context = program
            _require_definite(context.program)
        else:
            _require_definite(program)
            context = build_context(program, limits=limits, grounder=grounder)
        true_atoms = eventual_consequence(context, NegativeSet.empty(), strategy=strategy)
    return HornModelResult(context, true_atoms)


def horn_model_trace(
    program: Program,
    limits: GroundingLimits | None = None,
) -> FixpointTrace[frozenset[Atom]]:
    """The ``T_P↑k(∅)`` stages of the minimum-model computation.

    Exposed separately because the ablation benchmark compares naive
    iteration against the counting-based evaluation.
    """
    _require_definite(program)
    context = build_context(program, limits=limits)

    def step(current: frozenset[Atom]) -> frozenset[Atom]:
        derived = set(context.facts)
        for rule in context.rules:
            if all(atom in current for atom in rule.positive_body):
                derived.add(rule.head)
        return frozenset(derived)

    return iterate_to_fixpoint(step, frozenset())
