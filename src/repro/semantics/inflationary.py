"""Inflationary fixpoint (IFP) semantics (Sections 2.2 and 3.4 of the paper).

The inflationary transformation draws conclusions in rounds: a negative
literal counts as true when its atom has not been concluded in an *earlier*
round, and once concluded a positive fact is kept forever.  Its fixpoint is
the inflationary semantics that Kolaitis recommends for unstratified
programs and that Example 2.2 contrasts with the stratified / well-founded
reading of the complement-of-transitive-closure program: under IFP the
``ntc`` rule fires for every pair in the very first round, so ``ntc`` ends
up containing everything instead of the complement.

Benchmark E4 regenerates exactly that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.operators import FixpointTrace, iterate_to_fixpoint
from ..core.consequence import inflationary_step, naive_negation_step
from ..core.context import GroundContext, build_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import EngineConfig

__all__ = ["InflationaryResult", "inflationary_model", "inflationary_trace", "naive_negation_trace"]


@dataclass(frozen=True)
class InflationaryResult:
    """The inflationary fixpoint and its round-by-round trace."""

    context: GroundContext
    true_atoms: frozenset[Atom]
    trace: FixpointTrace[frozenset[Atom]]

    @property
    def interpretation(self) -> PartialInterpretation:
        """IFP is a two-valued semantics: everything not concluded is false."""
        return PartialInterpretation.total_from_true(self.true_atoms, self.context.base)

    @property
    def rounds(self) -> int:
        return self.trace.iterations


def inflationary_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    config: "EngineConfig | None" = None,
) -> InflationaryResult:
    """Compute the inflationary (IFP) fixpoint of *program*.

    A *config* supplies ``limits`` (the inflationary operator has no other
    tunable: it is strategy-free by definition).
    """
    if config is not None and limits is None:
        limits = config.limits
    if isinstance(program, GroundContext):
        context = program
    else:
        context = build_context(program, limits=limits)
    trace = iterate_to_fixpoint(lambda current: inflationary_step(context, current), frozenset())
    return InflationaryResult(context, trace.fixpoint, trace)


def inflationary_trace(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
) -> FixpointTrace[frozenset[Atom]]:
    """Just the round-by-round trace of the inflationary computation."""
    return inflationary_model(program, limits=limits).trace


def naive_negation_trace(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    max_rounds: int = 64,
) -> list[frozenset[Atom]]:
    """Rounds of the *non*-inflationary extension ``C_P(I⁺, conj(I⁺))``.

    This operator is generally not increasing (Section 3.4); the function
    therefore runs a bounded number of rounds and returns them all — the
    tests use it to exhibit the oscillation the paper mentions.  It stops
    early if a fixpoint or a 2-cycle is detected.
    """
    if isinstance(program, GroundContext):
        context = program
    else:
        context = build_context(program, limits=limits)
    rounds: list[frozenset[Atom]] = [frozenset()]
    for _ in range(max_rounds):
        following = naive_negation_step(context, rounds[-1])
        rounds.append(following)
        if len(rounds) >= 3 and (following == rounds[-2] or following == rounds[-3]):
            break
    return rounds
