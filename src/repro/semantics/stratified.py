"""Stratified (perfect-model) semantics (Section 2.3 of the paper).

For a stratified program the predicates split into strata so that negation
only refers to strictly lower strata; evaluating stratum by stratum — each
time taking the complement of the already-completed lower strata as the
negative facts — yields the *perfect model*.  On stratified programs the
well-founded model is total and coincides with the perfect model, which is
one of the agreement properties the test suite and benchmark E11 verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stratification import Stratification, stratify
from ..config import EngineConfig, merge_entry_config
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..evaluation.engine import get_engine
from ..fixpoint.interpretations import PartialInterpretation
from ..resilience.budget import metered
from ..core.context import GroundContext, build_context

__all__ = ["StratifiedModelResult", "stratified_model"]


@dataclass(frozen=True)
class StratifiedModelResult:
    """The perfect model of a stratified program plus evaluation metadata."""

    context: GroundContext
    stratification: Stratification
    true_atoms: frozenset[Atom]

    @property
    def interpretation(self) -> PartialInterpretation:
        """The perfect model as a *total* interpretation over the base."""
        return PartialInterpretation.total_from_true(self.true_atoms, self.context.base)

    @property
    def strata_count(self) -> int:
        return self.stratification.depth


def stratified_model(
    program: Program,
    limits: GroundingLimits | None = None,
    strategy: str | None = None,
    config: "EngineConfig | None" = None,
) -> StratifiedModelResult:
    """Evaluate a stratified program stratum by stratum.

    Each stratum is saturated by the evaluation engine: the rules of the
    stratum whose negative conditions are not contradicted become the
    active set (stratification guarantees negative body predicates live in
    strictly lower, already-completed strata or in the EDB, so "not yet
    derived" genuinely means false there), and the closure is seeded with
    everything true so far.  Raises
    :class:`~repro.exceptions.NotStratifiedError` when the program is not
    stratified (e.g. the win–move program of Example 5.2).  A *config*
    supplies ``strategy``/``limits`` together.
    """
    strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits
    )
    with metered(budget):
        stratification = stratify(program)
        context = build_context(program, limits=limits, grounder=grounder)
        engine = get_engine(strategy)

        # Atoms confirmed true so far (across completed strata).
        true_atoms: set[Atom] = set(context.facts)
        # Atoms of completed strata confirmed false.
        false_atoms: set[Atom] = set()

        for level in range(stratification.depth):
            predicates = stratification.predicates_at(level)
            active = bytearray(len(context.rules))
            for index, rule in enumerate(context.rules):
                if stratification.stratum_of(rule.head.predicate) != level:
                    continue
                if any(atom in true_atoms for atom in rule.negative_body):
                    continue
                active[index] = 1
            true_atoms = set(engine.closure(context, true_atoms, active))
            # Close the stratum: everything of its predicates not derived is false.
            for atom in context.base:
                if atom.predicate in predicates and atom not in true_atoms:
                    false_atoms.add(atom)

    return StratifiedModelResult(context, stratification, frozenset(true_atoms))
