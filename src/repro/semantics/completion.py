"""Clark completion (Section 2.1 of the paper).

The *completion* of a program replaces the "if" rules by "if and only if"
definitions: every atom of the base is equivalent to the disjunction of its
rule bodies (an empty disjunction is falsity).  The paper recalls the
classical anomaly that the completion of ``p ← ¬p`` is the inconsistent
``p ↔ ¬p``; this module builds completions of *ground* programs explicitly
so the tests can demonstrate exactly that, and relates two-valued models of
the completion to the other semantics (every stable model is a model of the
completion, but not conversely).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import AbstractSet, Iterator

from ..datalog.atoms import Atom, Literal
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..core.context import GroundContext, build_context

__all__ = ["CompletionDefinition", "ClarkCompletion", "clark_completion"]


@dataclass(frozen=True)
class CompletionDefinition:
    """The completed definition of one atom: ``atom ↔ ∨ bodies``."""

    atom: Atom
    bodies: tuple[tuple[Literal, ...], ...]

    def __str__(self) -> str:
        if not self.bodies:
            return f"{self.atom} <-> false"
        disjuncts = [
            " & ".join(str(literal) for literal in body) if body else "true"
            for body in self.bodies
        ]
        return f"{self.atom} <-> " + " | ".join(disjuncts)

    def holds_in(self, true_atoms: AbstractSet[Atom]) -> bool:
        """Two-valued check of the equivalence under a total assignment."""
        left = self.atom in true_atoms
        right = any(
            all(
                (literal.atom in true_atoms) == literal.positive
                for literal in body
            )
            for body in self.bodies
        )
        return left == right


@dataclass(frozen=True)
class ClarkCompletion:
    """The completion of a ground program: one definition per base atom."""

    context: GroundContext
    definitions: tuple[CompletionDefinition, ...]

    def definition_of(self, atom: Atom) -> CompletionDefinition:
        for definition in self.definitions:
            if definition.atom == atom:
                return definition
        return CompletionDefinition(atom, ())

    def is_model(self, true_atoms: AbstractSet[Atom]) -> bool:
        """Is the total assignment (true atoms listed, rest false) a
        two-valued model of the completion?"""
        return all(definition.holds_in(true_atoms) for definition in self.definitions)

    def two_valued_models(self) -> Iterator[frozenset[Atom]]:
        """Enumerate every two-valued model by brute force.

        Exponential in the base size — intended for the small programs of
        the paper's examples and for differential testing against stable
        models (every stable model is a completion model).
        """
        atoms = sorted(self.context.base, key=str)
        for size in range(len(atoms) + 1):
            for subset in itertools.combinations(atoms, size):
                candidate = frozenset(subset)
                if self.is_model(candidate):
                    yield candidate

    def is_consistent(self) -> bool:
        """True when the completion has at least one two-valued model."""
        return next(iter(self.two_valued_models()), None) is not None


def clark_completion(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
) -> ClarkCompletion:
    """Build the Clark completion of the (grounded) program."""
    if isinstance(program, GroundContext):
        context = program
    else:
        context = build_context(program, limits=limits)

    definitions: list[CompletionDefinition] = []
    for atom in sorted(context.base, key=str):
        bodies: list[tuple[Literal, ...]] = []
        if atom in context.facts:
            bodies.append(())
        for index in context.rules_by_head.get(atom, ()):
            rule = context.rules[index]
            body = tuple(
                [Literal(a, True) for a in rule.positive_body]
                + [Literal(a, False) for a in rule.negative_body]
            )
            bodies.append(body)
        definitions.append(CompletionDefinition(atom, tuple(bodies)))
    return ClarkCompletion(context, tuple(definitions))
