"""Baseline semantics the paper compares against.

* Horn minimum models (van Emden–Kowalski);
* stratified / perfect models;
* the inflationary (IFP) semantics;
* Fitting's Kripke–Kleene three-valued semantics;
* the Clark completion;
* a comparison harness evaluating one program under all of them.
"""

from .completion import ClarkCompletion, CompletionDefinition, clark_completion
from .comparison import SemanticsComparison, compare_semantics
from .fitting import FittingResult, fitting_model, fitting_transform
from .horn import HornModelResult, horn_minimum_model, horn_model_trace
from .inflationary import (
    InflationaryResult,
    inflationary_model,
    inflationary_trace,
    naive_negation_trace,
)
from .stratified import StratifiedModelResult, stratified_model

__all__ = [
    "ClarkCompletion",
    "CompletionDefinition",
    "clark_completion",
    "SemanticsComparison",
    "compare_semantics",
    "FittingResult",
    "fitting_model",
    "fitting_transform",
    "HornModelResult",
    "horn_minimum_model",
    "horn_model_trace",
    "InflationaryResult",
    "inflationary_model",
    "inflationary_trace",
    "naive_negation_trace",
    "StratifiedModelResult",
    "stratified_model",
]
