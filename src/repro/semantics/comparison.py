"""Cross-semantics comparison harness.

The paper's motivation sections (2.1–2.5) compare how the different
semantics treat the same program — most famously the complement of
transitive closure.  This module evaluates a program under every semantics
that applies to it and reports the verdicts side by side; the E4 benchmark
and the ``semantics_zoo`` example are thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.classification import ProgramClassification, classify
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..exceptions import EvaluationError, NotStratifiedError
from ..fixpoint.interpretations import PartialInterpretation
from ..core.alternating import alternating_fixpoint
from ..core.context import build_context
from ..core.stable import stable_models
from ..core.wellfounded import well_founded_model
from .fitting import fitting_model
from .horn import horn_minimum_model
from .inflationary import inflationary_model
from .stratified import stratified_model

__all__ = ["SemanticsComparison", "compare_semantics"]


@dataclass(frozen=True)
class SemanticsComparison:
    """Models of one program under every applicable semantics.

    Semantics that do not apply (e.g. stratified semantics of an
    unstratifiable program) are ``None``; ``stable`` holds the tuple of
    stable models (possibly empty), or ``None`` when enumeration was
    skipped.
    """

    program: Program
    classification: ProgramClassification
    alternating: PartialInterpretation
    well_founded: PartialInterpretation
    fitting: PartialInterpretation
    inflationary: PartialInterpretation
    stratified: Optional[PartialInterpretation]
    horn: Optional[PartialInterpretation]
    stable: Optional[tuple[frozenset[Atom], ...]]

    def verdicts_for(self, atom: Atom) -> dict[str, str]:
        """Truth value of one atom under each semantics, as strings."""

        def value(interpretation: Optional[PartialInterpretation]) -> str:
            if interpretation is None:
                return "n/a"
            return interpretation.value_of_atom(atom).value

        stable_verdict: str
        if self.stable is None:
            stable_verdict = "not computed"
        elif not self.stable:
            stable_verdict = "no stable model"
        elif all(atom in model for model in self.stable):
            stable_verdict = "true"
        elif all(atom not in model for model in self.stable):
            stable_verdict = "false"
        else:
            stable_verdict = "undefined"

        return {
            "alternating_fixpoint": value(self.alternating),
            "well_founded": value(self.well_founded),
            "fitting": value(self.fitting),
            "inflationary": value(self.inflationary),
            "stratified": value(self.stratified),
            "horn": value(self.horn),
            "stable": stable_verdict,
        }

    def agreement_afp_wfs(self) -> bool:
        """Theorem 7.8 on this program: AFP and WFS models coincide."""
        return (
            self.alternating.true_atoms == self.well_founded.true_atoms
            and self.alternating.false_atoms == self.well_founded.false_atoms
        )


def compare_semantics(
    program: Program,
    limits: GroundingLimits | None = None,
    enumerate_stable: bool = True,
    max_stable_atoms: int = 40,
) -> SemanticsComparison:
    """Evaluate *program* under every semantics that applies.

    ``enumerate_stable`` can be disabled (or is skipped automatically when
    the base exceeds *max_stable_atoms* atoms) because stable-model
    enumeration is worst-case exponential.
    """
    classification = classify(program)
    context = build_context(program, limits=limits)

    afp = alternating_fixpoint(context)
    wfs = well_founded_model(context)
    fitting = fitting_model(context)
    inflationary = inflationary_model(context)

    stratified_interpretation: Optional[PartialInterpretation] = None
    try:
        stratified_interpretation = stratified_model(program, limits=limits).interpretation
    except NotStratifiedError:
        stratified_interpretation = None

    horn_interpretation: Optional[PartialInterpretation] = None
    if program.is_definite:
        horn_interpretation = horn_minimum_model(context).interpretation

    stable: Optional[tuple[frozenset[Atom], ...]] = None
    if enumerate_stable and len(context.base) <= max_stable_atoms:
        stable = tuple(model.true_atoms for model in stable_models(context, afp=afp))

    return SemanticsComparison(
        program=program,
        classification=classification,
        alternating=afp.model,
        well_founded=wfs.model,
        fitting=fitting.model,
        inflationary=inflationary.interpretation,
        stratified=stratified_interpretation,
        horn=horn_interpretation,
        stable=stable,
    )
