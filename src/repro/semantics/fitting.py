"""Fitting's Kripke–Kleene three-valued semantics (Section 2.1 of the paper).

Fitting interprets the Clark completion in three-valued logic: the
*Fitting transformation* maps a partial interpretation ``I`` to the partial
interpretation that makes an atom

* **true** when some rule for it has a body true in ``I``, and
* **false** when *every* rule for it has a body false in ``I`` (atoms with
  no rules are immediately false).

Its least fixpoint (in the information ordering) is the Fitting / Kripke–
Kleene model.  The paper recalls Minker's objection that this semantics
leaves the complement of transitive closure undefined on cyclic graphs —
the well-founded semantics strictly extends it (Fitting ⊆ WFS, checked by
the property-based tests and demonstrated by benchmark E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..fixpoint.interpretations import PartialInterpretation, TruthValue
from ..core.context import GroundContext, build_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import EngineConfig

__all__ = ["FittingResult", "fitting_transform", "fitting_model"]


@dataclass(frozen=True)
class FittingResult:
    """The Fitting (Kripke–Kleene) model and its iteration trace."""

    context: GroundContext
    model: PartialInterpretation
    stages: tuple[PartialInterpretation, ...]

    @property
    def iterations(self) -> int:
        return len(self.stages) - 1

    @property
    def is_total(self) -> bool:
        return self.model.is_total_over(self.context.base)


def fitting_transform(
    context: GroundContext, interpretation: PartialInterpretation
) -> PartialInterpretation:
    """One application of Fitting's three-valued operator ``Φ_P``."""
    true_atoms: set[Atom] = set(context.facts)
    false_atoms: set[Atom] = set()

    rules_by_head: dict[Atom, list[int]] = {
        atom: list(indices) for atom, indices in context.rules_by_head.items()
    }
    for atom in context.base:
        if atom in context.facts:
            continue
        indices = rules_by_head.get(atom, [])
        if not indices:
            false_atoms.add(atom)
            continue
        body_values = []
        for index in indices:
            rule = context.rules[index]
            value = TruthValue.TRUE
            for body_atom in rule.positive_body:
                value = value.conjoin(interpretation.value_of_atom(body_atom))
            for body_atom in rule.negative_body:
                value = value.conjoin(~interpretation.value_of_atom(body_atom))
            body_values.append(value)
        if any(value is TruthValue.TRUE for value in body_values):
            true_atoms.add(atom)
        elif all(value is TruthValue.FALSE for value in body_values):
            false_atoms.add(atom)
    return PartialInterpretation(true_atoms, false_atoms)


def fitting_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    grounder: str = "naive",
    config: "EngineConfig | None" = None,
) -> FittingResult:
    """The least fixpoint of the Fitting operator (Kripke–Kleene model).

    When given a non-ground :class:`Program`, the *naive* Herbrand
    instantiation is used by default: the Fitting semantics can leave atoms
    with no supportable rules undefined rather than false (their proof
    search never finitely fails), so the relevance-pruned grounding used by
    the other semantics would change its verdicts.  Pass a pre-built
    :class:`GroundContext` (or ``grounder="relevant"``) to trade that
    fidelity for speed.  A *config* supplies ``limits``; its grounder is
    deliberately ignored here in favour of the fidelity default.
    """
    if config is not None and limits is None:
        limits = config.limits
    if isinstance(program, GroundContext):
        context = program
    else:
        context = build_context(program, limits=limits, grounder=grounder)

    stages: list[PartialInterpretation] = [PartialInterpretation.empty()]
    current = stages[0]
    while True:
        following = fitting_transform(context, current)
        stages.append(following)
        if (
            following.true_atoms == current.true_atoms
            and following.false_atoms == current.false_atoms
        ):
            break
        current = following
    return FittingResult(context, stages[-1], tuple(stages))
