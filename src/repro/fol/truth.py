"""Truth of first-order rule bodies relative to a literal set (Definition 8.2).

The alternating fixpoint generalises to first-order rule bodies by defining
when an arbitrary set of literals ``I`` *assigns true* to a closed formula:

1. put the formula into explicit literal form (negations pushed onto atoms);
2. a ground literal is true exactly when it occurs in ``I`` (absence is
   falsity — note the asymmetry discussed in Example 8.1);
3. connectives and quantifiers are evaluated classically, quantifiers
   ranging over the structure's finite domain.

IDB literals are looked up in ``I``; EDB atoms are looked up directly in
the structure, implementing the convention that interpretations always
interpret the EDB correctly (Section 3.3).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping

from ..datalog.atoms import Atom
from ..datalog.terms import Term, Variable
from ..exceptions import FormulaError
from ..fixpoint.lattice import NegativeSet
from .formulas import (
    And,
    AtomFormula,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TrueFormula,
    free_variables,
    substitute_formula,
    to_negation_normal_form,
)
from .structures import FiniteStructure

__all__ = ["LiteralContext", "formula_is_true"]


class LiteralContext:
    """The literal set ``I`` of Definition 8.2, split into positive and
    negative parts, plus the structure supplying the EDB and the domain."""

    def __init__(
        self,
        structure: FiniteStructure,
        positive: AbstractSet[Atom] = frozenset(),
        negative: NegativeSet | AbstractSet[Atom] = frozenset(),
        edb_predicates: AbstractSet[str] | None = None,
    ):
        self.structure = structure
        self.positive = frozenset(positive)
        if isinstance(negative, NegativeSet):
            self.negative = frozenset(negative.atoms)
        else:
            self.negative = frozenset(negative)
        self.edb_predicates = (
            frozenset(edb_predicates)
            if edb_predicates is not None
            else frozenset(structure.edb_predicates())
        )

    def positive_literal_true(self, atom: Atom) -> bool:
        if atom.predicate in self.edb_predicates:
            return self.structure.edb_holds(atom)
        return atom in self.positive

    def negative_literal_true(self, atom: Atom) -> bool:
        if atom.predicate in self.edb_predicates:
            return not self.structure.edb_holds(atom)
        return atom in self.negative


def formula_is_true(formula: Formula, context: LiteralContext) -> bool:
    """Definition 8.2: does the literal set assign *true* to the closed
    formula?

    Raises :class:`FormulaError` when the formula has free variables (rule
    bodies are closed by the head substitution before evaluation).
    """
    if free_variables(formula):
        names = ", ".join(sorted(v.name for v in free_variables(formula)))
        raise FormulaError(f"formula has free variables: {names}")
    return _evaluate(to_negation_normal_form(formula), context, {})


def _evaluate(
    formula: Formula,
    context: LiteralContext,
    binding: Mapping[Variable, Term],
) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, AtomFormula):
        atom = formula.atom.substitute(binding)
        if not atom.is_ground:
            raise FormulaError(f"atom {atom} is not ground under the current binding")
        return context.positive_literal_true(atom)
    if isinstance(formula, Not):
        inner = formula.sub
        if not isinstance(inner, AtomFormula):
            raise FormulaError(
                "negation above a non-atom after NNF conversion; this is a bug"
            )
        atom = inner.atom.substitute(binding)
        if not atom.is_ground:
            raise FormulaError(f"atom {atom} is not ground under the current binding")
        return context.negative_literal_true(atom)
    if isinstance(formula, And):
        return all(_evaluate(part, context, binding) for part in formula.parts)
    if isinstance(formula, Or):
        return any(_evaluate(part, context, binding) for part in formula.parts)
    if isinstance(formula, Exists):
        return _quantify(formula.variables, formula.sub, context, binding, any_of=True)
    if isinstance(formula, Forall):
        return _quantify(formula.variables, formula.sub, context, binding, any_of=False)
    raise FormulaError(f"unknown formula node {formula!r}")


def _quantify(
    variables: tuple[Variable, ...],
    sub: Formula,
    context: LiteralContext,
    binding: Mapping[Variable, Term],
    any_of: bool,
) -> bool:
    """Evaluate a block of quantifiers over the structure's domain."""
    domain = context.structure.domain

    def recurse(index: int, current: dict[Variable, Term]) -> bool:
        if index == len(variables):
            return _evaluate(sub, context, current)
        results = (
            recurse(index + 1, {**current, variables[index]: element})
            for element in domain
        )
        return any(results) if any_of else all(results)

    return recurse(0, dict(binding))
