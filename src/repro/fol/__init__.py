"""First-order rule bodies and alternating fixpoint logic (Section 8).

Formula ASTs, polarity analysis, truth under literal sets (Definition 8.2),
general programs and their AFP semantics, fixpoint-logic (FP) systems, and
the Lloyd–Topor transformation into normal programs (Theorems 8.6–8.7).
"""

from .fixpoint_logic import FixpointLogicResult, fixpoint_logic_model
from .formulas import (
    And,
    AtomFormula,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TrueFormula,
    and_,
    atom_formula,
    exists,
    forall,
    free_variables,
    not_,
    or_,
    substitute_formula,
    to_negation_normal_form,
)
from .general_programs import (
    GeneralAFPResult,
    GeneralProgram,
    GeneralRule,
    general_alternating_fixpoint,
    general_eventual_consequence,
    general_stability_transform,
)
from .lloyd_topor import LloydToporResult, domain_facts, lloyd_topor_transform
from .polarity import (
    PredicateOccurrence,
    occurs_only_positively,
    predicate_occurrences,
    predicate_polarities,
)
from .structures import FiniteStructure
from .truth import LiteralContext, formula_is_true

__all__ = [
    "FixpointLogicResult",
    "fixpoint_logic_model",
    "And",
    "AtomFormula",
    "Exists",
    "FalseFormula",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "TrueFormula",
    "and_",
    "atom_formula",
    "exists",
    "forall",
    "free_variables",
    "not_",
    "or_",
    "substitute_formula",
    "to_negation_normal_form",
    "GeneralAFPResult",
    "GeneralProgram",
    "GeneralRule",
    "general_alternating_fixpoint",
    "general_eventual_consequence",
    "general_stability_transform",
    "LloydToporResult",
    "domain_facts",
    "lloyd_topor_transform",
    "PredicateOccurrence",
    "occurs_only_positively",
    "predicate_occurrences",
    "predicate_polarities",
    "FiniteStructure",
    "LiteralContext",
    "formula_is_true",
]
