"""First-order formula AST (Section 8 of the paper).

A *general logic program* permits arbitrary first-order formulas (with
equality handled syntactically, per Clark's equality theory) as rule
bodies.  This module defines the formula tree — atoms, negation,
conjunction, disjunction, existential and universal quantification, and the
two truth constants — along with the structural helpers (free variables,
substitution, negation normal form) the rest of the subpackage builds on.

Formulas are immutable value objects; convenience constructors keep the
call sites readable::

    from repro.fol.formulas import atom_formula, not_, exists, and_
    # w(X) <- not exists Y (e(Y, X) and not w(Y))       (Example 8.2)
    body = not_(exists(["Y"], and_(atom_formula("e", "Y", "X"),
                                   not_(atom_formula("w", "Y")))))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence, Union

from ..datalog.atoms import Atom
from ..datalog.terms import Term, Variable, make_term, substitute_term
from ..exceptions import FormulaError

__all__ = [
    "Formula",
    "TrueFormula",
    "FalseFormula",
    "AtomFormula",
    "Not",
    "And",
    "Or",
    "Exists",
    "Forall",
    "atom_formula",
    "not_",
    "and_",
    "or_",
    "exists",
    "forall",
    "free_variables",
    "substitute_formula",
    "to_negation_normal_form",
]


@dataclass(frozen=True)
class TrueFormula:
    """The constant *true* (the body of a fact)."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula:
    """The constant *false*."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class AtomFormula:
    """An atomic formula wrapping a :class:`~repro.datalog.atoms.Atom`."""

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Not:
    """Negation of a subformula."""

    sub: "Formula"

    def __str__(self) -> str:
        return f"not ({self.sub})"


@dataclass(frozen=True)
class And:
    """Conjunction of zero or more subformulas (empty = true)."""

    parts: tuple["Formula", ...]

    def __init__(self, parts: Iterable["Formula"]):
        object.__setattr__(self, "parts", tuple(parts))

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction of zero or more subformulas (empty = false)."""

    parts: tuple["Formula", ...]

    def __init__(self, parts: Iterable["Formula"]):
        object.__setattr__(self, "parts", tuple(parts))

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Exists:
    """Existential quantification over one or more variables."""

    variables: tuple[Variable, ...]
    sub: "Formula"

    def __init__(self, variables: Iterable[Variable], sub: "Formula"):
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "sub", sub)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"exists {names} ({self.sub})"


@dataclass(frozen=True)
class Forall:
    """Universal quantification over one or more variables."""

    variables: tuple[Variable, ...]
    sub: "Formula"

    def __init__(self, variables: Iterable[Variable], sub: "Formula"):
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "sub", sub)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"forall {names} ({self.sub})"


Formula = Union[TrueFormula, FalseFormula, AtomFormula, Not, And, Or, Exists, Forall]


# --------------------------------------------------------------------- #
# Convenience constructors
# --------------------------------------------------------------------- #
def atom_formula(predicate: str, *args: object) -> AtomFormula:
    """Build an atomic formula; capitalised string arguments are variables."""
    return AtomFormula(Atom(predicate, tuple(make_term(a) for a in args)))


def not_(sub: Formula) -> Not:
    return Not(sub)


def and_(*parts: Formula) -> Formula:
    if not parts:
        return TrueFormula()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def or_(*parts: Formula) -> Formula:
    if not parts:
        return FalseFormula()
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def _as_variables(names: Sequence[object]) -> tuple[Variable, ...]:
    result: list[Variable] = []
    for name in names:
        if isinstance(name, Variable):
            result.append(name)
        elif isinstance(name, str):
            result.append(Variable(name))
        else:
            raise FormulaError(f"cannot quantify over {name!r}")
    return tuple(result)


def exists(variables: Sequence[object], sub: Formula) -> Exists:
    return Exists(_as_variables(variables), sub)


def forall(variables: Sequence[object], sub: Formula) -> Forall:
    return Forall(_as_variables(variables), sub)


# --------------------------------------------------------------------- #
# Structural helpers
# --------------------------------------------------------------------- #
def free_variables(formula: Formula) -> set[Variable]:
    """The free variables of *formula*."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return set()
    if isinstance(formula, AtomFormula):
        return set(formula.atom.variables())
    if isinstance(formula, Not):
        return free_variables(formula.sub)
    if isinstance(formula, (And, Or)):
        result: set[Variable] = set()
        for part in formula.parts:
            result.update(free_variables(part))
        return result
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.sub) - set(formula.variables)
    raise FormulaError(f"unknown formula node {formula!r}")


def substitute_formula(formula: Formula, binding: Mapping[Variable, Term]) -> Formula:
    """Apply a variable binding, respecting quantifier scopes."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, AtomFormula):
        return AtomFormula(formula.atom.substitute(binding))
    if isinstance(formula, Not):
        return Not(substitute_formula(formula.sub, binding))
    if isinstance(formula, And):
        return And(tuple(substitute_formula(p, binding) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(substitute_formula(p, binding) for p in formula.parts))
    if isinstance(formula, (Exists, Forall)):
        inner_binding = {v: t for v, t in binding.items() if v not in formula.variables}
        cls = Exists if isinstance(formula, Exists) else Forall
        return cls(formula.variables, substitute_formula(formula.sub, inner_binding))
    raise FormulaError(f"unknown formula node {formula!r}")


def to_negation_normal_form(formula: Formula) -> Formula:
    """Push negations down to atoms (negation normal form).

    This is the "explicit literal form" of Definition 8.1 carried to its
    natural conclusion: after the rewrite every negation sits immediately
    above an atom, double negations are gone, and ``¬∀``/``¬∃`` have been
    converted via the usual dualities.
    """
    if isinstance(formula, (TrueFormula, FalseFormula, AtomFormula)):
        return formula
    if isinstance(formula, And):
        return And(tuple(to_negation_normal_form(p) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(to_negation_normal_form(p) for p in formula.parts))
    if isinstance(formula, Exists):
        return Exists(formula.variables, to_negation_normal_form(formula.sub))
    if isinstance(formula, Forall):
        return Forall(formula.variables, to_negation_normal_form(formula.sub))
    if isinstance(formula, Not):
        inner = formula.sub
        if isinstance(inner, TrueFormula):
            return FalseFormula()
        if isinstance(inner, FalseFormula):
            return TrueFormula()
        if isinstance(inner, AtomFormula):
            return formula
        if isinstance(inner, Not):
            return to_negation_normal_form(inner.sub)
        if isinstance(inner, And):
            return Or(tuple(to_negation_normal_form(Not(p)) for p in inner.parts))
        if isinstance(inner, Or):
            return And(tuple(to_negation_normal_form(Not(p)) for p in inner.parts))
        if isinstance(inner, Exists):
            return Forall(inner.variables, to_negation_normal_form(Not(inner.sub)))
        if isinstance(inner, Forall):
            return Exists(inner.variables, to_negation_normal_form(Not(inner.sub)))
    raise FormulaError(f"unknown formula node {formula!r}")


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every subformula (including the formula itself), preorder."""
    yield formula
    if isinstance(formula, Not):
        yield from subformulas(formula.sub)
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from subformulas(part)
    elif isinstance(formula, (Exists, Forall)):
        yield from subformulas(formula.sub)
