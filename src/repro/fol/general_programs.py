"""General logic programs and alternating fixpoint logic (Section 8).

A *general logic program* has one rule per IDB relation whose body is an
arbitrary first-order formula.  Given a finite structure, the operators of
Sections 4 and 5 generalise directly once Definition 8.2 supplies the
notion of a formula being true in a literal set:

* ``S_P(Ĩ)`` — least fixpoint of the one-step operator that fires a rule
  instance when its body is assigned true by ``S ∪ Ĩ``;
* ``S̃_P(Ĩ)`` — conjugate of ``S_P(Ĩ)`` within the IDB Herbrand base of the
  structure;
* ``A_P = S̃_P ∘ S̃_P`` and its least fixpoint, the *alternating fixpoint
  logic* semantics.

This is the machinery behind Theorem 8.1 (AFP logic extends fixpoint
logic) and Example 8.2 (well-founded nodes of a graph), and the reference
point for checking the Lloyd–Topor translation of Theorems 8.6–8.7.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Term, Variable
from ..exceptions import EvaluationError, FormulaError
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet, conjugate_of_positive
from .formulas import Formula, free_variables, substitute_formula
from .polarity import predicate_polarities
from .structures import FiniteStructure
from .truth import LiteralContext, formula_is_true

__all__ = [
    "GeneralRule",
    "GeneralProgram",
    "GeneralAFPResult",
    "general_eventual_consequence",
    "general_stability_transform",
    "general_alternating_fixpoint",
]

_MAX_STAGES = 1_000_000


@dataclass(frozen=True)
class GeneralRule:
    """A rule ``head(vars) ← body`` with a first-order body.

    The head must be an atom whose arguments are distinct variables; the
    body's free variables must be a subset of the head variables (variables
    local to the body must be explicitly quantified).
    """

    head: Atom
    body: Formula

    def __post_init__(self) -> None:
        head_variables = list(self.head.variables())
        if len(set(head_variables)) != len(head_variables):
            raise FormulaError(f"head {self.head} repeats a variable")
        if any(not isinstance(term, Variable) for term in self.head.args):
            raise FormulaError(f"head {self.head} must have only variable arguments")
        extra = free_variables(self.body) - set(head_variables)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise FormulaError(
                f"body of rule for {self.head} has unquantified variables not in "
                f"the head: {names}"
            )

    def __str__(self) -> str:
        return f"{self.head} <- {self.body}"


class GeneralProgram:
    """A finite set of general rules, at most one per IDB relation.

    (Multiple rules for one relation can always be merged into a single
    rule with a disjunctive body, which is how fixpoint logic formats are
    usually presented; the constructor enforces the single-rule convention
    so the Section 8 theorems apply verbatim.)
    """

    def __init__(self, rules: Iterable[GeneralRule]):
        self._rules = tuple(rules)
        seen: set[str] = set()
        for rule in self._rules:
            if rule.head.predicate in seen:
                raise FormulaError(
                    f"general programs allow one rule per relation; {rule.head.predicate} "
                    "appears twice (merge the bodies with a disjunction)"
                )
            seen.add(rule.head.predicate)

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> tuple[GeneralRule, ...]:
        return self._rules

    def idb_predicates(self) -> set[str]:
        return {rule.head.predicate for rule in self._rules}

    def body_predicates(self) -> set[str]:
        result: set[str] = set()
        for rule in self._rules:
            result.update(predicate_polarities(rule.body))
        return result

    def edb_predicates(self) -> set[str]:
        return self.body_predicates() - self.idb_predicates()

    def is_fixpoint_logic(self) -> bool:
        """True when every IDB occurrence in every body is positive — the
        defining restriction of fixpoint logic (FP)."""
        idb = self.idb_predicates()
        for rule in self._rules:
            polarities = predicate_polarities(rule.body)
            for predicate, signs in polarities.items():
                if predicate in idb and False in signs:
                    return False
        return True

    def herbrand_base(self, structure: FiniteStructure) -> frozenset[Atom]:
        """All IDB atoms instantiable over the structure's domain."""
        base: set[Atom] = set()
        for rule in self._rules:
            arity = rule.head.arity
            if arity == 0:
                base.add(Atom(rule.head.predicate, ()))
                continue
            for combination in itertools.product(structure.domain, repeat=arity):
                base.add(Atom(rule.head.predicate, tuple(combination)))
        return frozenset(base)


@dataclass(frozen=True)
class GeneralAFPResult:
    """The alternating fixpoint partial model of a general program."""

    program: GeneralProgram
    structure: FiniteStructure
    base: frozenset[Atom]
    negative_fixpoint: NegativeSet
    positive_fixpoint: frozenset[Atom]
    iterations: int

    @property
    def model(self) -> PartialInterpretation:
        return PartialInterpretation(self.positive_fixpoint, set(self.negative_fixpoint))

    @property
    def undefined_atoms(self) -> frozenset[Atom]:
        return self.base - self.positive_fixpoint - frozenset(self.negative_fixpoint.atoms)

    @property
    def is_total(self) -> bool:
        return not self.undefined_atoms

    def true_of_predicate(self, predicate: str) -> set[Atom]:
        return {a for a in self.positive_fixpoint if a.predicate == predicate}

    def false_of_predicate(self, predicate: str) -> set[Atom]:
        return {a for a in self.negative_fixpoint.atoms if a.predicate == predicate}


def _instantiations(rule: GeneralRule, structure: FiniteStructure) -> Iterable[tuple[Atom, Formula]]:
    """Yield ``(ground head, ground-closed body)`` for every assignment of
    domain elements to the head variables."""
    variables = [term for term in rule.head.args if isinstance(term, Variable)]
    if not variables:
        yield rule.head, rule.body
        return
    for combination in itertools.product(structure.domain, repeat=len(variables)):
        binding: dict[Variable, Term] = dict(zip(variables, combination))
        yield rule.head.substitute(binding), substitute_formula(rule.body, binding)


def general_eventual_consequence(
    program: GeneralProgram,
    structure: FiniteStructure,
    negative: NegativeSet,
) -> frozenset[Atom]:
    """``S_P(Ĩ)`` for a general program over a finite structure.

    The closure ordinal need not be ω in general (Section 8.1 notes rule
    bodies are no longer existential), but over a finite structure the
    iteration terminates; we simply iterate to a fixpoint.
    """
    edb = frozenset(structure.edb_predicates()) | (
        program.body_predicates() - program.idb_predicates()
    )
    instantiated = [
        (head, body)
        for rule in program
        for head, body in _instantiations(rule, structure)
    ]

    positive: frozenset[Atom] = frozenset()
    for _ in range(_MAX_STAGES):
        context = LiteralContext(structure, positive, negative, edb_predicates=edb)
        derived = {head for head, body in instantiated if formula_is_true(body, context)}
        following = frozenset(derived)
        if following == positive:
            return positive
        positive = following
    raise EvaluationError("general S_P iteration did not converge")


def general_stability_transform(
    program: GeneralProgram,
    structure: FiniteStructure,
    negative: NegativeSet,
    base: Optional[frozenset[Atom]] = None,
) -> NegativeSet:
    """``S̃_P(Ĩ)`` for general programs: the conjugate of ``S_P(Ĩ)``."""
    if base is None:
        base = program.herbrand_base(structure)
    derived = general_eventual_consequence(program, structure, negative)
    return conjugate_of_positive(derived, base)


def general_alternating_fixpoint(
    program: GeneralProgram,
    structure: FiniteStructure,
) -> GeneralAFPResult:
    """The alternating fixpoint partial model of a general program
    (alternating fixpoint logic, Section 8.3)."""
    base = program.herbrand_base(structure)
    current = NegativeSet.empty()
    previous_even = current
    iterations = 0
    while True:
        iterations += 1
        if iterations > _MAX_STAGES:
            raise EvaluationError("general alternating fixpoint did not converge")
        current = general_stability_transform(program, structure, current, base)
        if iterations % 2 == 0:
            if current == previous_even:
                break
            previous_even = current
    positive = general_eventual_consequence(program, structure, current)
    return GeneralAFPResult(
        program=program,
        structure=structure,
        base=base,
        negative_fixpoint=current,
        positive_fixpoint=positive,
        iterations=iterations,
    )
