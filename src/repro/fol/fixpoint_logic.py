"""Fixpoint logic (FP) systems and their least fixpoints (Section 8).

A fixpoint-logic system is a general logic program whose inductively
defined (IDB) relations occur only *positively* in the rule bodies; EDB
relations may occur with either polarity.  On a finite structure the
semantics is the simultaneous least fixpoint of the rules.

Theorem 8.1 of the paper: for such a system the positive part of the AFP
model equals the FP least fixpoint — because with no negative IDB literals
``S_P`` ignores its negative argument entirely.  The tests verify both that
theorem and Theorem 8.7 (the Lloyd–Topor normal form preserves the positive
part on the original relations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..exceptions import FormulaError
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet
from .general_programs import GeneralProgram, general_eventual_consequence
from .structures import FiniteStructure

__all__ = ["FixpointLogicResult", "fixpoint_logic_model"]


@dataclass(frozen=True)
class FixpointLogicResult:
    """The least fixpoint of an FP system over a finite structure."""

    program: GeneralProgram
    structure: FiniteStructure
    true_atoms: frozenset[Atom]

    def of_predicate(self, predicate: str) -> set[Atom]:
        return {atom for atom in self.true_atoms if atom.predicate == predicate}

    @property
    def interpretation(self) -> PartialInterpretation:
        """FP is two-valued: IDB atoms not in the fixpoint are false."""
        base = self.program.herbrand_base(self.structure)
        return PartialInterpretation.total_from_true(self.true_atoms, base)


def fixpoint_logic_model(
    program: GeneralProgram,
    structure: FiniteStructure,
) -> FixpointLogicResult:
    """Evaluate an FP system: raise unless the IDB occurs only positively.

    The least fixpoint is computed as ``S_P(∅)``, which for FP systems is
    independent of the negative argument (the proof of Theorem 8.1).
    """
    if not program.is_fixpoint_logic():
        raise FormulaError(
            "the program is not a fixpoint-logic system: some IDB relation occurs "
            "negatively in a rule body"
        )
    true_atoms = general_eventual_consequence(program, structure, NegativeSet.empty())
    return FixpointLogicResult(program, structure, true_atoms)
