"""Polarity of subformulas and predicate occurrences (Definition 8.1).

A subformula is *positive* when it lies under an even number of negations
and *negative* otherwise.  The polarity of predicate occurrences is what
distinguishes fixpoint-logic systems (IDB predicates occur only positively)
from general programs, and what classifies the auxiliary relations created
by the Lloyd–Topor transformation as globally positive or globally negative
(Definition 8.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .formulas import And, AtomFormula, Exists, FalseFormula, Forall, Formula, Not, Or, TrueFormula

__all__ = ["PredicateOccurrence", "predicate_occurrences", "predicate_polarities", "occurs_only_positively"]


@dataclass(frozen=True)
class PredicateOccurrence:
    """One occurrence of a predicate inside a formula.

    ``positive`` reflects the number of enclosing negations (even = True).
    """

    predicate: str
    positive: bool


def predicate_occurrences(formula: Formula, positive: bool = True) -> Iterator[PredicateOccurrence]:
    """Yield every predicate occurrence of *formula* with its polarity."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return
    if isinstance(formula, AtomFormula):
        yield PredicateOccurrence(formula.atom.predicate, positive)
        return
    if isinstance(formula, Not):
        yield from predicate_occurrences(formula.sub, not positive)
        return
    if isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from predicate_occurrences(part, positive)
        return
    if isinstance(formula, (Exists, Forall)):
        yield from predicate_occurrences(formula.sub, positive)
        return


def predicate_polarities(formula: Formula) -> dict[str, set[bool]]:
    """Map each predicate of the formula to the set of polarities it occurs
    with (``{True}``, ``{False}`` or both)."""
    result: dict[str, set[bool]] = {}
    for occurrence in predicate_occurrences(formula):
        result.setdefault(occurrence.predicate, set()).add(occurrence.positive)
    return result


def occurs_only_positively(formula: Formula, predicates: set[str]) -> bool:
    """True when every occurrence of any of *predicates* in the formula is
    positive — the defining restriction of fixpoint logic (Section 8)."""
    for occurrence in predicate_occurrences(formula):
        if occurrence.predicate in predicates and not occurrence.positive:
            return False
    return True
