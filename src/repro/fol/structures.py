"""Finite structures for evaluating first-order rule bodies.

Quantifiers in general rule bodies range over a *domain*.  The
:class:`FiniteStructure` couples a finite domain of constants with an EDB
database; it is the "given structure" of the expressiveness discussion in
Sections 2.5 and 8 (fixpoint logic on finite structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.terms import Constant, Term

__all__ = ["FiniteStructure"]


@dataclass
class FiniteStructure:
    """A finite domain plus extensional relations.

    The domain elements are stored as constants; plain Python values are
    coerced on construction.  ``edb`` holds the given relations (e.g. the
    edge relation ``e`` of the paper's graph examples).
    """

    domain: tuple[Constant, ...]
    edb: Database = field(default_factory=Database)

    def __init__(self, domain: Iterable[object], edb: Database | None = None):
        coerced = tuple(
            element if isinstance(element, Constant) else Constant(element)
            for element in domain
        )
        self.domain = coerced
        self.edb = edb if edb is not None else Database()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_relations(
        cls,
        domain: Iterable[object],
        relations: dict[str, Iterable[Sequence[object]]],
    ) -> "FiniteStructure":
        """Build a structure from a domain and ``{relation: rows}``."""
        return cls(domain, Database.from_tuples(relations))

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[object, object]], relation: str = "e") -> "FiniteStructure":
        """Build a graph structure: domain = endpoints, one binary relation."""
        edge_list = list(edges)
        nodes: list[object] = []
        seen: set[object] = set()
        for source, target in edge_list:
            for node in (source, target):
                if node not in seen:
                    seen.add(node)
                    nodes.append(node)
        return cls.from_relations(nodes, {relation: edge_list})

    # ------------------------------------------------------------------ #
    def size(self) -> int:
        return len(self.domain)

    def edb_atoms(self) -> set[Atom]:
        return set(self.edb.facts())

    def edb_holds(self, atom: Atom) -> bool:
        """Is the ground atom a fact of the structure's EDB?"""
        return self.edb.contains(atom.predicate, *atom.args)

    def edb_predicates(self) -> set[str]:
        return self.edb.relations()

    def domain_values(self) -> tuple[object, ...]:
        return tuple(constant.value for constant in self.domain)
