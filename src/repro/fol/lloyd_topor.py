"""Lloyd–Topor style transformation of general programs into normal programs.

Section 8.3 of the paper converts a system with first-order rule bodies into
a *normal* logic program by rewriting bodies into existential disjunctive
normal form and then repeatedly applying *elementary simplifications*
(Definition 8.4): a lowest existentially-quantified subformula is replaced
by a fresh auxiliary relation, whose defining rule is a normal rule.
Theorems 8.6 and 8.7 show that, for programs strict in the IDB, the
positive part of the AFP model of the transformed program agrees with the
original on the original relations — which is how alternating fixpoint
logic simulates full fixpoint logic.

This module implements the transformation constructively:

* universal quantifiers are eliminated (``∀x φ  ↦  ¬∃x ¬φ``);
* disjunctions become multiple rules;
* positive existential subformulas are flattened into the rule body;
* any other non-literal conjunct (in particular a negated existential
  subformula) is extracted into an auxiliary predicate over its free
  variables, whose polarity (globally positive / globally negative,
  Definition 8.5) is recorded;
* optionally, a ``dom/1`` guard literal is added for variables that would
  otherwise make the rule unsafe (the normal-program counterpart of
  quantifiers ranging over the finite domain).

Example 8.2 of the paper — the well-founded-nodes program — round-trips
through this transformation in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Term, Variable
from ..exceptions import FormulaError
from .formulas import (
    And,
    AtomFormula,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TrueFormula,
    free_variables,
    substitute_formula,
)
from .general_programs import GeneralProgram, GeneralRule
from .structures import FiniteStructure

__all__ = ["LloydToporResult", "lloyd_topor_transform", "domain_facts"]

DEFAULT_DOMAIN_PREDICATE = "dom"


@dataclass(frozen=True)
class LloydToporResult:
    """Outcome of the transformation.

    Attributes
    ----------
    program:
        The normal rules (no EDB facts; attach a structure's facts with
        :func:`domain_facts` / ``Database.attach`` before evaluating).
    auxiliary_polarity:
        Polarity of each auxiliary relation introduced: ``True`` for
        globally positive, ``False`` for globally negative
        (Definition 8.5).  The original IDB relations are globally positive
        by convention.
    original_idb:
        The relations of the source general program.
    domain_predicate:
        Name of the guard predicate added for safety, or ``None`` when no
        guards were needed / requested.
    """

    program: Program
    auxiliary_polarity: Mapping[str, bool]
    original_idb: frozenset[str]
    domain_predicate: Optional[str]

    def auxiliary_predicates(self) -> frozenset[str]:
        return frozenset(self.auxiliary_polarity)

    def globally_positive(self) -> frozenset[str]:
        positives = {name for name, polarity in self.auxiliary_polarity.items() if polarity}
        return frozenset(positives | self.original_idb)

    def globally_negative(self) -> frozenset[str]:
        return frozenset(
            name for name, polarity in self.auxiliary_polarity.items() if not polarity
        )


class _Transformer:
    """Stateful worker carrying the fresh-name counters and emitted rules."""

    def __init__(self, domain_predicate: Optional[str], aux_prefix: str):
        self.rules: list[Rule] = []
        self.aux_polarity: dict[str, bool] = {}
        self.domain_predicate = domain_predicate
        self.aux_prefix = aux_prefix
        self._aux_counter = 0
        self._rename_counter = 0
        self.used_domain_guard = False

    # ------------------------------------------------------------------ #
    def fresh_aux_name(self) -> str:
        self._aux_counter += 1
        return f"{self.aux_prefix}{self._aux_counter}"

    def fresh_variable(self, variable: Variable) -> Variable:
        self._rename_counter += 1
        return Variable(f"{variable.name}__{self._rename_counter}")

    # ------------------------------------------------------------------ #
    def eliminate_foralls(self, formula: Formula) -> Formula:
        """Rewrite ``∀x φ`` to ``¬∃x ¬φ`` everywhere and drop double
        negations created along the way."""
        if isinstance(formula, (TrueFormula, FalseFormula, AtomFormula)):
            return formula
        if isinstance(formula, Not):
            inner = self.eliminate_foralls(formula.sub)
            if isinstance(inner, Not):
                return inner.sub
            return Not(inner)
        if isinstance(formula, And):
            return And(tuple(self.eliminate_foralls(p) for p in formula.parts))
        if isinstance(formula, Or):
            return Or(tuple(self.eliminate_foralls(p) for p in formula.parts))
        if isinstance(formula, Exists):
            return Exists(formula.variables, self.eliminate_foralls(formula.sub))
        if isinstance(formula, Forall):
            inner = self.eliminate_foralls(formula.sub)
            return Not(Exists(formula.variables, Not(inner)))
        raise FormulaError(f"unknown formula node {formula!r}")

    def push_negations(self, formula: Formula) -> Formula:
        """Push negations down to atoms or existential subformulas (the
        EDNF step 2 of Section 8.3: ``¬`` is *not* pushed inside ``∃``)."""
        if isinstance(formula, (TrueFormula, FalseFormula, AtomFormula)):
            return formula
        if isinstance(formula, And):
            return And(tuple(self.push_negations(p) for p in formula.parts))
        if isinstance(formula, Or):
            return Or(tuple(self.push_negations(p) for p in formula.parts))
        if isinstance(formula, Exists):
            return Exists(formula.variables, self.push_negations(formula.sub))
        if isinstance(formula, Not):
            inner = formula.sub
            if isinstance(inner, TrueFormula):
                return FalseFormula()
            if isinstance(inner, FalseFormula):
                return TrueFormula()
            if isinstance(inner, AtomFormula):
                return formula
            if isinstance(inner, Not):
                return self.push_negations(inner.sub)
            if isinstance(inner, And):
                return Or(tuple(self.push_negations(Not(p)) for p in inner.parts))
            if isinstance(inner, Or):
                return And(tuple(self.push_negations(Not(p)) for p in inner.parts))
            if isinstance(inner, Exists):
                return Not(Exists(inner.variables, self.push_negations(inner.sub)))
            if isinstance(inner, Forall):
                raise FormulaError("forall should have been eliminated before push_negations")
        raise FormulaError(f"unknown formula node {formula!r}")

    # ------------------------------------------------------------------ #
    def define(self, head: Atom, body: Formula, positive_context: bool) -> None:
        """Emit normal rules making *head* equivalent to *body*.

        ``positive_context`` records whether the subformula being defined
        occurred under an even number of negations in the original program;
        it only feeds the globally-positive / globally-negative bookkeeping.
        """
        body = self.push_negations(self.eliminate_foralls(body))
        for conjuncts in self._disjuncts(body):
            self._emit_rule(head, conjuncts, positive_context)

    def _disjuncts(self, formula: Formula) -> Iterable[list[Formula]]:
        """Split a body into its top-level disjuncts, flattening positive
        existential quantifiers and conjunctions on the way down.

        Each yielded list is a conjunction of "simple" conjuncts: literals,
        negated existential subformulas, or truth constants.
        """
        if isinstance(formula, Or):
            for part in formula.parts:
                yield from self._disjuncts(part)
            return
        if isinstance(formula, Exists):
            # Body variables are implicitly existential in a normal rule, so
            # a positive ∃ is flattened after renaming its bound variables.
            renaming = {v: self.fresh_variable(v) for v in formula.variables}
            yield from self._disjuncts(substitute_formula(formula.sub, renaming))
            return
        if isinstance(formula, And):
            # Cartesian product of the disjuncts of each conjunct (the
            # distribution step of EDNF).
            parts_disjuncts = [list(self._disjuncts(p)) for p in formula.parts]
            for combination in itertools.product(*parts_disjuncts):
                merged: list[Formula] = []
                for chunk in combination:
                    merged.extend(chunk)
                yield merged
            return
        yield [formula]

    def _emit_rule(self, head: Atom, conjuncts: list[Formula], positive_context: bool) -> None:
        literals: list[Literal] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, TrueFormula):
                continue
            if isinstance(conjunct, FalseFormula):
                return  # the whole disjunct is unsatisfiable; emit nothing
            if isinstance(conjunct, AtomFormula):
                literals.append(Literal(conjunct.atom, positive=True))
                continue
            if isinstance(conjunct, Not) and isinstance(conjunct.sub, AtomFormula):
                literals.append(Literal(conjunct.sub.atom, positive=False))
                continue
            if isinstance(conjunct, Not):
                # Negated complex subformula (typically ¬∃…): elementary
                # simplification — extract an auxiliary relation for the
                # positive version and negate it in this body.
                auxiliary = self._extract(conjunct.sub, positive_context=not positive_context)
                literals.append(Literal(auxiliary, positive=False))
                continue
            # A remaining positive complex conjunct (e.g. an ∃ nested under
            # nothing reachable by flattening): extract it positively.
            auxiliary = self._extract(conjunct, positive_context=positive_context)
            literals.append(Literal(auxiliary, positive=True))

        literals = self._add_domain_guards(head, literals)
        self.rules.append(Rule(head, tuple(literals)))

    def _extract(self, formula: Formula, positive_context: bool) -> Atom:
        """Create an auxiliary predicate for *formula* over its free
        variables and emit its defining rules; return the atom to use."""
        variables = sorted(free_variables(formula), key=lambda v: v.name)
        name = self.fresh_aux_name()
        self.aux_polarity[name] = positive_context
        head = Atom(name, tuple(variables))
        self.define(head, formula, positive_context)
        return head

    def _add_domain_guards(self, head: Atom, literals: list[Literal]) -> list[Literal]:
        """Prepend ``dom(V)`` guards for variables that no positive body
        literal binds, keeping the produced rules safe."""
        if self.domain_predicate is None:
            return literals
        bound: set[Variable] = set()
        for literal in literals:
            if literal.positive:
                bound.update(literal.variables())
        needing: list[Variable] = []
        seen: set[Variable] = set()
        for variable in list(head.variables()) + [
            v for literal in literals if literal.negative for v in literal.variables()
        ]:
            if variable not in bound and variable not in seen:
                seen.add(variable)
                needing.append(variable)
        if not needing:
            return literals
        self.used_domain_guard = True
        guards = [Literal(Atom(self.domain_predicate, (v,)), True) for v in needing]
        return guards + literals


def lloyd_topor_transform(
    program: GeneralProgram,
    domain_predicate: Optional[str] = DEFAULT_DOMAIN_PREDICATE,
    aux_prefix: str = "aux_",
) -> LloydToporResult:
    """Transform a general program into an equivalent normal program.

    The result contains only rules; evaluate it by attaching EDB facts (and
    the domain facts from :func:`domain_facts` when guards were emitted).
    """
    transformer = _Transformer(domain_predicate, aux_prefix)
    for rule in program:
        transformer.define(rule.head, rule.body, positive_context=True)
    return LloydToporResult(
        program=Program(transformer.rules),
        auxiliary_polarity=dict(transformer.aux_polarity),
        original_idb=frozenset(program.idb_predicates()),
        domain_predicate=domain_predicate if transformer.used_domain_guard else None,
    )


def domain_facts(
    structure: FiniteStructure,
    domain_predicate: str = DEFAULT_DOMAIN_PREDICATE,
) -> Program:
    """The ``dom(c)`` facts enumerating a structure's domain."""
    return Program(
        Rule(Atom(domain_predicate, (element,))) for element in structure.domain
    )
