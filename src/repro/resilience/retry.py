"""Shared bounded-retry helper: exponential backoff with jitter.

Two callers historically needed the same discipline and implemented it
independently: :class:`~repro.storage.sqlite.SqliteStore` re-attempting a
statement after ``database is locked``, and (new with the query service)
the single-writer apply loop re-attempting a transiently failing storage
mutation before rolling the request back.  This module is the one shared
implementation both lean on.

:class:`RetryPolicy` is declarative and immutable — attempts, base delay,
cap, jitter fraction — so a policy can live on a config object and be
reused across calls; :func:`retry_call` executes a callable under a
policy, retrying only the exceptions a predicate classifies as transient.
Jitter decorrelates concurrent retriers (two writers that collided once
should not collide again on the same backoff schedule); it is drawn from
:mod:`random` but bounded, so the delay for attempt *n* always lies in
``[delay_n, delay_n * (1 + jitter)]`` with ``delay_n = base * 2**(n-1)``
clamped to ``max_delay``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

__all__ = ["RetryPolicy", "RetryExhausted", "retry_call"]

T = TypeVar("T")


class RetryExhausted(Exception):
    """Internal signal that a :func:`retry_call` ran out of attempts.

    Callers normally never see this class: :func:`retry_call` re-raises
    the *last transient error* once the budget is spent, so the caller's
    existing ``except`` clauses keep working.  It exists for the
    ``reraise=False`` mode used when the final error must be wrapped
    (e.g. the SQLite backend converting exhaustion into a
    :class:`~repro.exceptions.StorageError` naming the retry budget).
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative bounded-backoff schedule.

    ``max_retries`` counts *re*-attempts: a call governed by
    ``max_retries=3`` runs at most four times.  ``jitter`` is the maximum
    extra fraction added to each sleep (``0.25`` → up to 25% longer), and
    ``sleep`` is injectable so tests can run schedules without waiting.
    """

    max_retries: int = 5
    base_delay: float = 0.002
    max_delay: float = 0.25
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter!r}")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The sleep before retry *attempt* (1-based): exponential in the
        attempt number, clamped to ``max_delay``, plus bounded jitter."""
        base = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        if not self.jitter:
            return base
        draw = (rng or random).random()
        return base * (1.0 + self.jitter * draw)


def retry_call(
    function: Callable[[], T],
    *,
    retryable: Callable[[BaseException], bool],
    policy: RetryPolicy = RetryPolicy(),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    reraise: bool = True,
) -> T:
    """Call *function*, retrying transient failures under *policy*.

    *retryable* classifies exceptions: a failure it rejects propagates
    immediately (a syntax error is not contention).  *on_retry* is invoked
    as ``on_retry(attempt, error)`` before each backoff sleep — the hook
    the storage backend uses to bump its ``retries`` counter and the
    service uses to emit ``service.write_retries``.

    When the budget is exhausted the last transient error is re-raised
    unchanged (``reraise=True``, the default) or wrapped in
    :class:`RetryExhausted` carrying the attempt count (``reraise=False``).
    """
    attempt = 0
    while True:
        try:
            return function()
        except BaseException as error:
            if not retryable(error):
                raise
            if attempt >= policy.max_retries:
                if reraise:
                    raise
                raise RetryExhausted(
                    f"gave up after {attempt} retries: {error}",
                    attempts=attempt,
                    last_error=error,
                ) from error
            attempt += 1
            if on_retry is not None:
                on_retry(attempt, error)
            delay = policy.delay(attempt, rng)
            if delay > 0:
                sleep(delay)
