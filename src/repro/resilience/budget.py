"""Unified resource governance for every fixpoint phase.

The grounding layer has always honoured a wall-clock budget
(``GroundingLimits.max_seconds``), but nothing bounded the alternating
fixpoint, the unfounded-set iteration, the per-component modular
dispatch, or an incremental refresh.  This module generalises that
mechanism into one :class:`Budget` carried on
:class:`~repro.config.EngineConfig`:

* ``max_seconds`` — a wall-clock deadline for the whole evaluation;
* ``max_steps`` — a cap on fixpoint steps (alternation stages, unfounded
  iterations, component dispatches, refresh units — whatever the active
  phase counts as one unit of progress);
* ``token`` — a :class:`CancelToken` that any thread may ``cancel()``;
  the evaluation notices at its next checkpoint and raises
  :class:`~repro.exceptions.Cancelled`.

At solve entry the budget is *started*: a :class:`BudgetMeter` computes
the absolute deadline and is installed as the ambient meter for the
dynamic extent of the run (a :class:`contextvars.ContextVar`, so nested
solves and threads stay independent).  Hot loops fetch the ambient meter
once and call :meth:`BudgetMeter.tick` (strided — consults the clock
every *stride* calls) or :meth:`BudgetMeter.step` (counts one fixpoint
step and checks everything).  When no budget is set the ambient meter is
the shared no-op :data:`NULL_METER`, mirroring the ``NullRecorder``
idiom of :mod:`repro.obs` so the disabled path costs one predictable
no-op call.

Deadline violations during the grounding phase raise the legacy
:class:`~repro.exceptions.GroundingTimeout` (now a subclass of
:class:`~repro.exceptions.BudgetExceeded`), so both old and new
``except`` clauses observe the same abort.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..exceptions import BudgetExceeded, Cancelled, GroundingTimeout

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancelToken",
    "NULL_METER",
    "NullMeter",
    "current_meter",
    "metered",
]


class CancelToken:
    """Cooperative cancellation flag, safe to set from any thread.

    Hand the token to a :class:`Budget`, run the evaluation in one
    thread, and call :meth:`cancel` from another; the run aborts with
    :class:`~repro.exceptions.Cancelled` at its next budget checkpoint.
    :meth:`reset` re-arms a token so a recovered session can reuse its
    configuration after a cancelled request.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    def reset(self) -> None:
        """Clear a previous cancellation so the token can be reused."""
        self._event.clear()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"CancelToken({state})"


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one evaluation.

    The budget itself is immutable and reusable; every solve/refresh that
    honours it starts a fresh :class:`BudgetMeter`, so ``max_seconds`` is
    a per-operation deadline, not a lifetime allowance.
    """

    max_seconds: Optional[float] = None
    max_steps: Optional[int] = None
    token: Optional[CancelToken] = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None:
            seconds = float(self.max_seconds)
            if seconds <= 0:
                raise ValueError(f"Budget.max_seconds must be positive, got {self.max_seconds!r}")
            object.__setattr__(self, "max_seconds", seconds)
        if self.max_steps is not None:
            if not isinstance(self.max_steps, int) or self.max_steps <= 0:
                raise ValueError(f"Budget.max_steps must be a positive int, got {self.max_steps!r}")
        if self.token is not None and not isinstance(self.token, CancelToken):
            raise ValueError(f"Budget.token must be a CancelToken, got {type(self.token).__name__}")

    @property
    def bounded(self) -> bool:
        """True when the budget can actually abort anything."""
        return self.max_seconds is not None or self.max_steps is not None or self.token is not None

    def start(self, parent: "BudgetMeter | NullMeter | None" = None) -> "BudgetMeter":
        """Begin metering this budget now (computes the absolute deadline)."""
        return BudgetMeter(self, parent=parent)

    def describe(self) -> str:
        parts = []
        if self.max_seconds is not None:
            parts.append(f"max_seconds={self.max_seconds:g}")
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.token is not None:
            parts.append("token=set")
        return f"budget({', '.join(parts)})" if parts else "budget(unbounded)"


class NullMeter:
    """No-op meter installed when no budget is active.

    Shares its method surface with :class:`BudgetMeter` so hot loops can
    call ``meter.tick(...)`` unconditionally; mirrors the
    ``NullRecorder`` discipline — the disabled path must stay branch-free
    and allocation-free.
    """

    __slots__ = ()

    active = False
    steps = 0

    def elapsed(self) -> float:
        return 0.0

    def check(self, phase: str) -> None:
        pass

    def tick(self, phase: str, stride: int = 64) -> None:
        pass

    def step(self, phase: str) -> None:
        pass


#: The shared no-op meter (ambient default).
NULL_METER = NullMeter()


class BudgetMeter:
    """Runtime state of one started :class:`Budget`.

    ``parent`` chains an outer meter: the grounding layer starts a local
    meter for its legacy ``GroundingLimits.max_seconds`` while still
    honouring the solve-level budget, so whichever limit is tighter trips
    first.
    """

    __slots__ = ("budget", "started", "deadline", "token", "steps", "parent", "_pulse")

    active = True

    def __init__(self, budget: Budget, parent: "BudgetMeter | NullMeter | None" = None) -> None:
        self.budget = budget
        self.started = time.monotonic()
        self.deadline = (
            None if budget.max_seconds is None else self.started + budget.max_seconds
        )
        self.token = budget.token
        self.steps = 0
        self.parent = parent if isinstance(parent, BudgetMeter) else None
        self._pulse = 0  # tick() stride countdown

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def check(self, phase: str) -> None:
        """Consult every limit; raise the phase-appropriate abort."""
        if self.parent is not None:
            self.parent.check(phase)
        if self.token is not None and self.token.cancelled:
            raise Cancelled(
                f"evaluation cancelled during the {phase!r} phase "
                f"after {self.elapsed():.3f}s",
                phase=phase,
                elapsed=self.elapsed(),
                steps=self.steps,
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            elapsed = self.elapsed()
            if phase == "ground":
                # Legacy contract: a wall-clock abort while grounding is a
                # GroundingTimeout (which is itself a BudgetExceeded).
                raise GroundingTimeout(
                    f"grounding exceeded its wall-clock budget after {elapsed:.3f}s",
                    elapsed=elapsed,
                    steps=self.steps,
                )
            raise BudgetExceeded(
                f"evaluation exceeded its wall-clock budget of "
                f"{self.budget.max_seconds:g}s during the {phase!r} phase "
                f"after {elapsed:.3f}s",
                phase=phase,
                elapsed=elapsed,
                steps=self.steps,
            )

    def tick(self, phase: str, stride: int = 64) -> None:
        """Cheap checkpoint for tight loops.

        Consults the limits only every *stride* calls so per-binding /
        per-tuple loops pay one integer increment, not a clock read.
        """
        self._pulse += 1
        if self._pulse >= stride:
            self._pulse = 0
            self.check(phase)

    def step(self, phase: str) -> None:
        """Count one fixpoint step and consult every limit."""
        self.steps += 1
        limit = self.budget.max_steps
        if limit is not None and self.steps > limit:
            raise BudgetExceeded(
                f"evaluation exceeded its step budget of {limit} "
                f"during the {phase!r} phase",
                phase=phase,
                elapsed=self.elapsed(),
                steps=self.steps,
            )
        self.check(phase)


Meter = Union[BudgetMeter, NullMeter]

_ACTIVE: ContextVar[Meter] = ContextVar("repro_budget_meter", default=NULL_METER)


def current_meter() -> Meter:
    """The meter governing the current dynamic extent (or :data:`NULL_METER`)."""
    return _ACTIVE.get()


@contextmanager
def metered(budget: Optional[Budget]) -> Iterator[Meter]:
    """Install a meter for *budget* for the duration of the block.

    With ``budget`` ``None`` (or unbounded) the already-ambient meter is
    yielded unchanged, so entry points called from inside a governed
    solve inherit the outer deadline instead of erasing it.  When the
    ambient meter is already metering this very budget — a config-driven
    entry point calling another with the same config — the outer meter is
    reused too: one budget means one deadline and one step count per
    operation, not a fresh allowance per nesting level.
    """
    if budget is None or not budget.bounded:
        yield _ACTIVE.get()
        return
    ambient = _ACTIVE.get()
    if isinstance(ambient, BudgetMeter) and ambient.budget is budget:
        yield ambient
        return
    meter = budget.start()
    reset = _ACTIVE.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE.reset(reset)
