"""Resource governance and failure recovery (PR 7).

Two halves:

* :mod:`repro.resilience.budget` — the :class:`Budget` /
  :class:`CancelToken` / :class:`BudgetMeter` machinery giving every
  fixpoint phase (grounding, semi-naive rounds, alternation stages,
  unfounded-set iterations, modular component dispatch, incremental
  refresh) a wall-clock deadline, a step cap, and cooperative
  cancellation, raising the :class:`~repro.exceptions.BudgetExceeded` /
  :class:`~repro.exceptions.Cancelled` hierarchy;
* :mod:`repro.resilience.faults` — :class:`FaultInjectingStore`, a
  deterministic storage-fault harness backing the crash-consistency and
  lockstep-oracle test suites;
* :mod:`repro.resilience.retry` — the shared bounded exponential-backoff
  helper (:class:`RetryPolicy` / :func:`retry_call`, with jitter) used by
  the SQLite backend's statement retries and the query service's
  writer-apply path.
"""

from .budget import (
    NULL_METER,
    Budget,
    BudgetMeter,
    CancelToken,
    NullMeter,
    current_meter,
    metered,
)
from .faults import FaultInjectingStore, InjectedFault
from .retry import RetryExhausted, RetryPolicy, retry_call

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancelToken",
    "FaultInjectingStore",
    "InjectedFault",
    "NULL_METER",
    "NullMeter",
    "RetryExhausted",
    "RetryPolicy",
    "current_meter",
    "metered",
    "retry_call",
]
