"""Resource governance and failure recovery (PR 7).

Two halves:

* :mod:`repro.resilience.budget` — the :class:`Budget` /
  :class:`CancelToken` / :class:`BudgetMeter` machinery giving every
  fixpoint phase (grounding, semi-naive rounds, alternation stages,
  unfounded-set iterations, modular component dispatch, incremental
  refresh) a wall-clock deadline, a step cap, and cooperative
  cancellation, raising the :class:`~repro.exceptions.BudgetExceeded` /
  :class:`~repro.exceptions.Cancelled` hierarchy;
* :mod:`repro.resilience.faults` — :class:`FaultInjectingStore`, a
  deterministic storage-fault harness backing the crash-consistency and
  lockstep-oracle test suites.
"""

from .budget import (
    NULL_METER,
    Budget,
    BudgetMeter,
    CancelToken,
    NullMeter,
    current_meter,
    metered,
)
from .faults import FaultInjectingStore, InjectedFault

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancelToken",
    "FaultInjectingStore",
    "InjectedFault",
    "NULL_METER",
    "NullMeter",
    "current_meter",
    "metered",
]
