"""Deterministic storage fault injection for resilience testing.

:class:`FaultInjectingStore` wraps any :class:`~repro.storage.base.FactStore`
and fails chosen operations with :class:`InjectedFault` — a
:class:`~repro.exceptions.StorageError`, so the injected failures travel
the exact code paths a real backend failure would (mid-batch rollback,
refresh abort, grounding probe errors).  Faults are raised *before* the
inner operation runs, so a failed call never half-mutates the underlying
store: the wrapper models clean storage-layer rejections (lock timeouts,
I/O errors surfacing before commit), which is also what the crash-recovery
contracts of :class:`~repro.session.KnowledgeBase` are written against.

Two deterministic trigger modes, combinable:

* **script** — ``{"add": {3}, "savepoint": {1}}`` fails the Nth call of an
  operation (1-based, counted over the wrapper's lifetime);
* **seed** — ``seed=7, rate=0.05`` draws a reproducible pseudo-random
  schedule from :class:`random.Random`; the decision sequence depends only
  on the seed and the order of operations.

``armed`` switches injection off (counting continues), letting a test
inject a fault and then verify recovery against the intact store.
"""

from __future__ import annotations

import random
from typing import Iterator, Mapping, Optional

from ..datalog.atoms import Atom
from ..datalog.terms import Term
from ..exceptions import StorageError
from ..storage.base import ChangeListener, FactStore, Signature

__all__ = ["FaultInjectingStore", "InjectedFault"]


class InjectedFault(StorageError):
    """The scripted failure raised by :class:`FaultInjectingStore`.

    Carries the *operation* name and 1-based *occurrence* that tripped, so
    assertions can pin exactly which scheduled fault fired.
    """

    def __init__(self, message: str, operation: str | None = None, occurrence: int | None = None):
        super().__init__(message)
        self.operation = operation
        self.occurrence = occurrence


class FaultInjectingStore(FactStore):
    """Wrap *inner*, deterministically failing selected operations.

    The interceptable operations are ``"add"``, ``"remove"``,
    ``"savepoint"`` and ``"probe"`` (a :meth:`candidate_rows` index probe,
    the storage call grounding leans on).  Reads, rollbacks and releases
    always succeed — a backend that cannot roll back cannot offer the
    savepoint contract at all, so failing those would test nothing the
    API promises.
    """

    OPERATIONS = ("add", "remove", "savepoint", "probe")

    def __init__(
        self,
        inner: FactStore,
        script: Optional[Mapping[str, object]] = None,
        seed: Optional[int] = None,
        rate: float = 0.05,
        max_faults: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        #: Lifetime call counts per interceptable operation.
        self.counts: dict[str, int] = {op: 0 for op in self.OPERATIONS}
        #: Every fault fired so far, as ``(operation, occurrence)`` pairs.
        self.faults: list[tuple[str, int]] = []
        #: When False, no faults fire (counting continues) — lets a test
        #: verify recovery against the intact underlying store.
        self.armed: bool = True
        unknown = set(script or {}) - set(self.OPERATIONS)
        if unknown:
            raise ValueError(
                f"unknown fault operations {sorted(unknown)}; "
                f"expected a subset of {list(self.OPERATIONS)}"
            )
        self._script = {op: frozenset(spec) for op, spec in (script or {}).items()}
        self._random = random.Random(seed) if seed is not None else None
        self._rate = float(rate)
        self._max_faults = max_faults

    # ------------------------------------------------------------------ #
    # Fault scheduling
    # ------------------------------------------------------------------ #
    def _maybe_fail(self, operation: str) -> None:
        self.counts[operation] += 1
        occurrence = self.counts[operation]
        fire = occurrence in self._script.get(operation, ())
        if not fire and self._random is not None:
            # Draw even when disarmed or saturated so the pseudo-random
            # sequence depends only on the seed and the operation order.
            draw = self._random.random() < self._rate
            budget_left = self._max_faults is None or len(self.faults) < self._max_faults
            fire = draw and budget_left
        if fire and self.armed:
            self.faults.append((operation, occurrence))
            raise InjectedFault(
                f"injected storage fault: {operation} call #{occurrence}",
                operation=operation,
                occurrence=occurrence,
            )

    # ------------------------------------------------------------------ #
    # Change notification — listeners must observe the *inner* store,
    # where the mutations (and rollback re-notifications) actually happen.
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: ChangeListener) -> None:
        self.inner.subscribe(listener)

    def unsubscribe(self, listener: ChangeListener) -> None:
        self.inner.unsubscribe(listener)

    # Snapshot leases must pin the *inner* store — that is where the
    # sequence numbers live and where compaction would invalidate them.
    def _acquire_pin(self) -> None:
        self.inner._acquire_pin()

    def _release_pin(self) -> None:
        self.inner._release_pin()

    def _pinned(self) -> bool:
        return self.inner._pinned()

    # ------------------------------------------------------------------ #
    # Intercepted primitives
    # ------------------------------------------------------------------ #
    def add_atom(self, atom: Atom) -> bool:
        self._maybe_fail("add")
        return self.inner.add_atom(atom)

    def remove_atom(self, atom: Atom) -> bool:
        self._maybe_fail("remove")
        return self.inner.remove_atom(atom)

    def savepoint(self) -> object:
        self._maybe_fail("savepoint")
        return self.inner.savepoint()

    def candidate_rows(
        self,
        predicate: str,
        arity: int,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        self._maybe_fail("probe")
        self.probes += 1
        return self.inner.candidate_rows(predicate, arity, positions, key, lo, hi)

    # ------------------------------------------------------------------ #
    # Transparent delegation
    # ------------------------------------------------------------------ #
    def contains_atom(self, atom: Atom) -> bool:
        return self.inner.contains_atom(atom)

    def signatures(self) -> set[Signature]:
        return self.inner.signatures()

    def tuples(self, predicate: str, arity: int) -> Iterator[tuple[Term, ...]]:
        return self.inner.tuples(predicate, arity)

    def count(self, predicate: str, arity: int) -> int:
        return self.inner.count(predicate, arity)

    def sequence_bound(self, predicate: str, arity: int) -> int:
        return self.inner.sequence_bound(predicate, arity)

    def rollback_to(self, token: object) -> None:
        self.inner.rollback_to(token)

    def release(self, token: object) -> None:
        self.inner.release(token)

    def index_count(self) -> int:
        return self.inner.index_count()

    def close(self) -> None:
        self.inner.close()

    def stats(self) -> dict[str, object]:
        stats = self.inner.stats()
        stats["fault_injector"] = {
            "armed": self.armed,
            "counts": dict(self.counts),
            "faults": list(self.faults),
        }
        return stats
