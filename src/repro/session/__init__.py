"""Stateful knowledge-base sessions with incremental model maintenance.

* :class:`KnowledgeBase` — rules plus a mutable EDB, a fluent query
  surface, and a solved model kept warm across updates;
* :class:`ResultSet` — lazy, predicate-indexed relation views;
* :class:`SessionSnapshot` — an immutable, thread-safe view of one model
  epoch (solution + pinned store window), the read unit of
  :mod:`repro.service`;
* :class:`IncrementalEngine` / :class:`UpdateStats` — the component-level
  invalidation machinery behind incremental refreshes;
* :func:`run_repl` — the interactive loop behind ``python -m repro repl``;
* :class:`EngineConfig` — re-exported from :mod:`repro.config`, the one
  validated carrier of every evaluation choice.
"""

from ..config import EngineConfig
from .incremental import IncrementalEngine, UpdateStats
from .knowledge_base import KnowledgeBase, ResultSet, SessionSnapshot
from .repl import run_repl

__all__ = [
    "EngineConfig",
    "IncrementalEngine",
    "KnowledgeBase",
    "ResultSet",
    "SessionSnapshot",
    "UpdateStats",
    "run_repl",
]
