"""Incremental maintenance of the component-wise well-founded model.

The component-wise evaluator of :mod:`repro.core.modular` already exploits
the *relevance* of the well-founded semantics in space: an SCC of the atom
dependency graph only ever reads the verdicts of the components below it.
This module exploits the same structure in *time*: when the EDB changes,
the only components whose verdict can move are those with a directed path
to a changed atom — i.e. the components *upstream* of the change in the
condensation DAG.  Everything else keeps its frozen verdict.

:class:`IncrementalEngine` therefore caches, per knowledge base:

* the decomposed ground rules, head index, SCC condensation order and the
  component membership map — all functions of the *rules alone*, computed
  once (the rule set of a session is fixed; only facts move);
* a component-level reverse adjacency (``dependents``): which components
  read each component's verdict;
* the solved ``(true, false)`` pair and :class:`ComponentReport` of every
  component.

On :meth:`refresh` with a set of changed fact atoms, the default
``maintenance="delta"`` path hands the batch to a
:class:`~repro.delta.DeltaMaintainer`, which updates per-component
derivation state (counting for one-pass components, delete-and-rederive
for recursive definite ones) at *atom* granularity and re-solves a
component wholesale only where negation is recursive.  With
``maintenance="component"`` the original coarser path runs instead: the
affected components are the forward closure of the changed atoms'
components under ``dependents``, re-solved bottom-up (ascending
condensation index) with :func:`repro.core.modular.solve_component`,
reading the frozen verdicts of untouched components from the shared
aggregate sets.  Either way, facts
whose atom occurs in no rule at all ("floating" facts) bypass the
component machinery entirely: they are unconditionally true, nothing
depends on them, and retracting one removes it from the base outright —
exactly what a from-scratch solve of the updated program would produce,
which is what the differential property suite asserts.

Only *ground* rule sets are maintained this way: for non-ground rules a
new fact can enlarge the relevant grounding itself, so the owning
:class:`~repro.session.knowledge_base.KnowledgeBase` falls back to a full
re-solve.

With ``engine="kernel"`` the cached rule context is additionally compiled
to the flat int IR of :mod:`repro.kernel` (once, at engine construction)
and every per-component solve runs over a persistent
:class:`~repro.kernel.ComponentKernel` truth vector instead of object
sets; the dispatch, the affected-component closure and the returned
reports are identical.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.base import FactStore

from ..analysis.dependency import build_atom_dependency_graph
from ..config import (
    DEFAULT_MAINTENANCE,
    DEFAULT_STRATEGY,
    validate_engine,
    validate_maintenance,
    validate_strategy,
)
from ..core.context import GroundContext, build_context
from ..core.modular import (
    ComponentReport,
    ModularResult,
    fresh_undef_atom,
    solve_component,
)
from ..datalog.atoms import Atom
from ..datalog.rules import Program
from ..delta import DeltaMaintainer
from ..fixpoint.interpretations import PartialInterpretation
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import Budget, current_meter, metered

__all__ = ["UpdateStats", "IncrementalEngine"]


@dataclass(frozen=True)
class UpdateStats:
    """What one model refresh actually did.

    ``mode`` is ``"initial"`` for the first solve, ``"delta"`` when
    atom-level maintenance absorbed the update (per-component counters and
    delete-and-rederive — the default), ``"incremental"`` when whole
    components downstream of the changed facts were re-evaluated
    (``maintenance="component"``), and ``"rebuild"`` when the owning
    knowledge base had to re-solve from scratch (non-ground rules, or a
    semantics outside the well-founded family).  ``components_total`` /
    ``components_recomputed`` / ``components_reused`` quantify the reuse —
    the acceptance benchmark asserts ``components_recomputed`` stays
    proportional to the affected region, not to the program.  In
    ``"delta"`` mode ``methods`` counts components by *maintenance*
    method (``counting`` / ``dred`` / ``resolve``) rather than by solver
    method.

    When a tracing :class:`~repro.obs.Recorder` is attached to the engine,
    the same quantities are emitted as the attributes and counters of the
    ``refresh`` span (``refresh.cache_hits`` is ``components_reused``) —
    this dataclass is the derived, API-stable view of that record.
    """

    mode: str
    changed: int
    components_total: int
    components_recomputed: int
    components_reused: int
    floating_changed: int
    methods: Mapping[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of components whose frozen verdict was reused."""
        if not self.components_total:
            return 0.0
        return self.components_reused / self.components_total

    def describe(self) -> str:
        if self.mode == "delta":
            return (
                f"delta: {self.changed} changed atom(s), "
                f"{self.components_recomputed}/{self.components_total} "
                f"component state(s) maintained, {self.components_reused} "
                f"untouched ({self.reuse_fraction:.0%})"
            )
        if self.mode != "incremental":
            if not self.components_total:
                return f"{self.mode}: full re-solve of the program"
            return f"{self.mode}: all {self.components_total} components solved"
        return (
            f"incremental: {self.changed} changed atom(s), "
            f"{self.components_recomputed}/{self.components_total} components "
            f"re-evaluated, {self.components_reused} reused "
            f"({self.reuse_fraction:.0%})"
        )


class IncrementalEngine:
    """Keeps the modular well-founded model warm across EDB updates.

    Pass a :class:`~repro.storage.FactStore` (or call :meth:`observe`) and
    the engine subscribes to its change events: every mutation of the
    store — from the owning session, a batch rollback's inverse replay, or
    unrelated code holding the store — accumulates into the pending change
    set that :meth:`refresh_pending` turns into component invalidation.
    Without a store, callers hand the changed-atom set to :meth:`refresh`
    themselves, as before.
    """

    def __init__(
        self,
        rules: Program,
        strategy: str = DEFAULT_STRATEGY,
        store: "FactStore | None" = None,
        recorder: Recorder | None = None,
        budget: Budget | None = None,
        engine: str = "modular",
        maintenance: str = DEFAULT_MAINTENANCE,
    ):
        rules.require_ground()
        validate_strategy(strategy)
        validate_engine(engine)
        validate_maintenance(maintenance)
        self._strategy = strategy
        self._engine_name = engine
        self._maintenance = maintenance
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        # Started afresh by every refresh: the budget is a per-operation
        # deadline, so a long-lived session never "uses up" its allowance.
        self._budget = budget
        # The rule-only context: decomposed rules, head index and the atom
        # universe the rules span.  Facts are attached per refresh.
        # Construction may run under an ambient budget meter (a session
        # refresh constructing its engine), so each build stage ends with
        # a checkpoint — a deadline elapsing mid-construction aborts here
        # rather than after the whole condensation.
        meter = current_meter()
        self._rule_context = build_context(rules)
        meter.check("refresh")
        self._rule_atoms: frozenset[Atom] = self._rule_context.base
        self._undef_atom = fresh_undef_atom(self._rule_atoms)

        # With engine="kernel" the rule context is compiled to the flat
        # int IR once; every per-component solve then runs over the
        # persistent ComponentKernel state (truth + fact vectors, kept in
        # sync below) instead of the object-level sets.
        self._kernel = None
        if engine == "kernel":
            from ..kernel import ComponentKernel, get_kernel

            self._kernel = ComponentKernel(get_kernel(self._rule_context, self._recorder))
            meter.check("refresh")

        graph = build_atom_dependency_graph(self._rule_context)
        meter.check("refresh")
        self._components: list[set[Atom]] = graph.condensation_order()
        meter.check("refresh")
        self._component_of: dict[Atom, int] = {}
        for index, component in enumerate(self._components):
            for atom in component:
                self._component_of[atom] = index
        # Component-level reverse adjacency: dependents[i] = the components
        # that read component i's verdict (heads whose bodies reach into i).
        self._dependents: list[set[int]] = [set() for _ in self._components]
        for head, targets in graph.adjacency.items():
            reader = self._component_of[head]
            for target in targets:
                owner = self._component_of[target]
                if owner != reader:
                    self._dependents[owner].add(reader)

        # Mutable solved state, populated by the first refresh.
        self._comp_true: list[set[Atom]] = [set() for _ in self._components]
        self._comp_false: list[set[Atom]] = [set() for _ in self._components]
        self._reports: list[Optional[ComponentReport]] = [None] * len(self._components)
        self._true: set[Atom] = set()
        self._false: set[Atom] = set()
        self._floating: set[Atom] = set()
        self._facts: frozenset[Atom] = frozenset()
        self._solved = False
        self._last: Optional[UpdateStats] = None
        # Atom-level maintenance state, built lazily after the first full
        # solve and discarded whenever the model is rebuilt from scratch.
        self._delta: Optional[DeltaMaintainer] = None
        # The model property's per-epoch cache (the interpretation only
        # moves on a successful refresh, which bumps the epoch).
        self._model_cache: Optional[tuple[int, PartialInterpretation]] = None
        # Monotone model-version counter: bumped once per *successful*
        # refresh, so two reads observing the same epoch are guaranteed to
        # observe the same model.  The query service stamps every response
        # with the epoch its snapshot was pinned at.
        self._epoch = 0

        # Store-event plumbing: the *last seen direction* per mutated atom
        # since the last successful refresh.  Keying by direction (rather
        # than a symmetric presence toggle) means duplicate same-direction
        # events — a listener replay, a rollback's inverse replay — cannot
        # cancel a genuinely pending change; an atom is pending iff its
        # last direction disagrees with the solved base.
        self._pending: dict[Atom, bool] = {}
        self._observed: "FactStore | None" = None
        if store is not None:
            self.observe(store)

    # ------------------------------------------------------------------ #
    # Store change events
    # ------------------------------------------------------------------ #
    def observe(self, store: "FactStore") -> None:
        """Subscribe to *store*'s change events (replacing any previous
        subscription); mutations accumulate for :meth:`refresh_pending`."""
        if self._observed is not None:
            self._observed.unsubscribe(self._record_change)
        self._observed = store
        store.subscribe(self._record_change)

    def detach(self) -> None:
        """Unsubscribe from the observed store, if any."""
        if self._observed is not None:
            self._observed.unsubscribe(self._record_change)
            self._observed = None

    def _record_change(self, atom: Atom, added: bool) -> None:
        self._pending[atom] = added

    @property
    def pending_changes(self) -> frozenset[Atom]:
        """Atoms whose fact status flipped since the last refresh (as seen
        through the observed store's events): the last recorded direction
        disagrees with the solved base, so assert+retract pairs cancel
        while repeated same-direction events stay pending."""
        return frozenset(
            atom
            for atom, added in self._pending.items()
            if added != (atom in self._facts)
        )

    def refresh_pending(self, facts: frozenset[Atom]) -> UpdateStats:
        """:meth:`refresh` driven by the observed store's change events.

        Before the first solve the refresh is full; afterwards only the
        components upstream of the pending changes are re-evaluated.  The
        pending set is drained only on success — a failed refresh leaves
        it queued so the next call retries the same delta.
        """
        changed = set(self.pending_changes) if self._solved else None
        stats = self.refresh(facts, changed)
        self._pending.clear()
        return stats

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def engine(self) -> str:
        """The per-component solver in use: ``"modular"`` (object sets) or
        ``"kernel"`` (compiled flat-array state)."""
        return self._engine_name

    @property
    def maintenance(self) -> str:
        """The update-maintenance granularity: ``"delta"`` (atom-level
        counters / DRed) or ``"component"`` (whole-component re-solve)."""
        return self._maintenance

    @property
    def model(self) -> PartialInterpretation:
        """The current well-founded partial model (cached per epoch — the
        interpretation only changes on a successful refresh)."""
        cache = self._model_cache
        if cache is not None and cache[0] == self._epoch:
            return cache[1]
        model = PartialInterpretation(self._true | self._floating, self._false)
        self._model_cache = (self._epoch, model)
        return model

    @property
    def base(self) -> frozenset[Atom]:
        """The current atom universe: rule atoms plus the current facts."""
        return frozenset(self._rule_atoms | self._facts)

    @property
    def context(self) -> GroundContext:
        """A :class:`GroundContext` for the current program state (used by
        the explainer and the stats renderers)."""
        return dataclasses.replace(self._rule_context, facts=self._facts, base=self.base)

    @property
    def component_count(self) -> int:
        return len(self._components)

    @property
    def last_update(self) -> Optional[UpdateStats]:
        return self._last

    @property
    def epoch(self) -> int:
        """Number of successful refreshes so far — the warm model's
        version.  0 means no model has been solved yet; a failed refresh
        leaves the epoch (like the model) unchanged."""
        return self._epoch

    def modular_result(self) -> ModularResult:
        """The solved state as a :class:`~repro.core.modular.ModularResult`
        (per-component reports over the current context)."""
        reports = tuple(report for report in self._reports if report is not None)
        return ModularResult(context=self.context, model=self.model, components=reports)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def refresh(
        self, facts: frozenset[Atom], changed: Optional[Iterable[Atom]] = None
    ) -> UpdateStats:
        """Bring the model up to date with *facts*.

        *changed* is the set of atoms whose fact status flipped since the
        last refresh; ``None`` forces a full (re)solve.  Returns the
        :class:`UpdateStats` describing the work done.
        """
        started = time.perf_counter()
        recorder = self._recorder
        with recorder.span("refresh") as refresh_span, metered(self._budget) as meter:
            try:
                if not self._solved or changed is None:
                    stats = self._solve_all(facts)
                else:
                    stats = self._solve_delta(facts, set(changed))
            except BaseException:
                # A failure mid-delta (including a budget abort) leaves
                # affected components subtracted from the aggregates but
                # not re-added: drop to unsolved so the next refresh
                # rebuilds from scratch instead of serving the torn state.
                self._solved = False
                raise
            finally:
                if recorder.enabled and meter.active:
                    recorder.count("budget.steps", meter.steps)
                    recorder.count("budget.elapsed_ms", int(meter.elapsed() * 1000))
            self._facts = facts
            self._solved = True
            self._epoch += 1
            self._last = dataclasses.replace(
                stats, elapsed=time.perf_counter() - started
            )
        if recorder.enabled:
            refresh_span.annotate(
                mode=self._last.mode,
                changed=self._last.changed,
                components_recomputed=self._last.components_recomputed,
                components_reused=self._last.components_reused,
            )
            recorder.count("refresh.cache_hits", self._last.components_reused)
            recorder.count("refresh.changed_atoms", self._last.changed)
        return self._last

    def _solve_all(self, facts: frozenset[Atom]) -> UpdateStats:
        self._true.clear()
        self._false.clear()
        # Any previous maintenance state described the old solved model;
        # a fresh maintainer is primed lazily from the new one.
        self._delta = None
        if self._kernel is not None:
            # Every component is about to be re-solved in order, so a fresh
            # truth vector suffices; the fact vector is rebuilt wholesale.
            self._kernel.reset()
            self._kernel.set_facts(facts)
        self._floating = set(facts - self._rule_atoms)
        methods: dict[str, int] = {}
        meter = current_meter()
        for index, component in enumerate(self._components):
            meter.step("refresh")
            comp_true, comp_false, report = self._solve_one(index, component, facts)
            self._comp_true[index] = comp_true
            self._comp_false[index] = comp_false
            self._reports[index] = report
            self._true |= comp_true
            self._false |= comp_false
            methods[report.method] = methods.get(report.method, 0) + 1
        return UpdateStats(
            mode="initial",
            changed=0,
            components_total=len(self._components),
            components_recomputed=len(self._components),
            components_reused=0,
            floating_changed=len(self._floating),
            methods=methods,
        )

    def _solve_one(
        self, index: int, component: set[Atom], facts: frozenset[Atom]
    ) -> tuple[set[Atom], set[Atom], ComponentReport]:
        """Dispatch one component, wrapping it in a ``component`` span when
        a tracing recorder is attached (the null path adds no calls)."""
        recorder = self._recorder
        if recorder.enabled:
            with recorder.span("component") as comp_span:
                comp_true, comp_false, report = solve_component(
                    component,
                    index,
                    self._rule_context.rules,
                    self._rule_context.rules_by_head,
                    facts,
                    self._true,
                    self._false,
                    self._undef_atom,
                    self._strategy,
                    recorder=recorder,
                    kernel=self._kernel,
                )
                comp_span.annotate(
                    index=index,
                    method=report.method,
                    size=report.size,
                    rules=report.rules,
                    stages=report.stages,
                )
                recorder.count(f"components.{report.method}")
            return comp_true, comp_false, report
        return solve_component(
            component,
            index,
            self._rule_context.rules,
            self._rule_context.rules_by_head,
            facts,
            self._true,
            self._false,
            self._undef_atom,
            self._strategy,
            kernel=self._kernel,
        )

    def _solve_delta(self, facts: frozenset[Atom], changed: set[Atom]) -> UpdateStats:
        changed_rule_atoms = changed & self._rule_atoms
        if self._kernel is not None:
            for atom in changed_rule_atoms:
                self._kernel.update_fact(atom, atom in facts)
        floating_changed = 0
        for atom in changed - self._rule_atoms:
            floating_changed += 1
            if atom in facts:
                self._floating.add(atom)
            else:
                self._floating.discard(atom)
        if self._maintenance == "delta":
            return self._solve_delta_atoms(
                facts, changed, changed_rule_atoms, floating_changed
            )
        return self._solve_delta_components(
            facts, changed, changed_rule_atoms, floating_changed
        )

    def _solve_delta_atoms(
        self,
        facts: frozenset[Atom],
        changed: set[Atom],
        changed_rule_atoms: set[Atom],
        floating_changed: int,
    ) -> UpdateStats:
        """Atom-level maintenance: one :class:`DeltaMaintainer` pass."""
        recorder = self._recorder
        if self._delta is None:
            self._delta = DeltaMaintainer(
                self._rule_context.rules,
                self._rule_context.rules_by_head,
                self._components,
                self._component_of,
                self._comp_true,
                self._comp_false,
                self._true,
                self._false,
            )
        meter = current_meter()

        def resolve(index: int) -> tuple[set[Atom], set[Atom]]:
            # Sound fallback for negation-through-recursion components: a
            # whole-component re-solve against the already-maintained
            # aggregates.  `solve_component` only consults the aggregates
            # for atoms *outside* the component, so the component's own
            # stale entries need no subtraction first.
            comp_true, comp_false, report = self._solve_one(
                index, self._components[index], facts
            )
            self._reports[index] = report
            return comp_true, comp_false

        sync = self._kernel.set_truth if self._kernel is not None else None
        outcome = self._delta.apply(
            facts,
            changed_rule_atoms,
            resolve=resolve,
            sync=sync,
            step=lambda: meter.step("refresh"),
        )
        if recorder.enabled:
            recorder.count("delta.components", outcome.components)
            recorder.count("delta.changed_atoms", outcome.atoms_changed)
            recorder.count("delta.overdeleted", outcome.overdeleted)
            recorder.count("delta.rederived", outcome.rederived)
            recorder.count(
                "delta.resolve_fallbacks", outcome.methods.get("resolve", 0)
            )
        return UpdateStats(
            mode="delta",
            changed=len(changed),
            components_total=len(self._components),
            components_recomputed=outcome.components,
            components_reused=len(self._components) - outcome.components,
            floating_changed=floating_changed,
            methods=dict(outcome.methods),
        )

    def _solve_delta_components(
        self,
        facts: frozenset[Atom],
        changed: set[Atom],
        changed_rule_atoms: set[Atom],
        floating_changed: int,
    ) -> UpdateStats:
        """Component-level invalidation (``maintenance="component"``)."""
        recorder = self._recorder
        with recorder.span("affected") as affected_span:
            # Forward closure of the changed components under `dependents`.
            affected: set[int] = {
                self._component_of[atom] for atom in changed_rule_atoms
            }
            frontier = list(affected)
            while frontier:
                for reader in self._dependents[frontier.pop()]:
                    if reader not in affected:
                        affected.add(reader)
                        frontier.append(reader)

            order = sorted(affected)
        if recorder.enabled:
            affected_span.annotate(changed=len(changed), components=len(order))
        for index in order:
            self._true -= self._comp_true[index]
            self._false -= self._comp_false[index]
        methods: dict[str, int] = {}
        meter = current_meter()
        for index in order:
            meter.step("refresh")
            comp_true, comp_false, report = self._solve_one(
                index, self._components[index], facts
            )
            self._comp_true[index] = comp_true
            self._comp_false[index] = comp_false
            self._reports[index] = report
            self._true |= comp_true
            self._false |= comp_false
            methods[report.method] = methods.get(report.method, 0) + 1
        return UpdateStats(
            mode="incremental",
            changed=len(changed),
            components_total=len(self._components),
            components_recomputed=len(order),
            components_reused=len(self._components) - len(order),
            floating_changed=floating_changed,
            methods=methods,
        )
