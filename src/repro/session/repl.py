"""A line-oriented interactive session over a :class:`KnowledgeBase`.

``python -m repro repl [FILE]`` drops into a read–eval–print loop in which
facts are asserted and retracted against a live knowledge base and queries
read the incrementally maintained model — the session API exercised
end-to-end from a shell.  The loop itself is a plain function over an
iterable of command lines, so tests (and the CI smoke step) drive it by
piping a script through stdin.

Commands::

    assert FACT.            insert an EDB fact, e.g.  assert move(c, e).
    retract FACT.           remove an EDB fact
    begin / commit / abort  group updates transactionally (kb.batch())
    query Q                 relation name, or a conjunctive query with
                            variables, e.g.  query wins(X), not wins(Y)
    ask Q                   three-valued verdict of a ground query
    explain ATOM            justify an atom's well-founded verdict
    model [PREDICATE]       print the current partial model
    facts [PREDICATE]       list the current EDB facts
    open PATH               switch the session to the persistent SQLite
                            store at PATH (rules kept, EDB from the file)
    save PATH               snapshot the current EDB into the SQLite
                            store at PATH
    stats                   refresh / component-reuse statistics
    config                  the session's EngineConfig
    help                    this text
    quit                    leave the repl (EOF works too)
"""

from __future__ import annotations

from typing import Iterable, Optional, TextIO

from ..engine.query import query_has_variables
from ..exceptions import ReproError
from ..reporting import render_model
from .knowledge_base import KnowledgeBase

__all__ = ["run_repl", "HELP_TEXT"]

HELP_TEXT = """\
commands:
  assert FACT.       insert an EDB fact        e.g.  assert move(c, e).
  retract FACT.      remove an EDB fact
  begin              start a transactional batch of updates
  commit             apply the open batch
  abort              roll the open batch back
  query Q            relation name or conjunctive query (variables allowed)
  ask Q              three-valued verdict of a ground conjunctive query
  explain ATOM       justify an atom's well-founded verdict
  model [PREDICATE]  print the current partial model
  facts [PREDICATE]  list the current EDB facts
  open PATH          switch to the persistent SQLite store at PATH
  save PATH          snapshot the current EDB into the store at PATH
  stats              refresh / component-reuse statistics
  config             the session's EngineConfig
  help               this text
  quit               leave the repl"""


class _AbortBatch(Exception):
    """Internal signal driving the rollback path of ``kb.batch()``."""


def run_repl(
    kb: KnowledgeBase,
    lines: Iterable[str],
    out: TextIO,
    prompt: Optional[str] = None,
) -> int:
    """Drive *kb* with the command *lines*; returns a process exit code.

    *prompt*, when given, is written to *out* before every read (interactive
    use); piped scripts leave it ``None`` so the transcript stays clean.
    """
    batch = None  # the open kb.batch() context manager, if any
    iterator = iter(lines)
    while True:
        if prompt is not None:
            out.write(prompt)
            out.flush()
        try:
            line = next(iterator)
        except StopIteration:
            break
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        command, _, rest = stripped.partition(" ")
        command = command.lower()
        rest = rest.strip()
        try:
            if command in ("quit", "exit"):
                break
            elif command == "help":
                print(HELP_TEXT, file=out)
            elif command == "assert":
                changed = kb.assert_fact(rest.rstrip("."))
                print("asserted" if changed else "unchanged (already present)", file=out)
            elif command == "retract":
                changed = kb.retract_fact(rest.rstrip("."))
                print("retracted" if changed else "unchanged (not present)", file=out)
            elif command == "begin":
                if batch is not None:
                    print("error: a batch is already open", file=out)
                    continue
                batch = kb.batch()
                batch.__enter__()
                print("batch open", file=out)
            elif command == "commit":
                if batch is None:
                    print("error: no open batch", file=out)
                    continue
                batch.__exit__(None, None, None)
                batch = None
                print("batch committed", file=out)
            elif command == "abort":
                if batch is None:
                    print("error: no open batch", file=out)
                    continue
                try:
                    batch.__exit__(_AbortBatch, _AbortBatch(), None)
                except _AbortBatch:
                    pass
                batch = None
                print("batch rolled back", file=out)
            elif command == "query":
                _cmd_query(kb, rest, out)
            elif command == "ask":
                print(kb.ask(rest).value, file=out)
            elif command == "explain":
                print(kb.explain(rest.rstrip(".")).render(), file=out)
            elif command == "model":
                solution = kb.solution
                print(
                    render_model(solution.interpretation, solution.base, rest or None),
                    file=out,
                )
            elif command == "facts":
                facts = list(kb.facts(rest or None))
                for atom in facts:
                    print(f"  {atom}.", file=out)
                print(f"{len(facts)} fact(s)", file=out)
            elif command == "open":
                if not rest:
                    print("error: open expects a database path", file=out)
                    continue
                if batch is not None:
                    print("error: commit or abort the open batch first", file=out)
                    continue
                kb = _reopen(kb, rest)
                print(f"opened {rest} ({kb.fact_count()} fact(s))", file=out)
            elif command == "save":
                if not rest:
                    print("error: save expects a database path", file=out)
                    continue
                saved = _save_snapshot(kb, rest)
                print(f"saved {saved} fact(s) to {rest}", file=out)
            elif command == "stats":
                for key, value in kb.statistics().items():
                    print(f"  {key:18s} {value}", file=out)
            elif command == "config":
                for key, value in kb.config.describe().items():
                    print(f"  {key:10s} {value}", file=out)
            else:
                print(f"error: unknown command {command!r} (try: help)", file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)
    if batch is not None:
        # EOF with an open batch: keep its updates (commit), like a shell
        # heredoc ending mid-transaction.
        batch.__exit__(None, None, None)
    return 0


def _reopen(kb: KnowledgeBase, path: str) -> KnowledgeBase:
    """A new session over the SQLite store at *path*, keeping the current
    rules and configuration.  The previous session is closed only once the
    new one is up — a failed open leaves the current session untouched."""
    replacement = KnowledgeBase.open(path, kb.rules, config=kb.config)
    kb.close()
    return replacement


def _save_snapshot(kb: KnowledgeBase, path: str) -> int:
    """Write the session's current EDB into the SQLite store at *path*
    (facts are merged into whatever the file already holds); returns how
    many facts were new there."""
    from ..storage.sqlite import SqliteStore

    with SqliteStore(path) as snapshot:
        return snapshot.load(kb.facts())


def _cmd_query(kb: KnowledgeBase, rest: str, out: TextIO) -> None:
    if not rest:
        print("error: query expects a relation name or a conjunctive query", file=out)
        return
    if "(" not in rest:
        rows = kb.query(rest)
        for row in rows:
            rendered = ", ".join(str(value) for value in row)
            print(f"  ({rendered})" if row else "  ()", file=out)
        print(f"{len(rows)} row(s)", file=out)
        return
    if query_has_variables(rest):
        found = 0
        for answer in kb.answers(rest):
            found += 1
            bindings = ", ".join(f"{k} = {v}" for k, v in sorted(answer.as_dict().items()))
            print(f"  {bindings}", file=out)
        print(f"{found} answer(s)", file=out)
        return
    verdict = kb.ask(rest)
    print(verdict.value, file=out)
