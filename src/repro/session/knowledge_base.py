"""The stateful :class:`KnowledgeBase` session API.

The paper's deductive-database framing (Section 2.5) is a *database*: a
fixed rule set queried and updated over time.  The one-shot
:func:`repro.engine.solver.solve` re-grounds and re-solves on every call;
a :class:`KnowledgeBase` instead holds the rules plus a mutable EDB and
keeps the solved model warm:

.. code-block:: python

    from repro.session import KnowledgeBase

    kb = KnowledgeBase("wins(X) :- move(X, Y), not wins(Y).")
    kb.load({"move": [("a", "b"), ("b", "a"), ("b", "c")]})
    list(kb.query("wins"))          # [('b',)]
    kb.assert_fact("move", "c", "d")
    list(kb.query("wins"))          # [('b',), ('c',)] — model refreshed

Mutations (:meth:`~KnowledgeBase.assert_fact`,
:meth:`~KnowledgeBase.retract_fact`, :meth:`~KnowledgeBase.load`) are
lazy: the model refreshes on the next read.  Group related updates in
``with kb.batch():`` — the block is transactional (an exception rolls the
whole group back) and the eventual refresh covers the net delta once.

When the rules are ground and the (resolved) semantics is in the
well-founded family with the modular or kernel engine — the defaults are
in that family — refreshes are *incremental*: only the SCC components of
the atom dependency graph reachable from the changed facts are re-solved
(:mod:`repro.session.incremental`; ``engine="kernel"`` additionally runs
each component solve over the compiled flat-array state of
:mod:`repro.kernel`).  Any other configuration transparently falls back
to a full re-solve per refresh, with the same observable results.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..config import EngineConfig, resolve_config
from ..core.alternating import AlternatingFixpointResult, AlternatingStage
from ..core.explain import Explainer, Explanation
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_atom, parse_program
from ..datalog.rules import Program, Rule
from ..datalog.terms import Compound, Constant, Variable
from ..engine.query import QueryAnswer, answers as query_answers, ask as query_ask
from ..engine.solver import Solution, resolve_auto_semantics, solve_configured
from ..exceptions import EvaluationError, NotGroundError
from ..fixpoint.interpretations import PartialInterpretation, TruthValue
from ..fixpoint.lattice import NegativeSet
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import metered
from ..storage import FactStore, open_store
from ..storage.snapshot import StoreSnapshot
from .incremental import IncrementalEngine, UpdateStats

__all__ = ["KnowledgeBase", "ResultSet", "SessionSnapshot"]

#: Semantics whose model the incremental engine maintains (it computes the
#: well-founded partial model, which these two name interchangeably).
_WFS_FAMILY = ("well-founded", "alternating-fixpoint")


def _match_row(row: Sequence[object], pattern: Sequence[object]) -> bool:
    """Does *row* (unwrapped Python values) match *pattern*?

    Pattern items: ``None`` matches anything; a :class:`Variable` matches
    anything but repeated occurrences must bind to equal values; a
    :class:`Constant` matches its payload; anything else matches by
    equality.
    """
    if len(row) != len(pattern):
        return False
    binding: dict[str, object] = {}
    for value, item in zip(row, pattern):
        if item is None:
            continue
        if isinstance(item, Variable):
            if item.name in binding:
                if binding[item.name] != value:
                    return False
            else:
                binding[item.name] = value
        elif isinstance(item, Constant):
            if item.value != value:
                return False
        elif item != value:
            return False
    return True


class ResultSet:
    """A lazy, predicate-indexed view of one relation in the current model.

    Nothing is computed at construction: iterating (or ``len()``,
    ``in``, :meth:`first`) pulls the owning knowledge base's *current*
    solution — so a result set stays live across updates, and reads after
    an ``assert_fact`` see the refreshed model.  Row lookup goes through
    the per-predicate index of :class:`~repro.engine.solver.Solution`
    rather than a scan of the whole model.
    """

    def __init__(
        self,
        kb: "KnowledgeBase",
        predicate: str,
        pattern: Optional[tuple[object, ...]] = None,
        truth: TruthValue = TruthValue.TRUE,
    ):
        self._kb = kb
        self._predicate = predicate
        self._pattern = pattern
        self._truth = truth

    # -- the lazy core --------------------------------------------------- #
    def _rows(self) -> set[tuple[object, ...]]:
        solution = self._kb.solution
        if self._truth is TruthValue.UNDEFINED:
            rows = solution.undefined_relation(self._predicate)
        else:
            rows = solution.relation(self._predicate)
        if self._pattern is None:
            return rows
        return {row for row in rows if _match_row(row, self._pattern)}

    # -- fluent refinements ---------------------------------------------- #
    def where(self, *pattern: object) -> "ResultSet":
        """A narrowed view matching *pattern* (see :meth:`KnowledgeBase.query`)."""
        return ResultSet(self._kb, self._predicate, tuple(pattern), self._truth)

    @property
    def undefined(self) -> "ResultSet":
        """The same view over the *undefined* tuples of the predicate
        (non-empty only under partial semantics)."""
        return ResultSet(self._kb, self._predicate, self._pattern, TruthValue.UNDEFINED)

    # -- consumption ----------------------------------------------------- #
    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(sorted(self._rows(), key=repr))

    def __len__(self) -> int:
        return len(self._rows())

    def __bool__(self) -> bool:
        return bool(self._rows())

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple):
            row = (row,)
        return row in self._rows()

    def first(self, default: object = None) -> object:
        """The first row in sorted order, or *default* when empty."""
        for row in self:
            return row
        return default

    def to_set(self) -> frozenset[tuple[object, ...]]:
        """All rows as a frozen set."""
        return frozenset(self._rows())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        qualifier = ".undefined" if self._truth is TruthValue.UNDEFINED else ""
        return f"ResultSet({self._predicate!r}{qualifier}, {len(self)} rows)"


class SessionSnapshot:
    """A consistent, immutable view of one model epoch — the read-side
    half of the epoch/refresh handoff the query service is built on.

    A snapshot bundles the *epoch* (monotone refresh counter), the
    refreshed :class:`~repro.engine.solver.Solution` at that epoch (an
    immutable object: frozen atom sets, predicate-indexed row caches), and
    a pinned :class:`~repro.storage.StoreSnapshot` over the EDB's
    ``[0, seq)`` windows.  Everything a read needs is reachable from the
    snapshot alone, so any number of threads can serve from it while the
    owning knowledge base keeps mutating — and two responses stamped with
    the same epoch are guaranteed to have read the same model.

    Query helpers mirror the :class:`KnowledgeBase` read surface
    (:meth:`relation`, :meth:`ask`, :meth:`answers`, :meth:`explain`,
    :meth:`value_of`) but never touch the live session.  The explainer is
    built lazily from the snapshot's own solution, guarded by a
    per-snapshot lock (its derivation cache is the one mutable corner).
    """

    __slots__ = (
        "epoch",
        "solution",
        "store_view",
        "fact_count",
        "created",
        "_lock",
        "_explainer",
    )

    def __init__(
        self,
        epoch: int,
        solution: Solution,
        store_view: StoreSnapshot,
        fact_count: int,
    ) -> None:
        self.epoch = epoch
        self.solution = solution
        self.store_view = store_view
        self.fact_count = fact_count
        self.created = time.time()
        self._lock = threading.Lock()
        self._explainer: Optional[Explainer] = None

    # -- reads ----------------------------------------------------------- #
    @property
    def semantics(self) -> str:
        return self.solution.semantics

    def relation(self, predicate: str) -> set[tuple[object, ...]]:
        """True tuples of *predicate* at this epoch."""
        return self.solution.relation(predicate)

    def undefined_relation(self, predicate: str) -> set[tuple[object, ...]]:
        """Undefined tuples of *predicate* at this epoch."""
        return self.solution.undefined_relation(predicate)

    def rows(
        self,
        predicate: str,
        pattern: Optional[Sequence[object]] = None,
        truth: TruthValue = TruthValue.TRUE,
    ) -> list[tuple[object, ...]]:
        """Sorted, optionally pattern-filtered tuples of one relation —
        the deterministic ordering pagination relies on.

        The pattern matches as a *prefix*: a caller filtering on the
        first argument positions need not know the relation's arity (the
        HTTP layer builds patterns from positional ``a0=..`` parameters).
        """
        if truth is TruthValue.UNDEFINED:
            found = self.solution.undefined_relation(predicate)
        else:
            found = self.solution.relation(predicate)
        if pattern is not None:
            probe = tuple(pattern)
            found = {
                row
                for row in found
                if len(row) >= len(probe) and _match_row(row[: len(probe)], probe)
            }
        return sorted(found, key=repr)

    def ask(self, query: str) -> TruthValue:
        """Three-valued verdict of a ground conjunctive query."""
        return query_ask(self.solution, query)

    def answers(self, query: str) -> Iterator[QueryAnswer]:
        """Substitutions satisfying a conjunctive query with variables."""
        return query_answers(self.solution, query)

    def value_of(self, atom: Union[Atom, str]) -> TruthValue:
        if isinstance(atom, str):
            atom = parse_atom(atom)
        return self.solution.value_of(atom)

    def explain(self, atom: Union[Atom, str]) -> Explanation:
        """Justify an atom's verdict in this epoch's model (thread-safe)."""
        if isinstance(atom, str):
            atom = parse_atom(atom)
        with self._lock:
            if self._explainer is None:
                self._explainer = Explainer(self._alternating_result())
            return self._explainer.explain(atom)

    def _alternating_result(self) -> AlternatingFixpointResult:
        solution = self.solution
        if solution.semantics in _WFS_FAMILY:
            context = solution.context
            if context is None:
                from ..core.context import build_context

                context = build_context(solution.program, config=solution.config)
            model = solution.interpretation
            negative = NegativeSet(model.false_atoms)
            return AlternatingFixpointResult(
                context=context,
                negative_fixpoint=negative,
                positive_fixpoint=model.true_atoms,
                stages=(AlternatingStage(0, negative, model.true_atoms),),
            )
        from ..core.alternating import alternating_fixpoint

        return alternating_fixpoint(solution.program, config=solution.config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionSnapshot(epoch={self.epoch}, {self.fact_count} facts, "
            f"semantics={self.semantics!r})"
        )


class KnowledgeBase:
    """A long-lived deductive-database session.

    Parameters
    ----------
    rules:
        Program text or a :class:`~repro.datalog.rules.Program`.  Fact
        rules in it seed the EDB (and are retractable like any other
        fact); the non-fact rules are fixed for the session's lifetime.
    facts:
        Optional initial EDB: a :class:`~repro.datalog.database.Database`,
        a :class:`~repro.storage.FactStore`, a mapping
        ``{"edge": [(1, 2), ...]}``, or an iterable of ground atoms.
    store:
        The :class:`~repro.storage.FactStore` backend holding the EDB — an
        instance, or a spec string (``"memory"`` / ``"sqlite:PATH"``).
        Defaults to the backend named by ``config.store``.  Facts already
        in the backend (a reopened SQLite file) are part of the session
        from the first read; ``facts=`` loads *into* the backend on top.
        The session subscribes to the store's change events, so even
        mutations performed directly on ``kb.store`` invalidate exactly
        the affected model state.
    config:
        The :class:`~repro.config.EngineConfig` every evaluation runs
        under.  The legacy per-field keywords (``semantics=``,
        ``strategy=``, ...) keep working through the same deprecation shim
        as :func:`repro.engine.solver.solve`.
    recorder:
        Optional :class:`~repro.obs.Recorder` instrumenting the session:
        every solve and incremental refresh the knowledge base performs is
        traced through it (``solve`` / ``refresh`` spans and their phase
        children).  Defaults to the zero-cost null recorder.
    """

    def __init__(
        self,
        rules: Union[str, Program, None] = "",
        *,
        facts: Union[Database, FactStore, Mapping, Iterable[Atom], None] = None,
        store: Union[FactStore, str, None] = None,
        config: Optional[EngineConfig] = None,
        recorder: Optional[Recorder] = None,
        semantics: Optional[str] = None,
        strategy: Optional[str] = None,
        engine: Optional[str] = None,
        grounder: Optional[str] = None,
        matcher: Optional[str] = None,
        limits=None,
    ):
        self._config = resolve_config(
            config,
            semantics=semantics,
            strategy=strategy,
            engine=engine,
            grounder=grounder,
            matcher=matcher,
            limits=limits,
            warn=True,
            caller="KnowledgeBase",
        )
        if rules is None:
            rules = Program()
        elif isinstance(rules, str):
            rules = parse_program(rules)
        self._rules = Program(rule for rule in rules if not rule.is_fact)

        # A store the session opened itself (from a spec or the config) is
        # closed by close(); a caller-supplied instance stays the caller's
        # to close — it may back other sessions or Database façades.
        self._owns_store = not isinstance(store, FactStore)
        if store is None:
            store = self._config.create_store()
        elif isinstance(store, str):
            store = open_store(store)
        elif not isinstance(store, FactStore):
            raise EvaluationError(
                f"store must be a FactStore or a spec string, got {store!r}"
            )
        self._store = store
        self._edb = Database(store=store)
        # Facts as an insertion-ordered map to their (cached) fact rules:
        # membership tests are O(1) and `_program()` reuses the Rule
        # objects instead of re-wrapping every fact per refresh.  The map
        # is maintained by the store's change events (`_on_store_change`),
        # so it tracks *every* mutation, not only the session's own.
        self._fact_rules: dict[Atom, Rule] = {}
        # Atoms mutated since the last refresh, mapped to their presence
        # *before* the first mutation: an atom is genuinely pending iff its
        # current presence differs from that original — assert+retract
        # pairs cancel, while duplicate same-direction events cannot
        # cancel a pending change (they never touch the recorded origin).
        self._changed: dict[Atom, bool] = {}
        self._batch_tokens: list[object] = []
        self._dirty = True
        self._solution: Optional[Solution] = None
        self._attached: Optional[Program] = None
        self._explainer: Optional[Explainer] = None
        self._engine: Optional[IncrementalEngine] = None
        self._resolved_semantics: Optional[str] = None
        self._incremental: Optional[bool] = None
        self._last_update: Optional[UpdateStats] = None
        self._update_count = 0
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        # Cumulative refresh history (drives `statistics()` / repl `stats`).
        self._refresh_elapsed = 0.0
        self._refresh_modes: dict[str, int] = {}

        # Pre-existing backend contents (a reopened persistent store) seed
        # the fact map before we start listening for changes.
        for atom in self._store.facts():
            self._fact_rules[atom] = Rule(atom)
        self._store.subscribe(self._on_store_change)

        for rule in rules.facts():
            self._insert(rule.head)
        if facts is not None:
            self.load(facts)
        # Nothing asserted so far is a "change": the first solve is full.
        self._changed.clear()

    @classmethod
    def open(
        cls,
        path: str,
        rules: Union[str, Program, None] = "",
        *,
        config: Optional[EngineConfig] = None,
        **options,
    ) -> "KnowledgeBase":
        """Open (or create) a persistent knowledge base at *path*.

        The EDB lives in a :class:`~repro.storage.SqliteStore`; facts
        asserted through the session are durable, and reopening the same
        path restores them:

        .. code-block:: python

            with KnowledgeBase.open("kb.db", RULES) as kb:
                kb.assert_fact("edge", 1, 2)
            # later, in another process:
            with KnowledgeBase.open("kb.db", RULES) as kb:
                list(kb.query("tc"))    # derived from the persisted EDB

        Rules are *not* persisted — they parameterise the session, exactly
        as with an in-memory knowledge base.
        """
        # A spec string (not an instance), so the session owns the store
        # and close() releases the file.
        return cls(rules, store=f"sqlite:{path}", config=config, **options)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def rules(self) -> Program:
        """The fixed (non-fact) rule set of the session."""
        return self._rules

    @property
    def store(self) -> FactStore:
        """The :class:`~repro.storage.FactStore` holding the session's EDB."""
        return self._store

    def close(self) -> None:
        """Detach from the store, closing it if the session opened it.

        A store the session created (from a spec string, ``config.store``
        or :meth:`open`) is flushed and closed; a caller-supplied instance
        is only unsubscribed from, since it may back other sessions.
        Idempotent.  The knowledge base must not be used afterwards.
        """
        self._store.unsubscribe(self._on_store_change)
        if self._engine is not None:
            self._engine.detach()
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "KnowledgeBase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def facts(self, predicate: Optional[str] = None) -> Iterator[Atom]:
        """The current EDB facts, optionally restricted to one predicate."""
        if predicate is None:
            yield from sorted(self._fact_rules, key=str)
        else:
            yield from sorted(
                (atom for atom in self._fact_rules if atom.predicate == predicate), key=str
            )

    def fact_count(self) -> int:
        return len(self._fact_rules)

    @property
    def semantics(self) -> str:
        """The concrete semantics the session evaluates under (``"auto"``
        resolved against the rule set)."""
        self._resolve_mode()
        return self._resolved_semantics

    @property
    def is_incremental(self) -> bool:
        """Whether refreshes use the incremental component engine."""
        self._resolve_mode()
        return self._incremental

    @property
    def last_update(self) -> Optional[UpdateStats]:
        """Statistics of the most recent model refresh."""
        return self._last_update

    @property
    def recorder(self) -> Recorder:
        """The :class:`~repro.obs.Recorder` the session's evaluations run
        under (the null recorder unless one was passed at construction)."""
        return self._recorder

    def statistics(self) -> dict[str, object]:
        """Session counters plus cumulative refresh history, store stats
        and — when incremental — component statistics."""
        self._refresh()
        stats: dict[str, object] = {
            "rules": len(self._rules),
            "facts": len(self._fact_rules),
            "semantics": self.semantics,
            "incremental": self.is_incremental,
            "store": type(self._store).__name__,
            "refreshes": self._update_count,
        }
        if self._update_count:
            stats["refresh_total_s"] = round(self._refresh_elapsed, 6)
            stats["refresh_mean_s"] = round(
                self._refresh_elapsed / self._update_count, 6
            )
            stats["refresh_modes"] = dict(self._refresh_modes)
        if self._last_update is not None:
            stats["last_mode"] = self._last_update.mode
            stats["last_update"] = self._last_update.describe()
        store_stats = self._store.stats()
        stats["store_rows"] = store_stats["rows"]
        stats["store_indexes"] = store_stats["indexes"]
        stats["store_probes"] = store_stats["probes"]
        if self._engine is not None:
            stats.update(self._engine.modular_result().statistics())
        return stats

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def assert_fact(self, fact: Union[Atom, str], *values: object) -> bool:
        """Insert an EDB fact; returns whether the database changed.

        Accepts a ground :class:`Atom`, fact text (``"edge(1, 2)"``), or a
        predicate name plus Python values (``kb.assert_fact("edge", 1, 2)``).
        """
        return self._insert(self._coerce(fact, values))

    def retract_fact(self, fact: Union[Atom, str], *values: object) -> bool:
        """Remove an EDB fact; returns whether the database changed."""
        return self._remove(self._coerce(fact, values))

    def load(self, source: Union[Database, FactStore, Mapping, Iterable[Atom]]) -> int:
        """Bulk-assert facts; returns how many were new.

        Accepts a :class:`Database`, another
        :class:`~repro.storage.FactStore`, a mapping ``{relation: rows}``,
        or an iterable of ground atoms.  Delegates to the backing store's
        own :meth:`~repro.storage.FactStore.load`; the session observes
        the resulting change events as usual.
        """
        return self._store.load(source)

    @contextmanager
    def batch(self):
        """Group mutations transactionally.

        Inside the block mutations apply immediately (reads see them), but
        an exception rolls every mutation of the block back before
        propagating; on success the whole net delta is covered by one
        model refresh at the next read.  The block is a store savepoint,
        so on a durable backend an aborted batch never reaches disk.
        """
        token = self._store.savepoint()
        self._batch_tokens.append(token)
        try:
            yield self
        except BaseException:
            # The rollback notifies the inverse of every undone mutation,
            # which re-synchronises `_fact_rules` / `_changed` through
            # `_on_store_change`.
            self._store.rollback_to(token)
            raise
        else:
            self._store.release(token)
        finally:
            self._batch_tokens.pop()

    # -- mutation plumbing ----------------------------------------------- #
    def _coerce(self, fact: Union[Atom, str], values: Sequence[object]) -> Atom:
        if isinstance(fact, Atom):
            if values:
                raise EvaluationError(
                    "pass either a ready atom or predicate-plus-values, not both"
                )
            atom = fact
        elif values:
            atom = Atom(fact, tuple(_make_constant(value) for value in values))
        else:
            atom = parse_atom(fact)
        if not atom.is_ground:
            raise NotGroundError(f"EDB fact {atom} is not ground")
        return atom

    def _insert(self, atom: Atom) -> bool:
        if not atom.is_ground:
            raise NotGroundError(f"EDB fact {atom} is not ground")
        return self._store.add_atom(atom)

    def _remove(self, atom: Atom) -> bool:
        return self._store.remove_atom(atom)

    def _on_store_change(self, atom: Atom, added: bool) -> None:
        """The store's change-notification hook: every successful mutation
        (the session's own, a batch rollback's inverse replay, or a direct
        mutation of :attr:`store` by other code) lands here."""
        if added:
            self._fact_rules[atom] = Rule(atom)
        else:
            self._fact_rules.pop(atom, None)
        self._note_change(atom, added)

    def _note_change(self, atom: Atom, added: bool) -> None:
        # A fact asserted then retracted (or vice versa) since the last
        # refresh cancels out: `_changed` remembers the atom's presence
        # before its first mutation, and `_refresh_inner` compares that
        # origin against the current EDB — so the pending set is exactly
        # the atoms whose status differs from the solved state, robust to
        # replayed same-direction events.  The old Solution object stays
        # referenced (it is an immutable snapshot); `_refresh` replaces it
        # when the net delta is non-empty.
        if atom not in self._changed:
            # The store notifies only on actual mutation, so before this
            # event the atom's presence was the opposite direction.
            self._changed[atom] = not added
        self._dirty = True
        self._attached = None
        self._explainer = None

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def _program(self) -> Program:
        """The full current program (facts plus rules), cached per state.

        Rebuilding after a mutation is O(|EDB| + |rules|) list assembly of
        cached Rule objects — the remaining linear term of a refresh
        snapshot (the incremental solve itself touches only the affected
        components).
        """
        if self._attached is None:
            pieces = list(self._fact_rules.values())
            pieces.extend(self._rules)
            self._attached = Program(pieces)
        return self._attached

    def _resolve_mode(self) -> None:
        if self._incremental is not None:
            return
        semantics = self._config.semantics
        if semantics == "auto":
            # Classification is a function of the rules: facts are definite
            # and add no dependency arcs, so resolving once is safe.
            semantics = resolve_auto_semantics(self._program())
        self._resolved_semantics = semantics
        self._incremental = (
            semantics in _WFS_FAMILY
            and self._config.engine in ("modular", "kernel")
            and self._rules.is_ground
        )

    def _refresh(self) -> None:
        if not self._dirty:
            return
        # The whole refresh — semantics resolution, engine construction,
        # the solve itself — is one budget-metered operation; the nested
        # metered() blocks downstream (solve_configured, the incremental
        # engine's refresh) recognise the same Budget and reuse this
        # meter, so the deadline covers the operation end to end.
        with metered(self._config.budget) as meter:
            self._resolve_mode()
            meter.check("refresh")
            self._refresh_inner()

    def _refresh_inner(self) -> None:
        # The pending delta is cleared only after a successful solve: a
        # refresh that raises (no stable model, grounding limit, ...) must
        # leave the changes queued so the next read retries instead of
        # serving a model that contradicts the EDB.
        changed = {
            atom
            for atom, was_present in self._changed.items()
            if (atom in self._fact_rules) != was_present
        }
        if not changed and self._solution is not None:
            # Every mutation since the last refresh cancelled out.
            self._changed.clear()
            self._dirty = False
            return
        if self._incremental:
            if self._engine is None:
                # The engine subscribes to the store, so from here on it
                # sees every mutation itself; its first refresh is full.
                self._engine = IncrementalEngine(
                    self._rules,
                    strategy=self._config.strategy,
                    store=self._store,
                    recorder=self._recorder,
                    budget=self._config.budget,
                    engine=self._config.engine,
                    maintenance=self._config.maintenance,
                )
            stats = self._engine.refresh_pending(frozenset(self._fact_rules))
            solution = Solution(
                program=self._program(),
                semantics=self._resolved_semantics,
                interpretation=self._engine.model,
                base=self._engine.base,
                strategy=self._config.strategy,
                engine=self._config.engine,
                config=self._config,
                # The engine's context is a cheap frozen view over its
                # cached rule grounding: carrying it lets a detached
                # SessionSnapshot build an explainer without re-grounding
                # (and without touching the live engine from reader
                # threads).
                context=self._engine.context,
            )
        else:
            started = time.perf_counter()
            # Rules only: the EDB travels as the live store, so the
            # grounder probes its indexes instead of re-indexing the facts
            # (the solution's program still records them as fact rules).
            solution = solve_configured(
                self._rules, self._config, store=self._store, recorder=self._recorder
            )
            stats = UpdateStats(
                mode="initial" if self._update_count == 0 else "rebuild",
                changed=len(changed),
                components_total=0,
                components_recomputed=0,
                components_reused=0,
                floating_changed=0,
                elapsed=time.perf_counter() - started,
            )
        self._changed = {}
        self._solution = solution
        self._last_update = stats
        self._update_count += 1
        self._refresh_elapsed += stats.elapsed
        self._refresh_modes[stats.mode] = self._refresh_modes.get(stats.mode, 0) + 1
        self._dirty = False

    @property
    def solution(self) -> Solution:
        """The current :class:`~repro.engine.solver.Solution`, refreshed on
        demand."""
        self._refresh()
        return self._solution

    @property
    def model(self) -> PartialInterpretation:
        """The current partial model."""
        return self.solution.interpretation

    @property
    def base(self) -> frozenset[Atom]:
        """The current atom universe."""
        return self.solution.base

    @property
    def epoch(self) -> int:
        """Number of successful model refreshes so far — the monotone
        counter :meth:`snapshot` stamps on its views.  Two reads under the
        same epoch saw the same model."""
        return self._update_count

    def snapshot(self) -> SessionSnapshot:
        """Publish a :class:`SessionSnapshot` of the current model epoch.

        Refreshes first (so the snapshot is never stale relative to the
        EDB), then captures the immutable solution, the store's pinned
        ``[0, seq)`` read-view and the epoch counter.  The snapshot is safe
        to read from any number of threads while this session — which is
        itself *not* thread-safe — keeps mutating; the query service takes
        one after every applied write and swaps it in atomically.
        """
        self._refresh()
        return SessionSnapshot(
            epoch=self._update_count,
            solution=self._solution,
            store_view=self._store.snapshot(),
            fact_count=len(self._fact_rules),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(self, predicate: str, *pattern: object) -> ResultSet:
        """A lazy view of the true tuples of *predicate*.

        With no pattern, every true tuple; pattern items narrow it:
        ``None`` or a :class:`~repro.datalog.terms.Variable` are wildcards
        (a repeated variable must bind consistently), anything else must
        equal the value:

        >>> kb.query("wins")                  # doctest: +SKIP
        >>> kb.query("edge", 1, None)         # doctest: +SKIP
        >>> kb.query("edge", X, X)            # doctest: +SKIP
        """
        return ResultSet(self, predicate, tuple(pattern) if pattern else None)

    def ask(self, query: str) -> TruthValue:
        """Three-valued verdict of a ground conjunctive query."""
        return query_ask(self.solution, query)

    def answers(self, query: str) -> Iterator[QueryAnswer]:
        """Substitutions satisfying a conjunctive query with variables."""
        return query_answers(self.solution, query)

    def value_of(self, atom: Union[Atom, str]) -> TruthValue:
        """Truth value of one ground atom."""
        if isinstance(atom, str):
            atom = parse_atom(atom)
        return self.solution.value_of(atom)

    def is_true(self, predicate: str, *values: object) -> bool:
        return self.solution.is_true(predicate, *values)

    def is_false(self, predicate: str, *values: object) -> bool:
        return self.solution.is_false(predicate, *values)

    def is_undefined(self, predicate: str, *values: object) -> bool:
        return self.solution.is_undefined(predicate, *values)

    def explain(self, atom: Union[Atom, str]) -> Explanation:
        """Justify an atom's verdict in the *well-founded* model of the
        current program (see :mod:`repro.core.explain`).

        Under the well-founded family the explanation is built against the
        session's maintained model; under other semantics a well-founded
        model is computed for the explanation (the verdicts coincide for
        Horn and stratified programs).
        """
        if isinstance(atom, str):
            atom = parse_atom(atom)
        self._refresh()
        if self._explainer is None:
            self._explainer = Explainer(self._alternating_result())
        return self._explainer.explain(atom)

    def _alternating_result(self) -> AlternatingFixpointResult:
        if self._engine is not None:
            model = self._engine.model
            negative = NegativeSet(model.false_atoms)
            return AlternatingFixpointResult(
                context=self._engine.context,
                negative_fixpoint=negative,
                positive_fixpoint=model.true_atoms,
                stages=(AlternatingStage(0, negative, model.true_atoms),),
            )
        if self._resolved_semantics in _WFS_FAMILY and self._solution is not None:
            # The maintained model already is the well-founded model: wrap
            # it for the explainer, reusing the solve's ground context
            # (no second solve, and no re-grounding unless the producer
            # dropped the context).
            context = self._solution.context
            if context is None:
                from ..core.context import build_context

                context = build_context(self._program(), config=self._config)
            model = self._solution.interpretation
            negative = NegativeSet(model.false_atoms)
            return AlternatingFixpointResult(
                context=context,
                negative_fixpoint=negative,
                positive_fixpoint=model.true_atoms,
                stages=(AlternatingStage(0, negative, model.true_atoms),),
            )
        from ..core.alternating import alternating_fixpoint

        return alternating_fixpoint(self._program(), config=self._config)

    def __len__(self) -> int:
        return len(self._fact_rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeBase({len(self._rules)} rules, {len(self._fact_rules)} facts, "
            f"semantics={self._config.semantics!r}, engine={self._config.engine!r})"
        )


def _make_constant(value: object):
    if isinstance(value, (Constant, Variable, Compound)):
        return value
    return Constant(value)
