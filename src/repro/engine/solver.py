"""High-level solving API.

:func:`solve` is the one-call entry point a deductive-database user needs:
give it a program (text or :class:`~repro.datalog.rules.Program`), pick a
semantics, and get back a :class:`Solution` that can be queried for atom
truth values and relation contents.  ``semantics="auto"`` picks the
cheapest semantics that agrees with the well-founded model for the
program's syntactic class (Horn → minimum model, stratified → perfect
model, otherwise the alternating fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..analysis.classification import classify
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.grounding import GroundingLimits
from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..datalog.terms import Constant
from ..evaluation.engine import DEFAULT_STRATEGY, EVALUATION_STRATEGIES, validate_strategy
from ..exceptions import EvaluationError
from ..fixpoint.interpretations import PartialInterpretation, TruthValue
from ..core.alternating import alternating_fixpoint
from ..core.context import build_context
from ..core.modular import DEFAULT_ENGINE, EVALUATION_ENGINES, validate_engine
from ..core.stable import stable_consequences
from ..core.wellfounded import well_founded_model
from ..semantics.fitting import fitting_model
from ..semantics.horn import horn_minimum_model
from ..semantics.inflationary import inflationary_model
from ..semantics.stratified import stratified_model

__all__ = [
    "Solution",
    "solve",
    "SUPPORTED_SEMANTICS",
    "EVALUATION_STRATEGIES",
    "EVALUATION_ENGINES",
    "DEFAULT_ENGINE",
]

SUPPORTED_SEMANTICS = (
    "auto",
    "alternating-fixpoint",
    "well-founded",
    "stratified",
    "horn",
    "fitting",
    "inflationary",
    "stable",
)


@dataclass(frozen=True)
class Solution:
    """The result of solving a program under one semantics."""

    program: Program
    semantics: str
    interpretation: PartialInterpretation
    base: frozenset[Atom]
    strategy: str = DEFAULT_STRATEGY
    engine: str = DEFAULT_ENGINE

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def value_of(self, atom: Atom) -> TruthValue:
        """Truth value of a ground atom; atoms outside the base that are not
        EDB facts are false by the closed-world reading."""
        value = self.interpretation.value_of_atom(atom)
        if value is TruthValue.UNDEFINED and atom not in self.base:
            return TruthValue.FALSE
        return value

    def is_true(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.TRUE

    def is_false(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.FALSE

    def is_undefined(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.UNDEFINED

    def relation(self, predicate: str) -> set[tuple[object, ...]]:
        """The tuples for which *predicate* is true, with constants unwrapped."""
        rows: set[tuple[object, ...]] = set()
        for atom in self.interpretation.true_atoms:
            if atom.predicate == predicate:
                rows.add(tuple(_unwrap(term) for term in atom.args))
        return rows

    def undefined_relation(self, predicate: str) -> set[tuple[object, ...]]:
        """Tuples of *predicate* left undefined by a partial semantics."""
        rows: set[tuple[object, ...]] = set()
        for atom in self.base:
            if atom.predicate != predicate:
                continue
            if self.interpretation.value_of_atom(atom) is TruthValue.UNDEFINED:
                rows.add(tuple(_unwrap(term) for term in atom.args))
        return rows

    def true_atoms(self) -> frozenset[Atom]:
        return self.interpretation.true_atoms

    def false_atoms(self) -> frozenset[Atom]:
        return self.interpretation.false_atoms

    @property
    def is_total(self) -> bool:
        return self.interpretation.is_total_over(self.base)


def _unwrap(term: object) -> object:
    return term.value if isinstance(term, Constant) else term


def _ground_atom(predicate: str, values: Iterable[object]) -> Atom:
    return Atom(predicate, tuple(Constant(v) for v in values))


def solve(
    program: Union[str, Program],
    semantics: str = "auto",
    database: Optional[Database] = None,
    limits: GroundingLimits | None = None,
    strategy: str = DEFAULT_STRATEGY,
    engine: str = DEFAULT_ENGINE,
) -> Solution:
    """Solve *program* under the requested semantics.

    Parameters
    ----------
    program:
        Program text (parsed with the standard syntax) or a ready
        :class:`Program`.
    semantics:
        One of :data:`SUPPORTED_SEMANTICS`.  ``"stable"`` computes the
        *intersection* semantics (true in every stable model / false in
        every stable model) and raises when there is no stable model.
    database:
        Optional EDB facts to attach to the rules before solving.
    strategy:
        Evaluation strategy for the fixpoint computations: ``"seminaive"``
        (default, indexed delta-driven) or ``"naive"`` (re-scan every rule;
        the differential-testing oracle).  The Fitting semantics runs its
        own three-valued operator and ignores the strategy.
    engine:
        Well-founded evaluation engine: ``"modular"`` (default) condenses
        the atom dependency graph into SCCs and solves each component with
        the cheapest sound method; ``"monolithic"`` runs the global
        alternating fixpoint / ``W_P`` iteration (the differential oracle).
        Only the ``alternating-fixpoint`` and ``well-founded`` semantics
        (and ``auto`` when it resolves to them) consult the engine.
    """
    if isinstance(program, str):
        program = parse_program(program)
    if database is not None:
        program = database.attach(program)
    if semantics not in SUPPORTED_SEMANTICS:
        raise EvaluationError(
            f"unknown semantics {semantics!r}; expected one of {', '.join(SUPPORTED_SEMANTICS)}"
        )
    validate_strategy(strategy)
    validate_engine(engine)

    if semantics == "auto":
        classification = classify(program, check_local=False)
        semantics = classification.recommended_semantics

    context = build_context(program, limits=limits)
    base = frozenset(context.base)

    if semantics in ("alternating-fixpoint", "well-founded"):
        if semantics == "alternating-fixpoint":
            interpretation = alternating_fixpoint(context, strategy=strategy, engine=engine).model
        else:
            interpretation = well_founded_model(context, strategy=strategy, engine=engine).model
    elif semantics == "stratified":
        interpretation = stratified_model(program, limits=limits, strategy=strategy).interpretation
    elif semantics == "horn":
        interpretation = horn_minimum_model(context, strategy=strategy).interpretation
    elif semantics == "fitting":
        interpretation = fitting_model(context).model
    elif semantics == "inflationary":
        interpretation = inflationary_model(context).interpretation
    elif semantics == "stable":
        interpretation = stable_consequences(context, limits=limits, strategy=strategy)
    else:  # pragma: no cover - guarded above
        raise EvaluationError(f"unhandled semantics {semantics!r}")

    return Solution(
        program=program,
        semantics=semantics,
        interpretation=interpretation,
        base=base,
        strategy=strategy,
        engine=engine,
    )
