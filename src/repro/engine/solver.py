"""High-level solving API.

:func:`solve` is the one-call entry point a deductive-database user needs:
give it a program (text or :class:`~repro.datalog.rules.Program`), pick a
semantics, and get back a :class:`Solution` that can be queried for atom
truth values and relation contents.  ``semantics="auto"`` picks the
cheapest semantics that agrees with the well-founded model for the
program's syntactic class (Horn → minimum model, stratified → perfect
model, otherwise the alternating fixpoint).

Evaluation choices travel in one validated
:class:`~repro.config.EngineConfig` (``config=``); the historical
``strategy=``/``engine=`` keywords keep working through a deprecation
shim.  :func:`solve` itself is a thin one-shot wrapper: it spins up a
throwaway :class:`repro.session.KnowledgeBase`-style evaluation
(:func:`solve_configured`) and returns its solution — long-lived callers
should hold a ``KnowledgeBase`` instead and let it maintain the model
incrementally across updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, Optional, Union

from ..analysis.classification import classify
from ..config import (
    DEFAULT_ENGINE,
    DEFAULT_SEMANTICS,
    DEFAULT_STRATEGY,
    EVALUATION_ENGINES,
    EVALUATION_STRATEGIES,
    SUPPORTED_SEMANTICS,
    EngineConfig,
    resolve_config,
)
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.grounding import GroundingLimits
from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..datalog.terms import Constant
from ..exceptions import EvaluationError
from ..obs.recorder import Recorder, ensure_recorder
from ..resilience.budget import metered
from ..storage import DEFAULT_STORE, FactStore
from ..fixpoint.interpretations import PartialInterpretation, TruthValue
from ..core.alternating import alternating_fixpoint
from ..core.context import build_context
from ..core.stable import stable_consequences
from ..core.wellfounded import well_founded_model
from ..semantics.fitting import fitting_model
from ..semantics.horn import horn_minimum_model
from ..semantics.inflationary import inflationary_model
from ..semantics.stratified import stratified_model

__all__ = [
    "Solution",
    "solve",
    "solve_configured",
    "resolve_auto_semantics",
    "SUPPORTED_SEMANTICS",
    "EVALUATION_STRATEGIES",
    "EVALUATION_ENGINES",
    "DEFAULT_ENGINE",
    "EngineConfig",
]


@dataclass(frozen=True)
class Solution:
    """The result of solving a program under one semantics.

    Relation views are predicate-indexed: the first call to
    :meth:`relation` / :meth:`undefined_relation` builds a per-predicate
    row index over the interpretation once, and every later call (query-
    heavy sessions hit these constantly) is a dictionary lookup instead of
    a scan over every true/base atom.
    """

    program: Program
    semantics: str
    interpretation: PartialInterpretation
    base: frozenset[Atom]
    strategy: str = DEFAULT_STRATEGY
    engine: str = DEFAULT_ENGINE
    config: Optional[EngineConfig] = None
    #: The ground evaluation context the model was computed over, when the
    #: producer kept it — lets consumers (e.g. the session explainer) reuse
    #: the grounding instead of re-running it.
    context: Optional[object] = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def value_of(self, atom: Atom) -> TruthValue:
        """Truth value of a ground atom; atoms outside the base that are not
        EDB facts are false by the closed-world reading."""
        value = self.interpretation.value_of_atom(atom)
        if value is TruthValue.UNDEFINED and atom not in self.base:
            return TruthValue.FALSE
        return value

    def is_true(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.TRUE

    def is_false(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.FALSE

    def is_undefined(self, predicate: str, *values: object) -> bool:
        return self.value_of(_ground_atom(predicate, values)) is TruthValue.UNDEFINED

    @cached_property
    def _true_rows(self) -> Mapping[str, frozenset[tuple[object, ...]]]:
        """True tuples indexed by predicate, with constants unwrapped."""
        rows: dict[str, set[tuple[object, ...]]] = {}
        for atom in self.interpretation.true_atoms:
            rows.setdefault(atom.predicate, set()).add(
                tuple(_unwrap(term) for term in atom.args)
            )
        return {predicate: frozenset(found) for predicate, found in rows.items()}

    @cached_property
    def _undefined_rows(self) -> Mapping[str, frozenset[tuple[object, ...]]]:
        """Undefined tuples of the base indexed by predicate."""
        rows: dict[str, set[tuple[object, ...]]] = {}
        for atom in self.base:
            if self.interpretation.value_of_atom(atom) is TruthValue.UNDEFINED:
                rows.setdefault(atom.predicate, set()).add(
                    tuple(_unwrap(term) for term in atom.args)
                )
        return {predicate: frozenset(found) for predicate, found in rows.items()}

    def relation(self, predicate: str) -> set[tuple[object, ...]]:
        """The tuples for which *predicate* is true, with constants unwrapped."""
        return set(self._true_rows.get(predicate, ()))

    def undefined_relation(self, predicate: str) -> set[tuple[object, ...]]:
        """Tuples of *predicate* left undefined by a partial semantics."""
        return set(self._undefined_rows.get(predicate, ()))

    def true_atoms(self) -> frozenset[Atom]:
        return self.interpretation.true_atoms

    def false_atoms(self) -> frozenset[Atom]:
        return self.interpretation.false_atoms

    @property
    def is_total(self) -> bool:
        return self.interpretation.is_total_over(self.base)


def _unwrap(term: object) -> object:
    return term.value if isinstance(term, Constant) else term


def _ground_atom(predicate: str, values: Iterable[object]) -> Atom:
    return Atom(predicate, tuple(Constant(v) for v in values))


def resolve_auto_semantics(program: Program) -> str:
    """The concrete semantics ``"auto"`` picks for *program*: the cheapest
    one agreeing with the well-founded model for its syntactic class."""
    return classify(program, check_local=False).recommended_semantics


def solve_configured(
    program: Union[str, Program],
    config: EngineConfig,
    database: Optional[Database] = None,
    store: Optional[FactStore] = None,
    recorder: Optional[Recorder] = None,
) -> Solution:
    """Solve *program* under an already-resolved :class:`EngineConfig`.

    This is the config-native core of :func:`solve`, also used by
    :class:`repro.session.KnowledgeBase` for the semantics its incremental
    engine does not cover.

    EDB facts can arrive three ways, probed in this order: an explicit
    *store* (any :class:`~repro.storage.FactStore`), a *database* (whose
    backing store is used directly — the grounder probes its live
    indexes), or the backend named by ``config.store`` (opened for this
    call and closed afterwards).  In every case the returned solution's
    ``program`` includes the facts as fact rules, exactly as the
    historical ``database.attach`` path produced.

    *recorder* (see :mod:`repro.obs`) instruments the whole call as one
    ``solve`` span whose children are the pipeline phases (``ground``,
    then ``condense``/``component``/``assemble`` under the modular engine
    or a single ``evaluate`` span otherwise); the default
    :class:`~repro.obs.NullRecorder` records nothing at near-zero cost.
    """
    if isinstance(program, str):
        program = parse_program(program)
    if store is not None and database is not None:
        raise EvaluationError("pass either database= or store=, not both")
    owned: Optional[FactStore] = None
    if store is None and database is not None:
        store = database.store
    if store is None and config.store != DEFAULT_STORE:
        store = owned = config.create_store()
    recorder = ensure_recorder(recorder)
    # The owned-store close is the outermost finally: whatever escapes the
    # solve — including budget aborts — never leaks the backend connection.
    try:
        with metered(config.budget) as meter:
            try:
                return _solve_with_store(program, config, store, recorder)
            finally:
                if recorder.enabled and meter.active:
                    recorder.count("budget.steps", meter.steps)
                    recorder.count("budget.elapsed_ms", int(meter.elapsed() * 1000))
    finally:
        if owned is not None:
            owned.close()


def _solve_with_store(
    program: Program,
    config: EngineConfig,
    store: Optional[FactStore],
    recorder: Recorder,
) -> Solution:
    with recorder.span(
        "solve",
        semantics=config.semantics,
        engine=config.engine,
        strategy=config.strategy,
    ) as solve_span:
        semantics = config.semantics
        if semantics == "auto":
            # Classification is a function of the rules: facts are definite
            # and add no dependency arcs, so the store need not be attached.
            with recorder.span("classify") as classify_span:
                semantics = resolve_auto_semantics(program)
            if recorder.enabled:
                classify_span.annotate(semantics=semantics)

        limits = config.limits
        strategy = config.strategy
        engine = config.engine
        if store is not None and (
            program.is_ground or config.resolved_grounder != "relevant"
        ):
            # The naive/scan grounders and the ground-program passthrough need
            # the facts materialised as fact rules up front.  Everything else
            # leaves the facts in the store: the streaming grounder probes its
            # live indexes and emits the fact rules into the context in one
            # pass — no second enumeration of the EDB.
            program = Program.union(store.as_program(), program)
            store = None
        probes_before = store.probes if store is not None else 0
        context = build_context(
            program,
            limits=limits,
            grounder=config.resolved_grounder,
            store=store,
            recorder=recorder,
        )
        if store is not None:
            # The grounded context records the store's facts as fact rules;
            # use it as the solution's program so downstream consumers (the
            # stratified evaluator below, stable-model re-solves, explainers)
            # see the full program.
            program = context.program
            if recorder.enabled:
                recorder.count("store.candidate_probes", store.probes - probes_before)

        if semantics in ("alternating-fixpoint", "well-founded"):
            if semantics == "alternating-fixpoint":
                interpretation = alternating_fixpoint(
                    context, strategy=strategy, engine=engine, recorder=recorder
                ).model
            else:
                interpretation = well_founded_model(
                    context, strategy=strategy, engine=engine, recorder=recorder
                ).model
        elif semantics == "stratified":
            with recorder.span("evaluate", method="stratified"):
                interpretation = stratified_model(
                    program, limits=limits, strategy=strategy
                ).interpretation
        elif semantics == "horn":
            with recorder.span("evaluate", method="horn"):
                interpretation = horn_minimum_model(context, strategy=strategy).interpretation
        elif semantics == "fitting":
            with recorder.span("evaluate", method="fitting"):
                interpretation = fitting_model(context).model
        elif semantics == "inflationary":
            with recorder.span("evaluate", method="inflationary"):
                interpretation = inflationary_model(context).interpretation
        elif semantics == "stable":
            with recorder.span("evaluate", method="stable"):
                interpretation = stable_consequences(
                    context, limits=limits, strategy=strategy
                )
        else:  # pragma: no cover - guarded by EngineConfig validation
            raise EvaluationError(f"unhandled semantics {semantics!r}")

        solution = Solution(
            program=program,
            semantics=semantics,
            interpretation=interpretation,
            base=frozenset(context.base),
            strategy=strategy,
            engine=engine,
            config=config,
            context=context,
        )
    if recorder.enabled:
        solve_span.annotate(
            semantics=semantics, atoms=len(context.base), rules=len(context.rules)
        )
    return solution


def solve(
    program: Union[str, Program],
    semantics: Optional[str] = None,
    database: Optional[Database] = None,
    limits: GroundingLimits | None = None,
    strategy: Optional[str] = None,
    engine: Optional[str] = None,
    *,
    store: Optional[FactStore] = None,
    grounder: Optional[str] = None,
    matcher: Optional[str] = None,
    config: Optional[EngineConfig] = None,
    recorder: Optional[Recorder] = None,
) -> Solution:
    """Solve *program* under the requested semantics, one-shot.

    Parameters
    ----------
    program:
        Program text (parsed with the standard syntax) or a ready
        :class:`Program`.
    semantics:
        One of :data:`SUPPORTED_SEMANTICS` (default ``"auto"``).
        ``"stable"`` computes the *intersection* semantics (true in every
        stable model / false in every stable model) and raises when there
        is no stable model.  May be combined with ``config=``, overriding
        the config's semantics.
    database:
        Optional EDB facts to attach to the rules before solving.  The
        database's backing :class:`~repro.storage.FactStore` is probed in
        place by the grounder, so repeated solves against the same
        database reuse its indexes.
    store:
        Optional :class:`~repro.storage.FactStore` supplying the EDB
        directly — everywhere a ``database`` is accepted, a store now is
        too.  Passing both is rejected.
    config:
        An :class:`EngineConfig` carrying every evaluation choice
        (semantics / strategy / engine / grounder / matcher / limits),
        validated at construction.  This is the preferred spelling.
    strategy, engine, grounder, matcher:
        Deprecated per-field spellings of the config (see
        :class:`EngineConfig` for their meaning); they keep working but
        emit a :class:`DeprecationWarning` and cannot be combined with
        ``config=``.

    For repeated queries and evolving fact bases, prefer a stateful
    :class:`repro.session.KnowledgeBase` — it keeps the solved model warm
    and maintains it incrementally instead of re-solving from scratch.
    """
    resolved = resolve_config(
        config,
        semantics=semantics,
        strategy=strategy,
        engine=engine,
        grounder=grounder,
        matcher=matcher,
        limits=limits,
        default_semantics=DEFAULT_SEMANTICS,
        warn=True,
        caller="solve",
    )
    return solve_configured(
        program, resolved, database=database, store=store, recorder=recorder
    )
