"""High-level deductive-database engine: one-call solving and querying."""

from .query import QueryAnswer, answers, ask
from .solver import SUPPORTED_SEMANTICS, Solution, solve

__all__ = ["QueryAnswer", "answers", "ask", "SUPPORTED_SEMANTICS", "Solution", "solve"]
