"""High-level deductive-database engine: one-call solving and querying."""

from .query import QueryAnswer, answers, ask
from .solver import (
    DEFAULT_ENGINE,
    EVALUATION_ENGINES,
    EVALUATION_STRATEGIES,
    SUPPORTED_SEMANTICS,
    Solution,
    solve,
)

__all__ = [
    "QueryAnswer",
    "answers",
    "ask",
    "DEFAULT_ENGINE",
    "EVALUATION_ENGINES",
    "EVALUATION_STRATEGIES",
    "SUPPORTED_SEMANTICS",
    "Solution",
    "solve",
]
