"""Query answering against a computed model.

The paper frames a logic program as a mapping from EDB instances to IDB
instances and a *query* as a question about that mapping (Section 2.5,
Example 2.1: "is there a path from a to b?", "what nodes have paths to a
but not to b?").  This module answers such queries against a
:class:`~repro.engine.solver.Solution`:

* ground queries get a three-valued verdict;
* queries with variables are answered by enumerating the substitutions that
  make every conjunct true (negative conjuncts must be false, mirroring the
  certain-answer reading of the well-founded model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.parser import parse_literal, tokenize
from ..datalog.terms import Constant, Term, Variable
from ..datalog.unification import match_atom
from ..exceptions import ParseError
from ..fixpoint.interpretations import TruthValue
from .solver import Solution

__all__ = ["QueryAnswer", "ask", "answers", "query_has_variables"]


def query_has_variables(text: str) -> bool:
    """Whether a textual conjunctive query mentions a variable.

    The parser convention makes any identifier starting with an uppercase
    letter a variable; this scans the identifier tokens of the raw text so
    the CLI and the repl can route between :func:`ask` and :func:`answers`
    without parsing twice.
    """
    token = ""
    for char in text:
        if char.isalnum() or char == "_":
            token += char
        else:
            if token and token[0].isupper():
                return True
            token = ""
    return bool(token) and token[0].isupper()


@dataclass(frozen=True)
class QueryAnswer:
    """One satisfying substitution for a conjunctive query."""

    binding: Mapping[Variable, Term]

    def __getitem__(self, name: str) -> object:
        for variable, term in self.binding.items():
            if variable.name == name:
                return term.value if isinstance(term, Constant) else term
        raise KeyError(name)

    def as_dict(self) -> dict[str, object]:
        return {
            variable.name: (term.value if isinstance(term, Constant) else term)
            for variable, term in self.binding.items()
        }


def _parse_query(text: str) -> list[Literal]:
    """Parse a comma-separated conjunction of literals."""
    literals: list[Literal] = []
    depth = 0
    start = 0
    pieces: list[str] = []
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            pieces.append(text[start:index])
            start = index + 1
    pieces.append(text[start:])
    for piece in pieces:
        piece = piece.strip().rstrip(".")
        if not piece:
            continue
        literals.append(parse_literal(piece))
    if not literals:
        raise ParseError("empty query")
    return literals


def ask(solution: Solution, query: str) -> TruthValue:
    """Answer a *ground* conjunctive query three-valuedly.

    The conjunction is evaluated with Kleene conjunction over the
    solution's interpretation (negative conjuncts invert the atom's value).
    """
    literals = _parse_query(query)
    result = TruthValue.TRUE
    for literal in literals:
        if not literal.is_ground:
            raise ParseError(
                f"query literal {literal} has variables; use answers() for "
                "non-ground queries"
            )
        value = solution.value_of(literal.atom)
        if literal.negative:
            value = ~value
        result = result.conjoin(value)
    return result


def answers(solution: Solution, query: str) -> Iterator[QueryAnswer]:
    """Enumerate the substitutions making a conjunctive query *true*.

    Positive conjuncts are matched against the true atoms of the solution;
    negative conjuncts require the instantiated atom to be false (not
    merely undefined), giving certain answers under partial models.
    """
    literals = _parse_query(query)
    positive = [lit for lit in literals if lit.positive]
    negative = [lit for lit in literals if lit.negative]

    # Index the true atoms by (predicate, arity) once; every positive
    # conjunct at every depth of the backtracking search then scans only its
    # own relation instead of the whole model.
    by_signature: dict[tuple[str, int], list[Atom]] = {}
    for atom in solution.true_atoms():
        by_signature.setdefault((atom.predicate, atom.arity), []).append(atom)

    def extend(index: int, binding: dict[Variable, Term]) -> Iterator[dict[Variable, Term]]:
        if index == len(positive):
            yield binding
            return
        pattern = positive[index].atom
        for atom in by_signature.get((pattern.predicate, pattern.arity), ()):
            extended = match_atom(pattern, atom, binding)
            if extended is not None:
                yield from extend(index + 1, extended)

    seen: set[tuple] = set()
    for binding in extend(0, {}):
        grounded_negatives_ok = True
        for literal in negative:
            instantiated = literal.atom.substitute(binding)
            if not instantiated.is_ground:
                raise ParseError(
                    f"negative query literal {literal} is not ground after binding "
                    "the positive conjuncts"
                )
            if solution.value_of(instantiated) is not TruthValue.FALSE:
                grounded_negatives_ok = False
                break
        if not grounded_negatives_ok:
            continue
        key = tuple(sorted((v.name, str(t)) for v, t in binding.items()))
        if key in seen:
            continue
        seen.add(key)
        yield QueryAnswer(dict(binding))
