"""Substitutions, matching and unification.

Grounding and top-down query answering need two related operations:

* *matching* a rule literal (possibly containing variables) against a ground
  atom, producing a variable binding; and
* full *unification* of two terms or atoms, the symmetric operation.

The hash-join grounder adds a third: *binding-pattern extraction*
(:func:`binding_pattern`), which splits an atom's argument positions under a
partial substitution into the ground ones — usable as an index key — and
the open ones, matched per candidate with :func:`match_projected`.

All are provided here as pure functions on immutable terms.  A substitution
is represented as a plain ``dict`` mapping :class:`Variable` to
:class:`Term`.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional, Sequence

from .atoms import Atom
from .terms import Compound, Constant, Term, Variable, substitute_term

__all__ = [
    "match_atom",
    "match_term",
    "unify_atoms",
    "unify_terms",
    "compose",
    "apply_substitution",
    "binding_pattern",
    "match_projected",
]

Substitution = dict[Variable, Term]


def apply_substitution(term: Term, substitution: Mapping[Variable, Term]) -> Term:
    """Apply *substitution* to *term* (a thin alias of ``substitute_term``)."""
    return substitute_term(term, substitution)


def compose(first: Mapping[Variable, Term], second: Mapping[Variable, Term]) -> Substitution:
    """Compose two substitutions: applying the result is equivalent to
    applying *first* and then *second*."""
    composed: Substitution = {
        var: substitute_term(term, second) for var, term in first.items()
    }
    for var, term in second.items():
        composed.setdefault(var, term)
    return composed


# --------------------------------------------------------------------- #
# Matching (one-sided unification against ground data)
# --------------------------------------------------------------------- #
def match_term(
    pattern: Term,
    ground: Term,
    binding: Optional[MutableMapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Match *pattern* against the ground term *ground*.

    Returns an extended binding on success and ``None`` on failure.  The
    input *binding* is not mutated.
    """
    current: Substitution = dict(binding or {})
    if _match_term_into(pattern, ground, current):
        return current
    return None


def _match_term_into(pattern: Term, ground: Term, binding: Substitution) -> bool:
    if isinstance(pattern, Variable):
        bound = binding.get(pattern)
        if bound is None:
            binding[pattern] = ground
            return True
        return bound == ground
    if isinstance(pattern, Constant):
        return pattern == ground
    if isinstance(pattern, Compound):
        if not isinstance(ground, Compound):
            return False
        if pattern.functor != ground.functor or pattern.arity != ground.arity:
            return False
        return all(
            _match_term_into(p, g, binding) for p, g in zip(pattern.args, ground.args)
        )
    return False


def match_atom(
    pattern: Atom,
    ground: Atom,
    binding: Optional[Mapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Match an atom pattern against a ground atom.

    The predicate names and arities must agree; argument terms are matched
    left to right, threading the binding through.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    current: Substitution = dict(binding or {})
    for pattern_arg, ground_arg in zip(pattern.args, ground.args):
        if not _match_term_into(pattern_arg, ground_arg, current):
            return None
    return current


# --------------------------------------------------------------------- #
# Binding-pattern extraction (hash-join support)
# --------------------------------------------------------------------- #
def binding_pattern(
    pattern: Atom,
    binding: Optional[Mapping[Variable, Term]] = None,
) -> tuple[tuple[int, ...], tuple[Term, ...]]:
    """Extract the *binding pattern* of an atom under a substitution.

    Substitutes *binding* into the atom's arguments and returns
    ``(positions, args)`` where ``args`` are the substituted argument terms
    and ``positions`` are the argument indexes that came out fully ground.
    A hash-join probe (see :mod:`repro.datalog.joins`) uses the bound
    positions as the index key and matches only the remaining positions
    against candidate facts.
    """
    if binding:
        args = tuple(substitute_term(arg, binding) for arg in pattern.args)
    else:
        args = pattern.args
    positions = tuple(i for i, arg in enumerate(args) if arg.is_ground)
    return positions, args


def match_projected(
    pattern_args: Sequence[Term],
    ground_args: Sequence[Term],
    positions: Sequence[int],
    binding: Optional[Mapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Match *pattern_args* against *ground_args* at the given positions only.

    The complement of an index probe: the probe guarantees equality on the
    bound positions, and this binds the remaining ones (threading repeated
    variables and partially ground compound terms through the shared
    binding).  Returns the extended substitution, or ``None`` on mismatch.
    """
    current: Substitution = dict(binding or {})
    for position in positions:
        if not _match_term_into(pattern_args[position], ground_args[position], current):
            return None
    return current


# --------------------------------------------------------------------- #
# Full unification
# --------------------------------------------------------------------- #
def unify_terms(
    left: Term,
    right: Term,
    binding: Optional[Mapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Unify two terms, returning a most general unifier or ``None``.

    Uses the standard occurs-check-free Robinson algorithm with an explicit
    occurs check added (the library never relies on rational trees).
    """
    current: Substitution = dict(binding or {})
    if _unify_into(left, right, current):
        return current
    return None


def _walk(term: Term, binding: Substitution) -> Term:
    """Follow variable bindings until reaching a non-variable or an unbound
    variable."""
    while isinstance(term, Variable) and term in binding:
        term = binding[term]
    return term


def _occurs(variable: Variable, term: Term, binding: Substitution) -> bool:
    term = _walk(term, binding)
    if term == variable:
        return True
    if isinstance(term, Compound):
        return any(_occurs(variable, arg, binding) for arg in term.args)
    return False


def _unify_into(left: Term, right: Term, binding: Substitution) -> bool:
    left = _walk(left, binding)
    right = _walk(right, binding)
    if left == right:
        return True
    if isinstance(left, Variable):
        if _occurs(left, right, binding):
            return False
        binding[left] = right
        return True
    if isinstance(right, Variable):
        if _occurs(right, left, binding):
            return False
        binding[right] = left
        return True
    if isinstance(left, Compound) and isinstance(right, Compound):
        if left.functor != right.functor or left.arity != right.arity:
            return False
        return all(_unify_into(a, b, binding) for a, b in zip(left.args, right.args))
    return False


def unify_atoms(
    left: Atom,
    right: Atom,
    binding: Optional[Mapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Unify two atoms, returning a most general unifier or ``None``."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current: Substitution = dict(binding or {})
    for left_arg, right_arg in zip(left.args, right.args):
        if not _unify_into(left_arg, right_arg, current):
            return None
    return current
