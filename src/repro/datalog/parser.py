"""Parser for the concrete rule syntax.

The textual syntax follows the paper's examples, adapted to ASCII:

* a rule is ``head :- lit1, lit2, ..., litN.`` (``<-`` is accepted as a
  synonym for ``:-``);
* a fact is ``head.``;
* negation is written ``not p(X)`` (``\\+`` and ``~`` are accepted);
* variables start with an uppercase letter or ``_``; constants are
  lowercase identifiers, integers, or quoted strings;
* compound terms ``f(a, X)`` are allowed inside atom arguments;
* ``%`` and ``#`` start comments that run to the end of the line.

The parser is a small hand-written recursive-descent parser with a
tokeniser; it reports 1-based line/column positions in error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..exceptions import ParseError
from .atoms import Atom, Literal
from .rules import Program, Rule
from .terms import Compound, Constant, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "parse_literal", "tokenize"]


# --------------------------------------------------------------------- #
# Tokeniser
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int


_PUNCTUATION = {
    "(": "lparen",
    ")": "rparen",
    ",": "comma",
    ".": "dot",
}


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens, skipping whitespace and comments."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line=line, column=column)

    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char in "%#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        start_line, start_column = line, column
        if text.startswith(":-", index) or text.startswith("<-", index):
            tokens.append(Token("implies", text[index : index + 2], start_line, start_column))
            index += 2
            column += 2
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, start_line, start_column))
            index += 1
            column += 1
            continue
        if char in "~" or text.startswith("\\+", index):
            width = 2 if text.startswith("\\+", index) else 1
            tokens.append(Token("not", text[index : index + width], start_line, start_column))
            index += width
            column += width
            continue
        if char == '"' or char == "'":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token("string", text[index + 1 : end], start_line, start_column))
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and text[index + 1].isdigit()):
            end = index + 1
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token("number", text[index:end], start_line, start_column))
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "not" if word == "not" else "name"
            tokens.append(Token(kind, word, start_line, start_column))
            column += end - index
            index = end
            continue
        raise error(f"unexpected character {char!r}")
    return tokens


# --------------------------------------------------------------------- #
# Recursive-descent parser
# --------------------------------------------------------------------- #
class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)

    # ------------------------------------------------------------------ #
    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while not self.exhausted:
            rules.append(self.parse_rule())
        return Program(rules)

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        token = self._peek()
        if token is not None and token.kind == "implies":
            self._advance()
            body = self._parse_body()
        else:
            body = ()
        self._expect("dot")
        return Rule(head, tuple(body))

    def _parse_body(self) -> list[Literal]:
        literals = [self.parse_literal()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "comma":
                self._advance()
                literals.append(self.parse_literal())
            else:
                return literals

    def parse_literal(self) -> Literal:
        token = self._peek()
        if token is not None and token.kind == "not":
            self._advance()
            return Literal(self.parse_atom(), positive=False)
        return Literal(self.parse_atom(), positive=True)

    def parse_atom(self) -> Atom:
        token = self._expect("name")
        if token.value[0].isupper() or token.value[0] == "_":
            raise ParseError(
                f"atom predicate {token.value!r} must not start with an uppercase letter",
                token.line,
                token.column,
            )
        next_token = self._peek()
        if next_token is None or next_token.kind != "lparen":
            return Atom(token.value, ())
        self._advance()
        args = [self.parse_term()]
        while True:
            punct = self._advance()
            if punct.kind == "rparen":
                break
            if punct.kind != "comma":
                raise ParseError(
                    f"expected ',' or ')', found {punct.value!r}", punct.line, punct.column
                )
            args.append(self.parse_term())
        return Atom(token.value, tuple(args))

    def parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "number":
            return Constant(int(token.value))
        if token.kind == "string":
            return Constant(token.value)
        if token.kind != "name":
            raise ParseError(
                f"expected a term, found {token.value!r}", token.line, token.column
            )
        if token.value[0].isupper() or token.value[0] == "_":
            return Variable(token.value)
        next_token = self._peek()
        if next_token is not None and next_token.kind == "lparen":
            self._advance()
            args = [self.parse_term()]
            while True:
                punct = self._advance()
                if punct.kind == "rparen":
                    break
                if punct.kind != "comma":
                    raise ParseError(
                        f"expected ',' or ')', found {punct.value!r}",
                        punct.line,
                        punct.column,
                    )
                args.append(self.parse_term())
            return Compound(token.value, tuple(args))
        return Constant(token.value)


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #
def parse_program(text: str) -> Program:
    """Parse a complete program (zero or more rules)."""
    return _Parser(tokenize(text)).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact, requiring the whole input to be consumed."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule()
    if not parser.exhausted:
        raise ParseError("trailing input after rule")
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom (no trailing period)."""
    parser = _Parser(tokenize(text))
    result = parser.parse_atom()
    if not parser.exhausted:
        raise ParseError("trailing input after atom")
    return result


def parse_literal(text: str) -> Literal:
    """Parse a single literal (possibly negated, no trailing period)."""
    parser = _Parser(tokenize(text))
    result = parser.parse_literal()
    if not parser.exhausted:
        raise ParseError("trailing input after literal")
    return result


def parse_rules(texts: Iterator[str] | list[str]) -> Program:
    """Parse an iterable of rule strings into a single program."""
    rules = [parse_rule(text) for text in texts]
    return Program(rules)
