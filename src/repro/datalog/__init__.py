"""Datalog substrate: terms, atoms, rules, parsing, grounding, databases.

This subpackage is the language layer everything else builds on.  It knows
nothing about any particular semantics; it only provides the syntactic
objects (Section 3 of the paper) and the Herbrand instantiation machinery.
"""

from .atoms import Atom, Literal, Predicate, atom, neg, pos
from .builder import ProgramBuilder, build_program
from .database import Database
from .grounding import (
    DEFAULT_GROUNDING_MATCHER,
    GROUNDING_MATCHERS,
    GroundingLimits,
    ground_program,
    herbrand_base,
    herbrand_universe,
    naive_ground,
    relevant_ground,
    stream_relevant_ground,
)
from .joins import Relation, RelationStore, greedy_join_order, join_bindings
from .io import (
    load_facts_csv,
    load_interpretation_json,
    load_program,
    save_facts_csv,
    save_interpretation_json,
    save_program,
)
from .parser import parse_atom, parse_literal, parse_program, parse_rule
from .rules import Program, Rule
from .terms import Compound, Constant, Term, Variable, make_term
from .unification import match_atom, unify_atoms, unify_terms

__all__ = [
    "Atom",
    "Literal",
    "Predicate",
    "atom",
    "pos",
    "neg",
    "ProgramBuilder",
    "build_program",
    "Database",
    "DEFAULT_GROUNDING_MATCHER",
    "GROUNDING_MATCHERS",
    "GroundingLimits",
    "ground_program",
    "herbrand_base",
    "herbrand_universe",
    "naive_ground",
    "relevant_ground",
    "stream_relevant_ground",
    "Relation",
    "RelationStore",
    "greedy_join_order",
    "join_bindings",
    "load_facts_csv",
    "load_interpretation_json",
    "load_program",
    "save_facts_csv",
    "save_interpretation_json",
    "save_program",
    "parse_atom",
    "parse_literal",
    "parse_program",
    "parse_rule",
    "Program",
    "Rule",
    "Compound",
    "Constant",
    "Term",
    "Variable",
    "make_term",
    "match_atom",
    "unify_atoms",
    "unify_terms",
]
