"""Program and model input/output.

A deductive-database library needs to read programs from files, load EDB
relations from delimited text, and save computed models in a structured
form.  This module provides exactly that, with no dependencies beyond the
standard library:

* :func:`load_program` / :func:`save_program` — rule files in the textual
  syntax of :mod:`repro.datalog.parser` (comments preserved as written on
  load in the sense that they are simply ignored);
* :func:`load_facts_csv` / :func:`save_facts_csv` — one relation per file,
  one tuple per line, comma-separated; both stream through any fact
  container — a :class:`~repro.datalog.database.Database` or any
  :class:`~repro.storage.FactStore` backend (so a CSV can be bulk-loaded
  straight into a durable :class:`~repro.storage.SqliteStore`);
* :func:`interpretation_to_dict` / :func:`interpretation_from_dict` and the
  JSON wrappers — a stable, documented serialisation of partial
  interpretations (true / false / optionally undefined atom lists), used by
  the CLI to emit machine-readable results.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

from ..exceptions import ParseError
from ..fixpoint.interpretations import PartialInterpretation
from ..storage.base import FactStore
from .atoms import Atom
from .database import Database
from .parser import parse_atom, parse_program
from .rules import Program
from .terms import Constant

#: Containers the CSV helpers stream through: the historical Database
#: façade or any FactStore backend.  Both expose the same value-coercing
#: ``add(relation, *values)`` / ``values(relation)`` surface.
FactSink = Database | FactStore

__all__ = [
    "load_program",
    "save_program",
    "load_facts_csv",
    "save_facts_csv",
    "interpretation_to_dict",
    "interpretation_from_dict",
    "save_interpretation_json",
    "load_interpretation_json",
]


# --------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------- #
def load_program(path: str | Path) -> Program:
    """Parse the rule file at *path* into a :class:`Program`."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_program(text)


def save_program(program: Program, path: str | Path, header: Optional[str] = None) -> None:
    """Write *program* in the standard textual syntax.

    ``header`` (if given) is written as a leading comment block.
    """
    lines: list[str] = []
    if header:
        lines.extend(f"% {line}" for line in header.splitlines())
        lines.append("")
    lines.extend(str(rule) for rule in program)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


# --------------------------------------------------------------------- #
# EDB relations as CSV
# --------------------------------------------------------------------- #
def load_facts_csv(
    path: str | Path,
    relation: str,
    database: Optional[FactSink] = None,
    numeric: bool = True,
) -> FactSink:
    """Load one relation from a comma-separated file into a fact container.

    Each row becomes one tuple of the relation; with ``numeric`` (default)
    cells that look like integers are stored as integers, everything else as
    strings.  Appends to *database* when given — a :class:`Database` or any
    :class:`~repro.storage.FactStore` backend, which the rows stream into
    one at a time (no intermediate materialisation, so a larger-than-memory
    CSV can flow straight into a durable store) — otherwise creates and
    returns a new :class:`Database`.
    """
    database = database if database is not None else Database()
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or all(not cell.strip() for cell in row):
                continue
            values = [_coerce(cell.strip(), numeric) for cell in row]
            database.add(relation, *values)
    return database


def save_facts_csv(database: FactSink, relation: str, path: str | Path) -> None:
    """Write one relation of a fact container (a :class:`Database` or any
    :class:`~repro.storage.FactStore`) as a comma-separated file."""
    rows = sorted(database.values(relation), key=lambda row: tuple(str(v) for v in row))
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        for row in rows:
            writer.writerow(row)


def _coerce(cell: str, numeric: bool) -> object:
    if numeric:
        try:
            return int(cell)
        except ValueError:
            pass
    return cell


# --------------------------------------------------------------------- #
# Interpretations as JSON
# --------------------------------------------------------------------- #
def interpretation_to_dict(
    interpretation: PartialInterpretation,
    base: Optional[Iterable[Atom]] = None,
) -> dict:
    """A JSON-friendly view of a partial interpretation.

    ``{"true": [...], "false": [...], "undefined": [...]}`` with atoms in
    their textual form; the ``undefined`` list is present only when *base*
    is supplied.
    """
    payload: dict = {
        "true": sorted(str(a) for a in interpretation.true_atoms),
        "false": sorted(str(a) for a in interpretation.false_atoms),
    }
    if base is not None:
        payload["undefined"] = sorted(
            str(a) for a in interpretation.undefined_atoms(frozenset(base))
        )
    return payload


def interpretation_from_dict(payload: Mapping) -> PartialInterpretation:
    """Rebuild a partial interpretation from :func:`interpretation_to_dict`
    output (the ``undefined`` list, if present, is ignored — undefinedness
    is the absence of information)."""
    try:
        true_atoms = [parse_atom(text) for text in payload.get("true", [])]
        false_atoms = [parse_atom(text) for text in payload.get("false", [])]
    except ParseError as error:
        raise ParseError(f"malformed interpretation payload: {error}") from error
    return PartialInterpretation(true_atoms, false_atoms)


def save_interpretation_json(
    interpretation: PartialInterpretation,
    path: str | Path,
    base: Optional[Iterable[Atom]] = None,
    metadata: Optional[Mapping] = None,
) -> None:
    """Write an interpretation (plus optional metadata) as JSON."""
    payload = interpretation_to_dict(interpretation, base)
    if metadata:
        payload["metadata"] = dict(metadata)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def load_interpretation_json(path: str | Path) -> PartialInterpretation:
    """Read an interpretation previously written by
    :func:`save_interpretation_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return interpretation_from_dict(payload)
