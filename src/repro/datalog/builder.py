"""Programmatic builder DSL for constructing programs in Python code.

The parser covers the textual syntax; this module offers an ergonomic
Python-level alternative used heavily by the test suite and workload
generators::

    from repro.datalog.builder import ProgramBuilder

    builder = ProgramBuilder()
    builder.fact("edge", 1, 2)
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Y")])
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Z"), ("tc", "Z", "Y")])
    builder.rule(("ntc", "X", "Y"), [("node", "X"), ("node", "Y"), ("not", "tc", "X", "Y")])
    program = builder.build()

Literal specifications are tuples whose first element is the predicate name
(or the marker string ``"not"`` followed by the predicate name for negative
literals); remaining elements are arguments, coerced with the usual
capitalised-string-is-a-variable convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .atoms import Atom, Literal
from .rules import Program, Rule
from .terms import Constant, make_term

__all__ = ["ProgramBuilder", "build_program", "lit", "head"]


def head(spec: Sequence[object]) -> Atom:
    """Turn ``("pred", arg1, ...)`` into an atom."""
    name, *args = spec
    if not isinstance(name, str):
        raise TypeError(f"predicate name must be a string, got {name!r}")
    return Atom(name, tuple(make_term(a) for a in args))


def lit(spec: Sequence[object]) -> Literal:
    """Turn a literal specification tuple into a :class:`Literal`.

    ``("edge", "X", 2)`` is a positive literal; ``("not", "edge", "X", 2)``
    is a negative one.
    """
    items = list(spec)
    positive = True
    if items and items[0] == "not":
        positive = False
        items = items[1:]
    if not items:
        raise ValueError(f"empty literal specification {spec!r}")
    return Literal(head(items), positive=positive)


class ProgramBuilder:
    """Accumulates rules and facts, then builds an immutable :class:`Program`."""

    def __init__(self) -> None:
        self._rules: list[Rule] = []

    def fact(self, predicate: str, *values: object) -> "ProgramBuilder":
        """Add a ground fact; all arguments are treated as constants."""
        self._rules.append(Rule(Atom(predicate, tuple(Constant(v) for v in values))))
        return self

    def facts(self, predicate: str, rows: Iterable[Sequence[object]]) -> "ProgramBuilder":
        """Add many facts of one relation at once."""
        for row in rows:
            self.fact(predicate, *row)
        return self

    def rule(self, head_spec: Sequence[object], body_specs: Iterable[Sequence[object]] = ()) -> "ProgramBuilder":
        """Add a rule given head and body literal specifications."""
        self._rules.append(Rule(head(head_spec), tuple(lit(spec) for spec in body_specs)))
        return self

    def raw_rule(self, rule: Rule) -> "ProgramBuilder":
        """Add an already-constructed :class:`Rule`."""
        self._rules.append(rule)
        return self

    def proposition(self, name: str, *body: str) -> "ProgramBuilder":
        """Add a propositional rule; prefix a body proposition with ``-`` or
        ``not `` for negation, e.g. ``builder.proposition("p", "q", "-r")``."""
        literals = []
        for entry in body:
            text = entry.strip()
            if text.startswith("-"):
                literals.append(Literal(Atom(text[1:].strip(), ()), positive=False))
            elif text.startswith("not "):
                literals.append(Literal(Atom(text[4:].strip(), ()), positive=False))
            else:
                literals.append(Literal(Atom(text, ()), positive=True))
        self._rules.append(Rule(Atom(name, ()), tuple(literals)))
        return self

    def extend(self, program: Program) -> "ProgramBuilder":
        """Append all rules of an existing program."""
        self._rules.extend(program.rules)
        return self

    def build(self) -> Program:
        """Freeze the accumulated rules into a :class:`Program`."""
        return Program(self._rules)

    def __len__(self) -> int:
        return len(self._rules)


def build_program(
    rules: Iterable[tuple[Sequence[object], Iterable[Sequence[object]]]] = (),
    facts: Iterable[tuple[str, Sequence[object]]] = (),
) -> Program:
    """One-shot helper: build a program from rule and fact specifications.

    ``rules`` is an iterable of ``(head_spec, body_specs)`` pairs and
    ``facts`` an iterable of ``(predicate, row)`` pairs.
    """
    builder = ProgramBuilder()
    for predicate, row in facts:
        builder.fact(predicate, *row)
    for head_spec, body_specs in rules:
        builder.rule(head_spec, body_specs)
    return builder.build()
