"""Herbrand universes, Herbrand bases, and grounding.

Section 3 of the paper defines the Herbrand instantiation ``P_H`` of a
program: every rule is instantiated with ground terms in all possible ways.
The alternating fixpoint, well-founded, and stable semantics are all defined
on this (possibly huge) ground program, so a grounder is the first substrate
the library needs.

Two grounding strategies are provided:

* :func:`naive_ground` — the literal Definition: substitute every tuple of
  universe elements for the rule variables.  Exponential, but exactly the
  ``P_H`` of the paper; useful for small programs and for differential
  testing of the smarter grounder.
* :func:`relevant_ground` — instantiates rules only with substitutions whose
  positive body literals are supported by an over-approximation of the
  derivable atoms (the minimum model of the program with negative literals
  erased).  Negative literals over atoms outside that over-approximation are
  vacuously true and are dropped.  This produces an equivalent ground
  program for every semantics implemented here (atoms outside the
  over-approximation are false in every partial model considered), and it is
  the default used by :func:`ground_program`.

Programs with function symbols have infinite Herbrand universes; the
``max_depth`` parameter bounds the term nesting considered, which is the
substitution documented in DESIGN.md (all paper experiments are
function-free).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..exceptions import GroundingError
from .atoms import Atom, Literal
from .rules import Program, Rule
from .terms import Constant, Term, Variable, enumerate_ground_terms, term_constants, term_functions

__all__ = [
    "GroundingLimits",
    "herbrand_universe",
    "herbrand_base",
    "naive_ground",
    "relevant_ground",
    "ground_program",
]

DEFAULT_MAX_GROUND_RULES = 2_000_000


@dataclass(frozen=True)
class GroundingLimits:
    """Resource limits applied during grounding.

    ``max_depth`` bounds compound-term nesting in the Herbrand universe;
    ``max_rules`` aborts the grounding when the instantiated program would
    exceed the given number of rules (protecting against accidental
    combinatorial blow-ups in user programs).
    """

    max_depth: int = 0
    max_rules: int = DEFAULT_MAX_GROUND_RULES


def herbrand_universe(program: Program, max_depth: int = 0) -> list[Term]:
    """The ground terms constructible from the program's constants and
    function symbols, up to *max_depth* nesting.

    If the program mentions no constants at all, a single fresh constant
    ``u0`` is invented so that rules with variables still have a non-empty
    instantiation (the standard convention).
    """
    constants: list[Constant] = []
    functions: list[tuple[str, int]] = []
    seen_constants: set[Constant] = set()
    seen_functions: set[tuple[str, int]] = set()

    def collect_from_atom(atom: Atom) -> None:
        for arg in atom.args:
            for constant in term_constants(arg):
                if constant not in seen_constants:
                    seen_constants.add(constant)
                    constants.append(constant)
            for signature in term_functions(arg):
                if signature not in seen_functions:
                    seen_functions.add(signature)
                    functions.append(signature)

    for rule in program:
        collect_from_atom(rule.head)
        for literal in rule.body:
            collect_from_atom(literal.atom)

    if not constants:
        constants.append(Constant("u0"))
    return enumerate_ground_terms(constants, functions, max_depth)


def herbrand_base(
    program: Program,
    universe: Optional[Sequence[Term]] = None,
    predicates: Optional[Iterable[str]] = None,
    max_depth: int = 0,
) -> set[Atom]:
    """The Herbrand base: all ground atoms over the given predicates.

    By default the base is restricted to the IDB predicates, following the
    paper's convention that EDB relations are not mentioned in
    interpretations (Section 3.3).  Pass ``predicates`` explicitly to widen
    or narrow the base.
    """
    if universe is None:
        universe = herbrand_universe(program, max_depth)
    signatures = program.predicate_signatures()
    if predicates is None:
        wanted = program.idb_predicates()
    else:
        wanted = set(predicates)
    base: set[Atom] = set()
    for signature in signatures:
        if signature.name not in wanted:
            continue
        if signature.arity == 0:
            base.add(Atom(signature.name, ()))
            continue
        for combination in itertools.product(universe, repeat=signature.arity):
            base.add(Atom(signature.name, tuple(combination)))
    return base


def naive_ground(program: Program, limits: GroundingLimits | None = None) -> Program:
    """The literal Herbrand instantiation ``P_H`` of the program.

    Each rule is instantiated with every assignment of universe elements to
    its variables.  Raises :class:`GroundingError` when the result would
    exceed ``limits.max_rules``.
    """
    limits = limits or GroundingLimits()
    universe = herbrand_universe(program, limits.max_depth)
    ground_rules: list[Rule] = []
    for rule in program:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        if not variables:
            ground_rules.append(rule)
            continue
        count_estimate = len(universe) ** len(variables)
        if len(ground_rules) + count_estimate > limits.max_rules:
            raise GroundingError(
                f"naive grounding of rule '{rule}' would produce {count_estimate} "
                f"instances, exceeding the limit of {limits.max_rules}"
            )
        for combination in itertools.product(universe, repeat=len(variables)):
            binding = dict(zip(variables, combination))
            ground_rules.append(rule.substitute(binding))
    return Program(ground_rules)


def relevant_ground(program: Program, limits: GroundingLimits | None = None) -> Program:
    """Instantiate rules only where their positive body is supportable.

    The over-approximation of derivable atoms is the minimum model of the
    *positive envelope* of the program (the Horn program obtained by erasing
    negative body literals), computed bottom-up to a fixpoint.  Rules are
    instantiated by matching their positive body literals against that set,
    in the given order, threading the variable binding; safety guarantees
    that all variables end up bound.

    Ground negative literals are kept verbatim (even when their atom is
    outside the over-approximation and therefore underivable) so that the
    atoms the paper's examples mention as *false* still occur in the ground
    program and are reported in the computed models.  The resulting ground
    program has the same well-founded, stable, stratified, Horn and
    inflationary models (restricted to the occurring atoms) as the full
    Herbrand instantiation.  The Fitting semantics is the exception: it can
    leave *underivable* atoms undefined (their proof search never finitely
    fails), so :func:`repro.semantics.fitting.fitting_model` grounds naively
    by default.
    """
    from .unification import match_atom  # local import to avoid a cycle at import time

    limits = limits or GroundingLimits()
    program.check_safety()

    facts = set(program.fact_atoms())
    non_facts = program.non_fact_rules()

    # ------------------------------------------------------------------ #
    # 1. Over-approximate the derivable atoms with the positive envelope.
    # ------------------------------------------------------------------ #
    derivable: set[Atom] = set(facts)
    changed = True
    while changed:
        changed = False
        for rule in non_facts:
            positive = [lit.atom for lit in rule.body if lit.positive]
            for binding in _match_body(positive, derivable, match_atom):
                head = rule.head.substitute(binding)
                if not head.is_ground:
                    raise GroundingError(
                        f"rule '{rule}' produced a non-ground head {head}; "
                        "the rule is unsafe"
                    )
                if head not in derivable:
                    derivable.add(head)
                    changed = True

    # ------------------------------------------------------------------ #
    # 2. Instantiate rules against the over-approximation.
    # ------------------------------------------------------------------ #
    ground_rules: list[Rule] = [Rule(fact) for fact in sorted(facts, key=str)]
    seen: set[Rule] = set(ground_rules)
    for rule in non_facts:
        positive = [lit.atom for lit in rule.body if lit.positive]
        negative = [lit for lit in rule.body if lit.negative]
        for binding in _match_body(positive, derivable, match_atom):
            head = rule.head.substitute(binding)
            body: list[Literal] = []
            for lit in rule.body:
                if lit.positive:
                    body.append(lit.substitute(binding))
                    continue
                ground_negative = lit.substitute(binding)
                if not ground_negative.is_ground:
                    raise GroundingError(
                        f"negative literal {lit} in rule '{rule}' is not ground "
                        "after binding positive body variables; the rule is unsafe"
                    )
                body.append(ground_negative)
            new_rule = Rule(head, tuple(body))
            if new_rule not in seen:
                seen.add(new_rule)
                ground_rules.append(new_rule)
            if len(ground_rules) > limits.max_rules:
                raise GroundingError(
                    f"grounding exceeded the limit of {limits.max_rules} rules"
                )
        # `negative` is unused beyond documentation of the split; keep linters quiet.
        del negative
    return Program(ground_rules)


def ground_program(program: Program, limits: GroundingLimits | None = None) -> Program:
    """Ground *program*, returning it unchanged when it is already ground.

    This is the entry point the semantics modules use; it currently
    delegates to :func:`relevant_ground`.
    """
    if program.is_ground:
        return program
    return relevant_ground(program, limits)


def _match_body(atoms: Sequence[Atom], facts: set[Atom], match_atom) -> Iterable[dict]:
    """Yield every binding of the variables of *atoms* such that all atoms
    match some fact in *facts* (conjunctive matching, left to right)."""
    if not atoms:
        yield {}
        return
    # Index facts by predicate once; bodies repeatedly probe the same relations.
    by_predicate: dict[str, list[Atom]] = {}
    for fact in facts:
        by_predicate.setdefault(fact.predicate, []).append(fact)

    def extend(index: int, binding: dict) -> Iterable[dict]:
        if index == len(atoms):
            yield binding
            return
        pattern = atoms[index]
        for fact in by_predicate.get(pattern.predicate, ()):  # pragma: no branch
            extended = match_atom(pattern, fact, binding)
            if extended is not None:
                yield from extend(index + 1, extended)

    yield from extend(0, {})
