"""Herbrand universes, Herbrand bases, and grounding.

Section 3 of the paper defines the Herbrand instantiation ``P_H`` of a
program: every rule is instantiated with ground terms in all possible ways.
The alternating fixpoint, well-founded, and stable semantics are all defined
on this (possibly huge) ground program, so a grounder is the first substrate
the library needs.

Two grounding strategies are provided:

* :func:`naive_ground` — the literal Definition: substitute every tuple of
  universe elements for the rule variables.  Exponential, but exactly the
  ``P_H`` of the paper; useful for small programs and for differential
  testing of the smarter grounder.
* :func:`relevant_ground` — instantiates rules only with substitutions whose
  positive body literals are supported by an over-approximation of the
  derivable atoms (the minimum model of the program with negative literals
  erased).  Negative literals over atoms outside that over-approximation are
  vacuously true and are dropped.  This produces an equivalent ground
  program for every semantics implemented here (atoms outside the
  over-approximation are false in every partial model considered), and it is
  the default used by :func:`ground_program`.

:func:`relevant_ground` itself dispatches between two matchers, mirroring
the ``"seminaive"`` / ``"naive"`` strategy split of :mod:`repro.evaluation`:

* ``"indexed"`` (default) — a fused semi-naive grounder built on the
  hash-join relations of :mod:`repro.datalog.joins`.  The envelope fixpoint
  is delta-driven: each round evaluates, per rule, one variant per positive
  conjunct with that conjunct restricted to the rows derived in the
  previous round (earlier conjuncts to strictly older rows, later ones to
  everything), so every rule instance is enumerated exactly once, the
  moment its last supporting atom appears.  Conjuncts are joined in greedy
  most-bound-first order through lazily built argument-position hash
  indexes, and ground rules are emitted incrementally — there is no
  separate re-instantiation pass.  :func:`stream_relevant_ground` exposes
  the incremental rule stream directly (consumed by
  :func:`repro.core.context.build_context` to build evaluation contexts
  without an intermediate program).
* ``"scan"`` — the original matcher: a naive envelope fixpoint that
  re-matches every rule against the whole derivable set each round by
  linear scan over per-signature fact lists, then a second pass that
  re-instantiates every rule.  Quadratically slower on recursive
  workloads; kept as the differential-testing oracle.

Programs with function symbols have infinite Herbrand universes; the
``max_depth`` parameter bounds the term nesting considered, which is the
substitution documented in DESIGN.md (all paper experiments are
function-free).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from ..exceptions import GroundingError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import Budget, current_meter
from .atoms import Atom, Literal
from .joins import RelationStore, join_bindings
from .rules import Program, Rule
from .terms import Constant, Term, Variable, enumerate_ground_terms, term_constants, term_functions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.base import FactStore

__all__ = [
    "GroundingLimits",
    "GROUNDING_MATCHERS",
    "DEFAULT_GROUNDING_MATCHER",
    "herbrand_universe",
    "herbrand_base",
    "naive_ground",
    "relevant_ground",
    "stream_relevant_ground",
    "ground_program",
]

DEFAULT_MAX_GROUND_RULES = 2_000_000

#: Matchers accepted by :func:`relevant_ground`: ``"indexed"`` is the
#: semi-naive hash-join grounder, ``"scan"`` the original linear-scan
#: matcher kept as the differential oracle.
GROUNDING_MATCHERS = ("indexed", "scan")
DEFAULT_GROUNDING_MATCHER = "indexed"


@dataclass(frozen=True)
class GroundingLimits:
    """Resource limits applied during grounding.

    ``max_depth`` bounds compound-term nesting in the Herbrand universe;
    ``max_rules`` aborts the grounding when the instantiated program would
    exceed the given number of rules (protecting against accidental
    combinatorial blow-ups in user programs); ``max_seconds``, when set,
    aborts with :class:`~repro.exceptions.GroundingTimeout` once the
    grounder has spent that much wall-clock time (deadline-bound serving,
    benchmark budgets).
    """

    max_depth: int = 0
    max_rules: int = DEFAULT_MAX_GROUND_RULES
    max_seconds: float | None = None


def _grounding_meter(limits: GroundingLimits):
    """The budget meter one grounding run checks against.

    The legacy per-grounding ``limits.max_seconds`` starts a local
    :class:`~repro.resilience.BudgetMeter` chained to the ambient one (a
    solve-level :class:`~repro.resilience.Budget`, when active), so
    whichever deadline is tighter trips first; without a grounding-local
    deadline the ambient meter (or the no-op null meter) is used directly.
    Either way, a wall-clock trip inside grounding raises the legacy
    :class:`~repro.exceptions.GroundingTimeout`.
    """
    ambient = current_meter()
    if limits.max_seconds is not None:
        # The legacy contract admits max_seconds=0 as "already expired";
        # Budget requires a positive deadline, so clamp to one tick.
        seconds = max(limits.max_seconds, 1e-9)
        return Budget(max_seconds=seconds).start(parent=ambient)
    return ambient


def herbrand_universe(program: Program, max_depth: int = 0) -> list[Term]:
    """The ground terms constructible from the program's constants and
    function symbols, up to *max_depth* nesting.

    If the program mentions no constants at all, a single fresh constant
    ``u0`` is invented so that rules with variables still have a non-empty
    instantiation (the standard convention).
    """
    constants: list[Constant] = []
    functions: list[tuple[str, int]] = []
    seen_constants: set[Constant] = set()
    seen_functions: set[tuple[str, int]] = set()

    def collect_from_atom(atom: Atom) -> None:
        for arg in atom.args:
            for constant in term_constants(arg):
                if constant not in seen_constants:
                    seen_constants.add(constant)
                    constants.append(constant)
            for signature in term_functions(arg):
                if signature not in seen_functions:
                    seen_functions.add(signature)
                    functions.append(signature)

    for rule in program:
        collect_from_atom(rule.head)
        for literal in rule.body:
            collect_from_atom(literal.atom)

    if not constants:
        constants.append(Constant("u0"))
    return enumerate_ground_terms(constants, functions, max_depth)


def herbrand_base(
    program: Program,
    universe: Optional[Sequence[Term]] = None,
    predicates: Optional[Iterable[str]] = None,
    max_depth: int = 0,
) -> set[Atom]:
    """The Herbrand base: all ground atoms over the given predicates.

    By default the base is restricted to the IDB predicates, following the
    paper's convention that EDB relations are not mentioned in
    interpretations (Section 3.3).  Pass ``predicates`` explicitly to widen
    or narrow the base.
    """
    if universe is None:
        universe = herbrand_universe(program, max_depth)
    signatures = program.predicate_signatures()
    if predicates is None:
        wanted = program.idb_predicates()
    else:
        wanted = set(predicates)
    base: set[Atom] = set()
    for signature in signatures:
        if signature.name not in wanted:
            continue
        if signature.arity == 0:
            base.add(Atom(signature.name, ()))
            continue
        for combination in itertools.product(universe, repeat=signature.arity):
            base.add(Atom(signature.name, tuple(combination)))
    return base


def naive_ground(program: Program, limits: GroundingLimits | None = None) -> Program:
    """The literal Herbrand instantiation ``P_H`` of the program.

    Each rule is instantiated with every assignment of universe elements to
    its variables.  Raises :class:`GroundingError` when the result would
    exceed ``limits.max_rules``.
    """
    limits = limits or GroundingLimits()
    budget = _grounding_meter(limits)
    universe = herbrand_universe(program, limits.max_depth)
    ground_rules: list[Rule] = []
    for rule in program:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        if not variables:
            ground_rules.append(rule)
            continue
        count_estimate = len(universe) ** len(variables)
        if len(ground_rules) + count_estimate > limits.max_rules:
            raise GroundingError(
                f"naive grounding of rule '{rule}' would produce {count_estimate} "
                f"instances, exceeding the limit of {limits.max_rules}"
            )
        for combination in itertools.product(universe, repeat=len(variables)):
            binding = dict(zip(variables, combination))
            ground_rules.append(rule.substitute(binding))
            budget.tick("ground")
    return Program(ground_rules)


def _validate_matcher(matcher: str) -> None:
    if matcher not in GROUNDING_MATCHERS:
        choices = ", ".join(GROUNDING_MATCHERS)
        raise GroundingError(f"unknown grounding matcher {matcher!r}; expected one of: {choices}")


class _SplitRelation:
    """One relation's joint row space: the frozen base store's rows in
    ``[0, base_bound)`` followed by the run's overlay rows shifted up by
    ``base_bound`` — presented through the ``candidate_rows`` probe shape
    :func:`repro.datalog.joins.join_bindings` consumes."""

    __slots__ = ("store", "predicate", "arity", "base_bound", "overlay")

    def __init__(
        self,
        store: "FactStore",
        predicate: str,
        arity: int,
        base_bound: int,
        overlay: RelationStore,
    ):
        self.store = store
        self.predicate = predicate
        self.arity = arity
        self.base_bound = base_bound
        self.overlay = overlay

    def candidate_rows(
        self,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        bound = self.base_bound
        if lo < bound:
            yield from self.store.candidate_rows(
                self.predicate, self.arity, positions, key, lo, min(hi, bound)
            )
        if hi > bound:
            relation = self.overlay.relation(self.predicate, self.arity)
            if relation is not None:
                for sequence, row in relation.candidate_rows(
                    positions, key, max(lo - bound, 0), hi - bound
                ):
                    yield sequence + bound, row


class _EnvelopeSpace:
    """The envelope fixpoint's atom space over an optional live base store.

    Without a base this is exactly the per-run :class:`RelationStore` the
    grounder has always used.  With one, the base's rows (and its lazily
    built, *persistent* indexes) are probed in place — never copied or
    re-indexed — and only the atoms derived during this run land in the
    per-run overlay.  The base must not be mutated while the run's windows
    are live.
    """

    __slots__ = ("base", "overlay", "base_bounds", "_views")

    def __init__(self, base: "FactStore | None"):
        self.base = base
        self.overlay = RelationStore()
        self.base_bounds: dict[tuple[str, int], int] = dict(base.sizes()) if base else {}
        self._views: dict[tuple[str, int], _SplitRelation] = {}

    def add_atom(self, atom: Atom) -> bool:
        if self.base is not None and self.base.contains_atom(atom):
            return False
        return self.overlay.add_atom(atom)

    def __contains__(self, atom: Atom) -> bool:
        if self.base is not None and self.base.contains_atom(atom):
            return True
        return atom in self.overlay

    def sizes(self) -> dict[tuple[str, int], int]:
        sizes = dict(self.base_bounds)
        for key, relation in self.overlay.relations.items():
            sizes[key] = sizes.get(key, 0) + relation.sequence_bound
        return sizes

    def relation(self, predicate: str, arity: int):
        key = (predicate, arity)
        base_bound = self.base_bounds.get(key, 0)
        if not base_bound:
            return self.overlay.relation(predicate, arity)
        view = self._views.get(key)
        if view is None:
            view = self._views[key] = _SplitRelation(
                self.base, predicate, arity, base_bound, self.overlay
            )
        return view


def relevant_ground(
    program: Program,
    limits: GroundingLimits | None = None,
    matcher: str = DEFAULT_GROUNDING_MATCHER,
    store: "FactStore | None" = None,
) -> Program:
    """Instantiate rules only where their positive body is supportable.

    The over-approximation of derivable atoms is the minimum model of the
    *positive envelope* of the program (the Horn program obtained by erasing
    negative body literals), computed bottom-up to a fixpoint.  Rules are
    instantiated by matching their positive body literals against that set,
    threading the variable binding; safety guarantees that all variables
    end up bound.

    Ground negative literals are kept verbatim (even when their atom is
    outside the over-approximation and therefore underivable) so that the
    atoms the paper's examples mention as *false* still occur in the ground
    program and are reported in the computed models.  The resulting ground
    program has the same well-founded, stable, stratified, Horn and
    inflationary models (restricted to the occurring atoms) as the full
    Herbrand instantiation.  The Fitting semantics is the exception: it can
    leave *underivable* atoms undefined (their proof search never finitely
    fails), so :func:`repro.semantics.fitting.fitting_model` grounds naively
    by default.

    *matcher* selects the implementation (see the module docstring):
    ``"indexed"`` — the semi-naive hash-join grounder — or ``"scan"`` — the
    original linear-scan oracle.  Both produce the same rule set (the
    property suite asserts this), differing only in enumeration order.

    *store*, when given, supplies EDB facts from a live
    :class:`~repro.storage.FactStore` in addition to the program's own fact
    rules; the indexed matcher probes the store's indexes in place (see
    :func:`stream_relevant_ground`), the scan oracle materialises the
    store's facts into the program first.
    """
    _validate_matcher(matcher)
    if matcher == "scan":
        if store is not None:
            program = Program.union(store.as_program(), program)
        return _scan_relevant_ground(program, limits)
    return Program(stream_relevant_ground(program, limits, store=store))


def stream_relevant_ground(
    program: Program,
    limits: GroundingLimits | None = None,
    store: "FactStore | None" = None,
    recorder: Recorder | None = None,
) -> Iterator[Rule]:
    """Stream the relevant grounding incrementally (indexed matcher).

    Yields the ground rules of ``relevant_ground(program)`` one at a time,
    as the fused semi-naive envelope fixpoint derives them: facts first
    (sorted), then each rule instance the moment the delta round supplying
    its last positive body atom completes its join.  Consumers such as
    :func:`repro.core.context.build_context` use the stream to build their
    own indexes in the same pass instead of waiting for the full program.

    *store*, when given, is a live :class:`~repro.storage.FactStore` whose
    facts join the program's own fact rules as the EDB.  Its rows are
    probed **in place** through the store's bound-position indexes — the
    store is never copied into a per-run ``RelationStore``, and for the
    in-memory backend the indexes one run builds are reused by the next.
    The store must not be mutated while the stream is being consumed.

    *recorder*, when tracing (see :mod:`repro.obs`), accumulates the
    ``ground.rounds`` / ``ground.delta_atoms`` / ``ground.rules_emitted``
    counters — one tally per envelope round, never per row.
    """
    limits = limits or GroundingLimits()
    budget = _grounding_meter(limits)
    recorder = recorder if recorder is not None else NULL_RECORDER
    program.check_safety()

    seen: set[Rule] = set()
    emitted = 0

    space = _EnvelopeSpace(store)
    pending: list[Atom] = []
    pending_set: set[Atom] = set()

    def derive(atom: Atom) -> None:
        if atom not in pending_set and atom not in space:
            pending_set.add(atom)
            pending.append(atom)

    facts = set(program.fact_atoms())
    if store is not None:
        facts.update(store.facts())
    for fact in sorted(facts, key=str):
        rule = Rule(fact)
        if rule not in seen:
            seen.add(rule)
            emitted += 1
            yield rule
        # Facts already present in the base store are part of round 0's
        # delta windows by construction; `derive` skips them.
        derive(fact)

    decomposed: list[tuple[Rule, tuple[Atom, ...], tuple[tuple[str, int], ...]]] = []
    for rule in program.non_fact_rules():
        positive = tuple(lit.atom for lit in rule.body if lit.positive)
        signatures = tuple((atom.predicate, atom.arity) for atom in positive)
        decomposed.append((rule, positive, signatures))

    # Rules with no positive conjuncts are ground (safety) and fire exactly
    # once, seeding the envelope alongside the facts.
    for rule, positive, _ in decomposed:
        if positive:
            continue
        ground = _instantiate_rule(rule, {})
        if ground not in seen:
            seen.add(ground)
            emitted += 1
            if emitted > limits.max_rules:
                raise GroundingError(f"grounding exceeded the limit of {limits.max_rules} rules")
            yield ground
        derive(ground.head)

    # ------------------------------------------------------------------ #
    # Semi-naive envelope fixpoint fused with rule instantiation: the
    # round's delta is joined through the hash indexes, emitting each
    # ground rule exactly once, and newly derived heads become the next
    # delta.  Variant i pins conjunct i to the delta rows, conjuncts
    # before i to strictly older rows and conjuncts after i to all rows,
    # so no binding is enumerated twice.
    # ------------------------------------------------------------------ #
    # With a base store, round 0 must also sweep the base rows: old_sizes
    # starts all-zero, so the first round's delta windows cover them even
    # when no program fact added anything to the overlay.
    old_sizes: dict[tuple[str, int], int] = {}
    base_round = bool(space.base_bounds)
    while pending or base_round:
        base_round = False
        batch = pending
        pending = []
        for atom in batch:
            space.add_atom(atom)
        pending_set.clear()
        new_sizes = space.sizes()
        if recorder.enabled:
            recorder.count("ground.rounds")
            recorder.count("ground.delta_atoms", len(batch))

        for rule, positive, signatures in decomposed:
            if not positive:
                continue
            budget.check("ground")
            for i, delta_signature in enumerate(signatures):
                delta_lo = old_sizes.get(delta_signature, 0)
                delta_hi = new_sizes.get(delta_signature, 0)
                if delta_hi <= delta_lo:
                    continue
                windows = []
                for j, signature in enumerate(signatures):
                    if j < i:
                        windows.append((0, old_sizes.get(signature, 0)))
                    elif j == i:
                        windows.append((delta_lo, delta_hi))
                    else:
                        windows.append((0, new_sizes.get(signature, 0)))
                for binding in join_bindings(positive, windows, space, seed=i):
                    ground = _instantiate_rule(rule, binding)
                    if ground not in seen:
                        seen.add(ground)
                        emitted += 1
                        if emitted > limits.max_rules:
                            raise GroundingError(
                                f"grounding exceeded the limit of {limits.max_rules} rules"
                            )
                        yield ground
                    derive(ground.head)
                    budget.tick("ground")
        old_sizes = new_sizes
    if recorder.enabled:
        recorder.count("ground.rules_emitted", emitted)


def _instantiate_rule(rule: Rule, binding: dict[Variable, Term]) -> Rule:
    """Instantiate *rule* under *binding*, checking groundness as the old
    matcher did (defensive: safety has already been validated)."""
    head = rule.head.substitute(binding)
    if not head.is_ground:
        raise GroundingError(
            f"rule '{rule}' produced a non-ground head {head}; the rule is unsafe"
        )
    body: list[Literal] = []
    for lit in rule.body:
        ground_lit = lit.substitute(binding)
        if lit.negative and not ground_lit.is_ground:
            raise GroundingError(
                f"negative literal {lit} in rule '{rule}' is not ground "
                "after binding positive body variables; the rule is unsafe"
            )
        body.append(ground_lit)
    return Rule(head, tuple(body))


def _scan_relevant_ground(program: Program, limits: GroundingLimits | None = None) -> Program:
    """The original matcher: naive envelope fixpoint + linear-scan joins.

    Kept verbatim (modulo the ``(predicate, arity)`` fact index and the
    wall-clock budget) as the differential oracle for the indexed grounder.
    """
    from .unification import match_atom  # local import to avoid a cycle at import time

    limits = limits or GroundingLimits()
    budget = _grounding_meter(limits)
    program.check_safety()

    facts = set(program.fact_atoms())
    non_facts = program.non_fact_rules()

    # ------------------------------------------------------------------ #
    # 1. Over-approximate the derivable atoms with the positive envelope.
    # ------------------------------------------------------------------ #
    derivable: set[Atom] = set(facts)
    changed = True
    while changed:
        changed = False
        for rule in non_facts:
            budget.check("ground")
            positive = [lit.atom for lit in rule.body if lit.positive]
            for binding in _match_body(positive, derivable, match_atom):
                budget.tick("ground")
                head = rule.head.substitute(binding)
                if not head.is_ground:
                    raise GroundingError(
                        f"rule '{rule}' produced a non-ground head {head}; "
                        "the rule is unsafe"
                    )
                if head not in derivable:
                    derivable.add(head)
                    changed = True

    # ------------------------------------------------------------------ #
    # 2. Instantiate rules against the over-approximation.
    # ------------------------------------------------------------------ #
    ground_rules: list[Rule] = [Rule(fact) for fact in sorted(facts, key=str)]
    seen: set[Rule] = set(ground_rules)
    for rule in non_facts:
        budget.check("ground")
        positive = [lit.atom for lit in rule.body if lit.positive]
        for binding in _match_body(positive, derivable, match_atom):
            budget.tick("ground")
            head = rule.head.substitute(binding)
            body: list[Literal] = []
            for lit in rule.body:
                if lit.positive:
                    body.append(lit.substitute(binding))
                    continue
                ground_negative = lit.substitute(binding)
                if not ground_negative.is_ground:
                    raise GroundingError(
                        f"negative literal {lit} in rule '{rule}' is not ground "
                        "after binding positive body variables; the rule is unsafe"
                    )
                body.append(ground_negative)
            new_rule = Rule(head, tuple(body))
            if new_rule not in seen:
                seen.add(new_rule)
                ground_rules.append(new_rule)
            if len(ground_rules) > limits.max_rules:
                raise GroundingError(
                    f"grounding exceeded the limit of {limits.max_rules} rules"
                )
    return Program(ground_rules)


def ground_program(
    program: Program,
    limits: GroundingLimits | None = None,
    matcher: str = DEFAULT_GROUNDING_MATCHER,
) -> Program:
    """Ground *program*, returning it unchanged when it is already ground.

    This is the entry point the semantics modules use; it currently
    delegates to :func:`relevant_ground` with the given matcher.
    """
    if program.is_ground:
        return program
    return relevant_ground(program, limits, matcher=matcher)


def _match_body(atoms: Sequence[Atom], facts: set[Atom], match_atom) -> Iterable[dict]:
    """Yield every binding of the variables of *atoms* such that all atoms
    match some fact in *facts* (conjunctive matching, left to right)."""
    if not atoms:
        yield {}
        return
    # Index facts by (predicate, arity) once; bodies repeatedly probe the
    # same relations, and the full signature keeps a probe for p/2 from
    # wading through p/1 facts.
    by_signature: dict[tuple[str, int], list[Atom]] = {}
    for fact in facts:
        by_signature.setdefault((fact.predicate, fact.arity), []).append(fact)

    def extend(index: int, binding: dict) -> Iterable[dict]:
        if index == len(atoms):
            yield binding
            return
        pattern = atoms[index]
        for fact in by_signature.get((pattern.predicate, pattern.arity), ()):  # pragma: no branch
            extended = match_atom(pattern, fact, binding)
            if extended is not None:
                yield from extend(index + 1, extended)

    yield from extend(0, {})
