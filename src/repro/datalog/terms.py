"""Terms of the logic-programming language.

A *term* is either a :class:`Constant`, a :class:`Variable`, or a
:class:`Compound` term built from a function symbol applied to argument
terms (``f(X, g(a))``).  Terms are immutable, hashable value objects: two
terms compare equal when they are structurally identical.

The Herbrand universe of a program (Section 3 of the paper) is the set of
all *ground* terms — terms containing no variables — that can be built from
the constants and function symbols appearing in the program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Compound",
    "make_term",
    "term_depth",
    "term_constants",
    "term_functions",
    "term_variables",
]


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol such as ``a``, ``42`` or ``"hello"``.

    The payload may be a string, an integer, or any hashable Python value;
    integers and strings cover everything the paper's examples need.
    """

    value: object

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    @property
    def is_ground(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable.  By convention names start with an uppercase
    letter or an underscore, matching the paper's rule syntax."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    @property
    def is_ground(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Compound:
    """A compound term ``functor(arg1, ..., argN)`` with ``N >= 1``.

    Compound terms give the language function symbols; programs using them
    have an infinite Herbrand universe, which the grounder bounds with a
    configurable term-depth limit.
    """

    functor: str
    args: tuple["Term", ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("Compound terms need at least one argument; use Constant for atoms")
        object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({args})"

    def __repr__(self) -> str:
        return f"Compound({self.functor!r}, {self.args!r})"

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        return all(arg.is_ground for arg in self.args)


Term = Union[Constant, Variable, Compound]


def make_term(value: object) -> Term:
    """Coerce a plain Python value into a :class:`Term`.

    Strings beginning with an uppercase letter or ``_`` become variables,
    everything else becomes a constant.  Existing terms pass through
    unchanged.  This is the convenience entry point used by the programmatic
    builder API.
    """
    if isinstance(value, (Constant, Variable, Compound)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def term_variables(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in *term* (with repetition)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, Compound):
        for arg in term.args:
            yield from term_variables(arg)


def term_constants(term: Term) -> Iterator[Constant]:
    """Yield every constant occurring in *term* (with repetition)."""
    if isinstance(term, Constant):
        yield term
    elif isinstance(term, Compound):
        for arg in term.args:
            yield from term_constants(arg)


def term_functions(term: Term) -> Iterator[tuple[str, int]]:
    """Yield ``(functor, arity)`` for every function symbol in *term*."""
    if isinstance(term, Compound):
        yield (term.functor, term.arity)
        for arg in term.args:
            yield from term_functions(arg)


def term_depth(term: Term) -> int:
    """Return the nesting depth of *term*.

    Constants and variables have depth 0; ``f(a)`` has depth 1; ``f(g(a))``
    has depth 2.  The grounder uses this to bound Herbrand universes that
    would otherwise be infinite.
    """
    if isinstance(term, Compound):
        return 1 + max(term_depth(arg) for arg in term.args)
    return 0


def substitute_term(term: Term, binding: Mapping[Variable, Term]) -> Term:
    """Apply a variable binding to *term*, returning the substituted term."""
    if isinstance(term, Variable):
        return binding.get(term, term)
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(substitute_term(a, binding) for a in term.args))
    return term


def enumerate_ground_terms(
    constants: Iterable[Constant],
    functions: Iterable[tuple[str, int]],
    max_depth: int,
) -> list[Term]:
    """Enumerate all ground terms up to *max_depth* nesting.

    With no function symbols this is simply the constant set; with function
    symbols the result grows exponentially in *max_depth*, so callers should
    keep the bound small (the paper's experiments are function-free).
    """
    constants = list(dict.fromkeys(constants))
    functions = list(dict.fromkeys(functions))
    layers: list[list[Term]] = [list(constants)]
    all_terms: list[Term] = list(constants)
    for _ in range(max_depth):
        previous: list[Term] = all_terms
        new_layer: list[Term] = []
        for functor, arity in functions:
            new_layer.extend(_combinations(functor, arity, previous))
        # Keep only genuinely new terms so repeated layers converge.
        fresh = [t for t in new_layer if t not in set(all_terms)]
        if not fresh:
            break
        layers.append(fresh)
        all_terms.extend(fresh)
    return all_terms


def _combinations(functor: str, arity: int, pool: list[Term]) -> Iterator[Compound]:
    """Yield all compound terms ``functor(t1..tN)`` with arguments in *pool*."""
    if arity == 0:
        return
    indices = [0] * arity
    if not pool:
        return
    while True:
        yield Compound(functor, tuple(pool[i] for i in indices))
        position = arity - 1
        while position >= 0:
            indices[position] += 1
            if indices[position] < len(pool):
                break
            indices[position] = 0
            position -= 1
        if position < 0:
            return
