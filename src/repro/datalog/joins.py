"""Hash-join relations for bottom-up grounding.

The grounder's inner loop is a conjunctive join: given a rule body
``b1, ..., bn`` and a growing set of derivable ground atoms, enumerate
every variable binding under which all conjuncts are satisfied.  The
original matcher scanned the whole per-predicate fact list for every
conjunct; this module provides the three ingredients production bottom-up
engines (soufflé / clingo-style) use instead:

* :class:`Relation` — the ground facts of one ``(predicate, arity)``
  signature, stored in insertion order with **lazy hash indexes keyed on
  bound-argument positions**.  A probe with ``k`` bound argument positions
  builds (once, then maintains incrementally) a dict from the projected
  key tuple to the matching row ids, so subsequent probes cost O(1) plus
  the matches instead of a scan.
* **Delta windows** — every row carries its insertion sequence number, so
  a probe can be restricted to rows added before / within / up to a round
  boundary.  This is what makes semi-naive evaluation cheap: the classic
  rewriting evaluates, per rule and round, one variant per positive
  conjunct with that conjunct ranging over the *delta* rows, earlier
  conjuncts over strictly older rows, and later conjuncts over everything
  — enumerating every new binding exactly once.
* **Greedy join ordering** (:func:`greedy_join_order`) — conjuncts are
  reordered so the next atom joined is the one with the most bound
  argument positions (breaking ties toward the smallest row window),
  instead of fixed left-to-right order.

:func:`join_bindings` glues the three together and is the only entry point
the grounder needs.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from .atoms import Atom
from .terms import Term, Variable, term_variables
from .unification import Substitution, binding_pattern, match_projected

__all__ = [
    "Relation",
    "RelationStore",
    "greedy_join_order",
    "join_bindings",
]

Window = tuple[int, int]


class Relation:
    """The ground facts of one ``(predicate, arity)`` signature.

    Rows are argument tuples kept in insertion order; ``row_ids`` maps a
    row to its sequence number (doubling as the duplicate filter), and
    ``indexes`` holds one hash index per binding pattern that has actually
    been probed.  Indexes are built lazily from the current rows and then
    maintained incrementally on every :meth:`add`, so the cost of an index
    is only paid for patterns the workload's rules really use.

    Removal (used by the long-lived :class:`repro.storage.MemoryStore`,
    never by a grounding run) leaves a ``None`` tombstone in ``rows`` so
    the sequence numbers of surviving rows — which delta windows and index
    posting lists are keyed on — stay valid; probes skip tombstones, and
    :meth:`compact` rebuilds once the garbage dominates.
    """

    __slots__ = ("predicate", "arity", "rows", "row_ids", "indexes", "dead", "_index_lock")

    def __init__(self, predicate: str, arity: int):
        self.predicate = predicate
        self.arity = arity
        self.rows: list[Optional[tuple[Term, ...]]] = []
        self.row_ids: dict[tuple[Term, ...], int] = {}
        self.indexes: dict[tuple[int, ...], dict[tuple[Term, ...], list[int]]] = {}
        self.dead = 0
        # Serialises index *registration* against row insertion: a reader
        # thread lazily building an index while the single writer appends
        # could otherwise register a posting list missing the new row (the
        # writer's maintenance loop only sees already-registered indexes).
        # Probes take the lock-free fast path once the index exists.
        self._index_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.rows) - self.dead

    def __contains__(self, args: tuple[Term, ...]) -> bool:
        return args in self.row_ids

    @property
    def sequence_bound(self) -> int:
        """Exclusive upper bound on row sequence numbers (tombstones
        included, so the bound is monotone under removal)."""
        return len(self.rows)

    def add(self, args: tuple[Term, ...]) -> bool:
        """Append a row unless present; returns True when the row is new.

        New rows are appended to every index already built, keeping lazy
        indexes consistent without rebuilds.
        """
        if args in self.row_ids:
            return False
        with self._index_lock:
            sequence = len(self.rows)
            self.rows.append(args)
            self.row_ids[args] = sequence
            for positions, index in self.indexes.items():
                key = tuple(args[p] for p in positions)
                index.setdefault(key, []).append(sequence)
        return True

    def remove(self, args: tuple[Term, ...]) -> bool:
        """Tombstone a row if present; returns True when a row was removed."""
        sequence = self.row_ids.pop(args, None)
        if sequence is None:
            return False
        self.rows[sequence] = None
        self.dead += 1
        return True

    def compact(self) -> None:
        """Drop tombstones, renumbering the surviving rows.

        Invalidates every outstanding sequence number, so callers must only
        compact between grounding runs — never while delta windows over
        this relation are live.
        """
        if not self.dead:
            return
        with self._index_lock:
            survivors = [args for args in self.rows if args is not None]
            probed = tuple(self.indexes)
            self.rows = survivors
            self.row_ids = {args: sequence for sequence, args in enumerate(survivors)}
            self.dead = 0
            self.indexes = {
                positions: self._build_index(positions) for positions in probed
            }

    def _build_index(
        self, positions: tuple[int, ...]
    ) -> dict[tuple[Term, ...], list[int]]:
        index: dict[tuple[Term, ...], list[int]] = {}
        for sequence, args in enumerate(self.rows):
            if args is None:
                continue
            key = tuple(args[p] for p in positions)
            index.setdefault(key, []).append(sequence)
        return index

    def ensure_index(
        self, positions: tuple[int, ...]
    ) -> dict[tuple[Term, ...], list[int]]:
        """The hash index keyed on the given argument positions, built on
        first use from the current rows.

        The existing-index fast path is lock-free; building takes the
        relation's index lock so a concurrent writer cannot slip a row in
        between the scan and the registration.
        """
        index = self.indexes.get(positions)
        if index is None:
            with self._index_lock:
                index = self.indexes.get(positions)
                if index is None:
                    index = self._build_index(positions)
                    self.indexes[positions] = index
        return index

    def candidates(
        self,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[int]:
        """Row ids in ``[lo, hi)`` whose projection onto *positions* is *key*.

        Three probe shapes: all positions bound is a plain membership test
        on ``row_ids``; no position bound walks the whole window; otherwise
        the lazy hash index is consulted and its (ascending) posting list
        cut to the window with a bisect.  Tombstoned rows never surface.
        """
        rows = self.rows
        if len(positions) == self.arity:
            sequence = self.row_ids.get(key)
            if sequence is not None and lo <= sequence < hi:
                yield sequence
            return
        if not positions:
            for sequence in range(lo, min(hi, len(rows))):
                if rows[sequence] is not None:
                    yield sequence
            return
        postings = self.ensure_index(positions).get(key)
        if not postings:
            return
        start = bisect_left(postings, lo) if lo else 0
        for position in range(start, len(postings)):
            sequence = postings[position]
            if sequence >= hi:
                break
            if rows[sequence] is not None:
                yield sequence

    def candidate_rows(
        self,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        """:meth:`candidates` paired with the rows themselves — the probe
        shape shared with :class:`repro.storage.FactStore` backends, which
        the join enumerator consumes."""
        rows = self.rows
        for sequence in self.candidates(positions, key, lo, hi):
            yield sequence, rows[sequence]

    def statistics(self) -> dict[str, int]:
        return {
            "rows": len(self),
            "indexes": len(self.indexes),
            "index_entries": sum(len(ix) for ix in self.indexes.values()),
        }


class RelationStore:
    """All relations of one grounding run, keyed on ``(predicate, arity)``.

    Keying on the full signature (rather than the predicate name alone)
    means a probe for ``p/2`` never wades through ``p/1`` facts.
    """

    __slots__ = ("relations",)

    def __init__(self) -> None:
        self.relations: dict[tuple[str, int], Relation] = {}

    def relation(self, predicate: str, arity: int) -> Optional[Relation]:
        return self.relations.get((predicate, arity))

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom; returns True when it is new."""
        key = (atom.predicate, atom.arity)
        relation = self.relations.get(key)
        if relation is None:
            relation = self.relations[key] = Relation(atom.predicate, atom.arity)
        return relation.add(atom.args)

    def remove_atom(self, atom: Atom) -> bool:
        """Remove a ground atom (tombstoning its row); True when present."""
        relation = self.relations.get((atom.predicate, atom.arity))
        return relation is not None and relation.remove(atom.args)

    def __contains__(self, atom: Atom) -> bool:
        relation = self.relations.get((atom.predicate, atom.arity))
        return relation is not None and atom.args in relation

    def sizes(self) -> dict[tuple[str, int], int]:
        """Sequence bound per relation — a round boundary snapshot.  Equal
        to the row count under the grounder's add-only usage."""
        return {key: relation.sequence_bound for key, relation in self.relations.items()}

    def statistics(self) -> dict[str, int]:
        return {
            "relations": len(self.relations),
            "rows": sum(len(r) for r in self.relations.values()),
            "indexes": sum(len(r.indexes) for r in self.relations.values()),
        }


def greedy_join_order(
    conjuncts: Sequence[Atom],
    windows: Sequence[Window],
    seed: Optional[int] = None,
    bound: Iterable[Variable] = (),
) -> list[int]:
    """Order the conjuncts for joining, most-bound-first.

    Starting from the *seed* conjunct (the delta atom in semi-naive
    variants, iterated first so every enumerated binding touches the
    delta), repeatedly pick the conjunct whose arguments have the most
    positions fully determined by the variables bound so far, breaking
    ties toward the smaller candidate row window (the per-round
    selectivity bound) and then toward the leftmost conjunct.  Returns
    the conjunct indexes in join order.
    """
    remaining = list(range(len(conjuncts)))
    bound_vars: set[Variable] = set(bound)
    order: list[int] = []

    def admit(index: int) -> None:
        order.append(index)
        remaining.remove(index)
        bound_vars.update(conjuncts[index].variables())

    if seed is not None:
        admit(seed)

    def score(index: int) -> tuple[int, int, int]:
        atom = conjuncts[index]
        bound_positions = sum(
            1
            for arg in atom.args
            if all(variable in bound_vars for variable in term_variables(arg))
        )
        lo, hi = windows[index]
        return (bound_positions, lo - hi, -index)

    while remaining:
        admit(max(remaining, key=score))
    return order


def join_bindings(
    conjuncts: Sequence[Atom],
    windows: Sequence[Window],
    store: RelationStore,
    seed: Optional[int] = None,
    binding: Optional[Mapping[Variable, Term]] = None,
) -> Iterator[Substitution]:
    """Enumerate every binding satisfying all conjuncts within their windows.

    Each conjunct ``i`` ranges over the rows ``windows[i] = (lo, hi)`` of
    its relation.  The join order is chosen greedily (seeded on the delta
    conjunct when given); each step extracts the conjunct's binding
    pattern under the bindings accumulated so far, probes the matching
    hash index, and matches the remaining argument positions to extend the
    binding.  Yielded substitutions are independent dicts.

    *store* need not be a :class:`RelationStore`: any object whose
    ``relation(predicate, arity)`` returns ``None`` or a relation view with
    a :meth:`Relation.candidate_rows`-shaped probe works — this is how the
    grounder joins a live :class:`repro.storage.FactStore` EDB and its
    per-run overlay of derived atoms through one enumerator.
    """
    order = greedy_join_order(conjuncts, windows, seed, binding.keys() if binding else ())
    count = len(order)
    initial: Substitution = dict(binding) if binding else {}

    def extend(step: int, current: Substitution) -> Iterator[Substitution]:
        if step == count:
            yield current
            return
        index = order[step]
        pattern = conjuncts[index]
        lo, hi = windows[index]
        if hi <= lo:
            return
        relation = store.relation(pattern.predicate, pattern.arity)
        if relation is None:
            return
        positions, args = binding_pattern(pattern, current)
        key = tuple(args[p] for p in positions)
        if len(positions) == pattern.arity:
            # Fully bound probe: a membership test, no new bindings.
            for _ in relation.candidate_rows(positions, key, lo, hi):
                yield from extend(step + 1, current)
            return
        free = tuple(p for p in range(pattern.arity) if p not in positions)
        for _, row in relation.candidate_rows(positions, key, lo, hi):
            extended = match_projected(args, row, free, current)
            if extended is not None:
                yield from extend(step + 1, extended)

    yield from extend(0, initial)
