"""Extensional databases (EDB).

From the deductive-database point of view (Section 2.5 of the paper) a
logic program defines a mapping from EDB instances to IDB instances.  This
module provides the :class:`Database` container for EDB relations, so that
the same rule set can be evaluated against different fact bases — which is
exactly how the benchmark harness sweeps over workloads.

Since the storage redesign, :class:`Database` is a thin façade over a
:class:`~repro.storage.FactStore` (a fresh in-memory
:class:`~repro.storage.MemoryStore` by default — pass ``store=`` to front
an existing backend, including a durable
:class:`~repro.storage.SqliteStore`).  The façade keeps the historical
name-keyed convenience surface; underneath, relations are keyed on the
full ``(predicate, arity)`` signature, so same-name/different-arity
relations never collide, reads never mutate (the old ``defaultdict``
container inserted empty relations on lookup miss), and relations emptied
by ``remove`` drop out of :meth:`relations` instead of lingering.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..storage.base import FactStore
from ..storage.memory import MemoryStore
from .atoms import Atom
from .rules import Program, Rule
from .terms import Term

__all__ = ["Database"]


class Database:
    """A set of EDB facts, organised per relation.

    Tuples are stored as tuples of ground :class:`Term`.  Plain Python
    values are coerced to constants on insertion, so ``db.add("edge", 1, 2)``
    works directly.

    Parameters
    ----------
    store:
        The :class:`~repro.storage.FactStore` backend to front.  Defaults
        to a fresh :class:`~repro.storage.MemoryStore`; the solver probes
        this store's indexes directly when a database is passed to
        :func:`repro.engine.solver.solve`.
    """

    __slots__ = ("_store",)

    def __init__(self, store: Optional[FactStore] = None):
        self._store = store if store is not None else MemoryStore()

    @property
    def store(self) -> FactStore:
        """The backing :class:`~repro.storage.FactStore`."""
        return self._store

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        for fact in facts:
            database.add_atom(fact)
        return database

    @classmethod
    def from_tuples(cls, relations: Mapping[str, Iterable[Sequence[object]]]) -> "Database":
        """Build a database from ``{"edge": [(1, 2), (2, 3)], ...}``."""
        database = cls()
        for name, tuples in relations.items():
            for row in tuples:
                database.add(name, *row)
        return database

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, relation: str, *values: object) -> None:
        """Insert a tuple into a relation, coercing values to constants."""
        self._store.add(relation, *values)

    def add_atom(self, fact: Atom) -> None:
        """Insert a ground atom as a fact."""
        self._store.add_atom(fact)

    def remove(self, relation: str, *values: object) -> None:
        """Remove a tuple if present (no error if absent)."""
        self._store.remove(relation, *values)

    def remove_atom(self, fact: Atom) -> None:
        """Remove a ground atom if present (no error if absent).

        Unlike :meth:`remove` this takes the argument terms verbatim, so
        compound terms survive the round trip with :meth:`add_atom`.
        """
        self._store.remove_atom(fact)

    # ------------------------------------------------------------------ #
    # Queries (non-mutating: lookups of unknown relations change nothing)
    # ------------------------------------------------------------------ #
    def relations(self) -> set[str]:
        return self._store.relation_names()

    def tuples(self, relation: str) -> set[tuple[Term, ...]]:
        found: set[tuple[Term, ...]] = set()
        for name, arity in self._store.signatures():
            if name == relation:
                found.update(self._store.tuples(name, arity))
        return found

    def values(self, relation: str) -> set[tuple[object, ...]]:
        """Tuples of a relation with constants unwrapped to Python values."""
        return self._store.values(relation)

    def contains(self, relation: str, *values: object) -> bool:
        return self._store.contains(relation, *values)

    def contains_atom(self, fact: Atom) -> bool:
        """Membership test for a ground atom (argument terms taken verbatim)."""
        return self._store.contains_atom(fact)

    def facts(self) -> Iterator[Atom]:
        """Yield every fact as a ground atom."""
        return self._store.facts()

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Atom]:
        return self.facts()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._store.contents() == other._store.contents()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({len(self)} facts over {type(self._store).__name__})"

    # ------------------------------------------------------------------ #
    # Program integration
    # ------------------------------------------------------------------ #
    def as_program(self) -> Program:
        """Return the facts as a program of fact rules."""
        return Program(Rule(fact) for fact in self.facts())

    def attach(self, rules: Program) -> Program:
        """Combine these facts with an IDB rule set into one program."""
        return Program.union(self.as_program(), rules)

    def constants(self) -> set[Term]:
        """Every constant appearing in some stored tuple."""
        return self._store.constants()
