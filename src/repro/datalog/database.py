"""Extensional databases (EDB).

From the deductive-database point of view (Section 2.5 of the paper) a
logic program defines a mapping from EDB instances to IDB instances.  This
module provides the :class:`Database` container for EDB relations, so that
the same rule set can be evaluated against different fact bases — which is
exactly how the benchmark harness sweeps over workloads.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import NotGroundError
from .atoms import Atom
from .rules import Program, Rule
from .terms import Constant, Term

__all__ = ["Database"]


@dataclass
class Database:
    """A set of EDB facts, organised per relation.

    Tuples are stored as tuples of ground :class:`Term`.  Plain Python
    values are coerced to constants on insertion, so ``db.add("edge", 1, 2)``
    works directly.
    """

    _relations: dict[str, set[tuple[Term, ...]]] = field(default_factory=lambda: defaultdict(set))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        for fact in facts:
            database.add_atom(fact)
        return database

    @classmethod
    def from_tuples(cls, relations: Mapping[str, Iterable[Sequence[object]]]) -> "Database":
        """Build a database from ``{"edge": [(1, 2), (2, 3)], ...}``."""
        database = cls()
        for name, tuples in relations.items():
            for row in tuples:
                database.add(name, *row)
        return database

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, relation: str, *values: object) -> None:
        """Insert a tuple into a relation, coercing values to constants."""
        row = tuple(value if isinstance(value, (Constant,)) else Constant(value) for value in values)
        self._relations[relation].add(row)

    def add_atom(self, fact: Atom) -> None:
        """Insert a ground atom as a fact."""
        if not fact.is_ground:
            raise NotGroundError(f"EDB fact {fact} is not ground")
        self._relations[fact.predicate].add(fact.args)

    def remove(self, relation: str, *values: object) -> None:
        """Remove a tuple if present (no error if absent)."""
        row = tuple(value if isinstance(value, (Constant,)) else Constant(value) for value in values)
        self._relations.get(relation, set()).discard(row)

    def remove_atom(self, fact: Atom) -> None:
        """Remove a ground atom if present (no error if absent).

        Unlike :meth:`remove` this takes the argument terms verbatim, so
        compound terms survive the round trip with :meth:`add_atom`.
        """
        self._relations.get(fact.predicate, set()).discard(fact.args)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def relations(self) -> set[str]:
        return {name for name, rows in self._relations.items() if rows}

    def tuples(self, relation: str) -> set[tuple[Term, ...]]:
        return set(self._relations.get(relation, set()))

    def values(self, relation: str) -> set[tuple[object, ...]]:
        """Tuples of a relation with constants unwrapped to Python values."""
        return {
            tuple(term.value if isinstance(term, Constant) else term for term in row)
            for row in self._relations.get(relation, set())
        }

    def contains(self, relation: str, *values: object) -> bool:
        row = tuple(value if isinstance(value, (Constant,)) else Constant(value) for value in values)
        return row in self._relations.get(relation, set())

    def contains_atom(self, fact: Atom) -> bool:
        """Membership test for a ground atom (argument terms taken verbatim)."""
        return fact.args in self._relations.get(fact.predicate, set())

    def facts(self) -> Iterator[Atom]:
        """Yield every fact as a ground atom."""
        for name, rows in self._relations.items():
            for row in rows:
                yield Atom(name, row)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __iter__(self) -> Iterator[Atom]:
        return self.facts()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return {k: v for k, v in self._relations.items() if v} == {
            k: v for k, v in other._relations.items() if v
        }

    # ------------------------------------------------------------------ #
    # Program integration
    # ------------------------------------------------------------------ #
    def as_program(self) -> Program:
        """Return the facts as a program of fact rules."""
        return Program(Rule(fact) for fact in self.facts())

    def attach(self, rules: Program) -> Program:
        """Combine these facts with an IDB rule set into one program."""
        return Program.union(self.as_program(), rules)

    def constants(self) -> set[Term]:
        """Every constant appearing in some stored tuple."""
        result: set[Term] = set()
        for rows in self._relations.values():
            for row in rows:
                result.update(row)
        return result
