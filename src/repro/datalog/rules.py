"""Rules and programs.

A *normal rule* (Definition 3.1 of the paper) has an atom as its head and a
conjunction of literals as its body::

    wins(X) :- move(X, Y), not wins(Y).

A *fact* is a rule with a ground head and an empty body.  A *normal logic
program* is a finite set of normal rules.  :class:`Program` also records the
EDB/IDB split (Section 2.5): a predicate is extensional (EDB) when every
rule for it is a fact, and intensional (IDB) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import NotGroundError, SafetyError
from .atoms import Atom, Literal, Predicate
from .terms import Term, Variable

__all__ = ["Rule", "Program"]


@dataclass(frozen=True)
class Rule:
    """A normal rule ``head :- body``.

    The body is stored as a tuple of literals; an empty body makes the rule
    a fact when the head is ground.
    """

    head: Atom
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {self.body!r})"

    # ------------------------------------------------------------------ #
    # Structural queries
    # ------------------------------------------------------------------ #
    @property
    def is_fact(self) -> bool:
        """True when the rule has no body and a ground head."""
        return not self.body and self.head.is_ground

    @property
    def is_ground(self) -> bool:
        return self.head.is_ground and all(lit.is_ground for lit in self.body)

    @property
    def is_definite(self) -> bool:
        """True when every body literal is positive (a Horn rule)."""
        return all(lit.positive for lit in self.body)

    def positive_body(self) -> tuple[Literal, ...]:
        """The positive literals of the body."""
        return tuple(lit for lit in self.body if lit.positive)

    def negative_body(self) -> tuple[Literal, ...]:
        """The negative literals of the body."""
        return tuple(lit for lit in self.body if lit.negative)

    def variables(self) -> set[Variable]:
        """All variables occurring anywhere in the rule."""
        result = set(self.head.variables())
        for lit in self.body:
            result.update(lit.variables())
        return result

    def head_variables(self) -> set[Variable]:
        return set(self.head.variables())

    def body_predicates(self) -> set[str]:
        return {lit.predicate for lit in self.body}

    def substitute(self, binding: Mapping[Variable, Term]) -> "Rule":
        """Instantiate the rule under a variable binding."""
        return Rule(
            self.head.substitute(binding),
            tuple(lit.substitute(binding) for lit in self.body),
        )

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` unless the rule is range-restricted.

        Safety requires every variable of the head and of each negative body
        literal to occur in at least one positive body literal; this is the
        standard condition that makes the grounding finite relative to the
        active domain.
        """
        positive_vars: set[Variable] = set()
        for lit in self.positive_body():
            positive_vars.update(lit.variables())
        unsafe = {v for v in self.head.variables() if v not in positive_vars}
        for lit in self.negative_body():
            unsafe.update(v for v in lit.variables() if v not in positive_vars)
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise SafetyError(f"rule '{self}' is unsafe: variable(s) {names} "
                              "do not occur in any positive body literal")


class Program:
    """A normal logic program: an ordered collection of :class:`Rule` objects.

    The program exposes the EDB/IDB split, per-predicate rule indexing, and
    convenience constructors used throughout the library.  Programs are
    conceptually immutable; :meth:`with_facts` and :meth:`with_rules` return
    new programs.
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: tuple[Rule, ...] = tuple(rules)
        self._by_head: dict[str, tuple[Rule, ...]] = {}
        by_head: dict[str, list[Rule]] = {}
        for rule in self._rules:
            by_head.setdefault(rule.head.predicate, []).append(rule)
        self._by_head = {name: tuple(rs) for name, rs in by_head.items()}

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return set(self._rules) == set(other._rules)

    def __hash__(self) -> int:
        return hash(frozenset(self._rules))

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    def __repr__(self) -> str:
        return f"Program({len(self._rules)} rules)"

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    # ------------------------------------------------------------------ #
    # Predicate structure
    # ------------------------------------------------------------------ #
    def predicates(self) -> set[str]:
        """All predicate names mentioned anywhere in the program."""
        result: set[str] = set()
        for rule in self._rules:
            result.add(rule.head.predicate)
            result.update(rule.body_predicates())
        return result

    def predicate_signatures(self) -> set[Predicate]:
        """All ``name/arity`` signatures mentioned in the program."""
        result: set[Predicate] = set()
        for rule in self._rules:
            result.add(rule.head.signature)
            result.update(lit.signature for lit in rule.body)
        return result

    def head_predicates(self) -> set[str]:
        """Predicates that appear in some rule head."""
        return set(self._by_head)

    def edb_predicates(self) -> set[str]:
        """Extensional predicates: every rule for them is a fact, or they
        never occur in a head at all (pure input relations)."""
        heads = self.head_predicates()
        edb = {p for p in self.predicates() if p not in heads}
        for predicate, rules in self._by_head.items():
            if all(rule.is_fact for rule in rules):
                edb.add(predicate)
        return edb

    def idb_predicates(self) -> set[str]:
        """Intensional predicates: defined by at least one non-fact rule."""
        return {
            predicate
            for predicate, rules in self._by_head.items()
            if any(not rule.is_fact for rule in rules)
        }

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose head predicate is *predicate* (possibly empty)."""
        return self._by_head.get(predicate, ())

    def facts(self) -> tuple[Rule, ...]:
        return tuple(rule for rule in self._rules if rule.is_fact)

    def fact_atoms(self) -> set[Atom]:
        """The set of ground atoms asserted as facts."""
        return {rule.head for rule in self._rules if rule.is_fact}

    def non_fact_rules(self) -> tuple[Rule, ...]:
        return tuple(rule for rule in self._rules if not rule.is_fact)

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #
    @property
    def is_ground(self) -> bool:
        return all(rule.is_ground for rule in self._rules)

    @property
    def is_definite(self) -> bool:
        """True when the program is Horn: no negative body literals."""
        return all(rule.is_definite for rule in self._rules)

    @property
    def is_propositional(self) -> bool:
        """True when every atom has arity zero."""
        for rule in self._rules:
            if rule.head.arity:
                return False
            if any(lit.atom.arity for lit in rule.body):
                return False
        return True

    def check_safety(self) -> None:
        """Check every rule for safety; raise :class:`SafetyError` on the
        first violation."""
        for rule in self._rules:
            rule.check_safety()

    def require_ground(self) -> None:
        """Raise :class:`NotGroundError` unless the program is ground."""
        if not self.is_ground:
            offending = next(rule for rule in self._rules if not rule.is_ground)
            raise NotGroundError(f"program is not ground; e.g. rule '{offending}'")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        """Return a new program extended with *rules*."""
        return Program(self._rules + tuple(rules))

    def with_facts(self, atoms: Iterable[Atom]) -> "Program":
        """Return a new program extended with the given ground atoms as facts."""
        new_rules = []
        for fact in atoms:
            if not fact.is_ground:
                raise NotGroundError(f"fact {fact} is not ground")
            new_rules.append(Rule(fact))
        return self.with_rules(new_rules)

    def without_predicates(self, predicates: set[str]) -> "Program":
        """Return a new program dropping every rule whose head predicate is
        in *predicates*."""
        return Program(r for r in self._rules if r.head.predicate not in predicates)

    def restricted_to(self, predicates: set[str]) -> "Program":
        """Return a new program keeping only rules whose head predicate is in
        *predicates*."""
        return Program(r for r in self._rules if r.head.predicate in predicates)

    @classmethod
    def from_rules(cls, *rules: Rule) -> "Program":
        return cls(rules)

    @classmethod
    def union(cls, *programs: "Program") -> "Program":
        combined: list[Rule] = []
        for program in programs:
            combined.extend(program.rules)
        return cls(combined)

    # ------------------------------------------------------------------ #
    # Statistics (used by benchmark reporting)
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict[str, int]:
        """Summary counts used in benchmark output and documentation."""
        return {
            "rules": len(self._rules),
            "facts": len(self.facts()),
            "predicates": len(self.predicates()),
            "idb_predicates": len(self.idb_predicates()),
            "edb_predicates": len(self.edb_predicates()),
            "negative_literals": sum(
                1 for rule in self._rules for lit in rule.body if lit.negative
            ),
        }
