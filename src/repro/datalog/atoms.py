"""Atoms and literals.

An *atom* (atomic formula) is a predicate symbol applied to a tuple of
terms, e.g. ``edge(X, 2)``.  A *literal* is an atom or its negation; the
paper writes negation as ``¬`` and the concrete syntax of this library uses
``not`` (``not edge(X, 2)``).

Sets of ground atoms represent the positive part of an interpretation; sets
of negative literals (the ``Ĩ`` of the paper, Section 3.1) represent sets of
negative conclusions.  Helper functions on such sets — complementation and
conjugation (Definition 3.2) — live in :mod:`repro.fixpoint.lattice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .terms import Constant, Term, Variable, make_term, substitute_term, term_variables

__all__ = ["Predicate", "Atom", "Literal", "atom", "pos", "neg"]


@dataclass(frozen=True, slots=True)
class Predicate:
    """A predicate symbol together with its arity, e.g. ``edge/2``."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __call__(self, *args: object) -> "Atom":
        """Build an atom of this predicate: ``edge(1, 2)``."""
        if len(args) != self.arity:
            raise ValueError(
                f"predicate {self} applied to {len(args)} arguments"
            )
        return Atom(self.name, tuple(make_term(a) for a in args))


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(t1, ..., tN)``.

    Propositional atoms are modelled as atoms of arity zero, e.g. ``p()``;
    their textual form omits the parentheses.

    Atoms are the keys of every index and interpretation in the engine, so
    the structural hash is computed once and cached (``0`` doubles as the
    not-yet-computed sentinel; real hashes are remapped off it).
    """

    predicate: str
    args: tuple[Term, ...] = ()
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __hash__(self) -> int:
        value = self._hash
        if value == 0:
            value = hash((self.predicate, self.args)) or 1
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Predicate:
        """The ``name/arity`` predicate signature of this atom."""
        return Predicate(self.predicate, self.arity)

    @property
    def is_ground(self) -> bool:
        return all(arg.is_ground for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, with repetition."""
        for arg in self.args:
            yield from term_variables(arg)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable binding and return the instantiated atom."""
        if not self.args:
            return self
        return Atom(self.predicate, tuple(substitute_term(a, binding) for a in self.args))

    def negate(self) -> "Literal":
        return Literal(self, positive=False)

    def as_literal(self) -> "Literal":
        return Literal(self, positive=True)


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom or a negated atom.

    ``Literal(a, positive=True)`` is the atom itself; ``positive=False`` is
    its negation-as-failure literal ``not a``.
    """

    atom: Atom
    positive: bool = True

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"

    def __repr__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"Literal({sign}{self.atom})"

    @property
    def negative(self) -> bool:
        return not self.positive

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def signature(self) -> Predicate:
        return self.atom.signature

    @property
    def is_ground(self) -> bool:
        return self.atom.is_ground

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()

    def substitute(self, binding: Mapping[Variable, Term]) -> "Literal":
        return Literal(self.atom.substitute(binding), self.positive)

    def complement(self) -> "Literal":
        """The literal with opposite polarity on the same atom."""
        return Literal(self.atom, not self.positive)


def atom(predicate: str, *args: object) -> Atom:
    """Convenience constructor: ``atom("edge", 1, "X")`` -> ``edge(1, X)``.

    Plain Python values are coerced with :func:`repro.datalog.terms.make_term`
    (capitalised strings become variables).
    """
    return Atom(predicate, tuple(make_term(a) for a in args))


def pos(predicate: str, *args: object) -> Literal:
    """Build a positive literal."""
    return Literal(atom(predicate, *args), positive=True)


def neg(predicate: str, *args: object) -> Literal:
    """Build a negative literal (``not predicate(args)``)."""
    return Literal(atom(predicate, *args), positive=False)


def ground_atom(predicate: str, *values: object) -> Atom:
    """Build a ground atom; every argument is treated as a constant even if
    it is a capitalised string."""
    return Atom(predicate, tuple(Constant(v) for v in values))


def atoms_of_predicate(atoms: Sequence[Atom], predicate: str) -> list[Atom]:
    """Filter *atoms* down to those of the given predicate name."""
    return [a for a in atoms if a.predicate == predicate]
