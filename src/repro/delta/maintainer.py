"""Atom-level delta maintenance: counting and DRed over the condensation.

The incremental engine of :mod:`repro.session.incremental` invalidates at
*component* granularity: a changed fact re-solves every SCC with a
directed path from it, even when the change cannot move a single verdict
(a redundant edge, a duplicate support, a fact asserted over an
already-true atom).  Under sustained assert/retract churn that is the
wrong granularity — the standard incremental-Datalog remedy is to keep
per-derivation state and push *differences* instead:

* **counting** — for non-recursive derivations, per-rule counters of
  violated and undefined external body literals.  A singleton component
  with no self-dependency is decided entirely by which of its rules
  definitely fire (no violated, no undefined literal) or possibly fire
  (no violated literal): exactly the one-pass verdict of
  ``_solve_singleton``, now maintained in O(changed literals) per update.
* **DRed** (delete-and-rederive) — for recursive components without
  internal negation.  The component's two closures (the definite closure
  ``T`` and the possibly-true envelope ``E`` of the horn/stratified
  methods) are maintained as materialised sets with per-rule internal
  support counters.  Deletions overdelete the affected cone inside the
  component and then rederive what still has alternative support;
  insertions propagate semi-naively.
* **resolve** — components with negation *through recursion* keep the
  sound fallback: re-solve the whole component with
  :func:`repro.core.modular.solve_component` (the alternating method),
  diffing old against new verdicts so propagation upward still stops as
  soon as nothing moved.

This mirrors the cheapest-sound-method dispatch of the component
evaluator — counting where one pass suffices, closure maintenance where
the fixpoint is definite, full alternation only where negation is
recursive — which is what makes atom-level maintenance *sound* per the
splitting structure of the well-founded semantics: a component's verdict
is a function of its local facts, its local rules and the frozen verdicts
below it, all of which the maintained counters track exactly.

Propagation runs over the condensation order: dirty components are
processed ascending (callees first), each emits the set of atoms whose
three-valued verdict actually flipped, and only the rules and components
*reading* those atoms are touched.  A no-op churn step — the common case
under redundant support — therefore costs O(1) instead of
O(downstream cone).

Truth codes match the kernel's vector encoding (``1`` true, ``2`` false,
``0`` undefined), so a :class:`~repro.kernel.ComponentKernel` can be kept
in sync with a plain per-atom callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..datalog.atoms import Atom

__all__ = ["DeltaOutcome", "DeltaMaintainer", "classify_component"]

#: Truth codes — identical to the kernel's truth-vector encoding.
_UNDEF, _TRUE, _FALSE = 0, 1, 2

#: Per-component maintenance methods, cheapest first.
MAINTENANCE_METHODS = ("counting", "dred", "resolve")


@dataclass(frozen=True)
class DeltaOutcome:
    """What one atom-level maintenance pass actually did.

    ``components`` counts the components whose state was touched (the
    analogue of ``components_recomputed``); ``methods`` splits them by
    maintenance method; ``atoms_changed`` counts the verdict flips that
    propagated; ``overdeleted`` / ``rederived`` tally the DRed traffic
    (rederived atoms were overdeleted but kept alternative support).
    """

    components: int
    atoms_changed: int
    methods: Mapping[str, int]
    overdeleted: int
    rederived: int


def classify_component(
    component: set[Atom],
    rules: Sequence,
    rules_by_head: Mapping[Atom, tuple[int, ...]],
) -> str:
    """The cheapest sound maintenance method for one component.

    ``"resolve"`` when some rule negates an atom of its own component
    (negation through recursion — only the alternating fixpoint is sound);
    ``"counting"`` for a singleton with no self-dependency (one-pass
    verdict); ``"dred"`` otherwise (recursive but definite inside).
    """
    singleton = len(component) == 1
    self_dep = False
    for head in component:
        for rule_id in rules_by_head.get(head, ()):
            rule = rules[rule_id]
            for atom in rule.negative_body:
                if atom in component:
                    return "resolve"
            if singleton and head in rule.positive_body:
                self_dep = True
    if singleton and not self_dep:
        return "counting"
    return "dred"


class DeltaMaintainer:
    """Maintains the per-component verdicts of an already-solved program
    at atom granularity.

    Constructed against the owning engine's *solved* state: the rule
    context (rules + head index), the condensation (components, component
    membership) and the mutable solved sets — per-component
    ``comp_true``/``comp_false`` lists and the aggregate ``true``/``false``
    sets — which the maintainer updates **in place** so the engine's views
    (model, reports, explanations) stay consistent without copying.

    :meth:`apply` then brings everything up to date with one batch of
    fact flips.  All mutable maintenance state (literal counters, support
    counters, materialised closures) is primed here from the solved sets;
    after a failed pass the state may be torn, and the owner must discard
    the maintainer along with its solved sets (the engine's existing
    drop-to-unsolved path).
    """

    def __init__(
        self,
        rules: Sequence,
        rules_by_head: Mapping[Atom, tuple[int, ...]],
        components: list[set[Atom]],
        component_of: Mapping[Atom, int],
        comp_true: list[set[Atom]],
        comp_false: list[set[Atom]],
        true_atoms: set[Atom],
        false_atoms: set[Atom],
    ) -> None:
        self._rules = rules
        self._components = components
        self._component_of = component_of
        self._comp_true = comp_true
        self._comp_false = comp_false
        self._true = true_atoms
        self._false = false_atoms

        self._kinds: list[str] = [
            classify_component(component, rules, rules_by_head)
            for component in components
        ]

        # ---- static rule structure (counting / dred components only) ---- #
        self._rule_head: dict[int, Atom] = {}
        self._rule_comp: dict[int, int] = {}
        self._local_rules: dict[Atom, list[int]] = {}
        # External literal watchers: atom -> [(rule_id, positive)].
        self._watch: dict[Atom, list[tuple[int, bool]]] = {}
        # Internal positive watchers (dred components): atom -> [rule_id].
        self._int_watch: dict[Atom, list[int]] = {}
        self._int_count: dict[int, int] = {}
        # Resolve components reading an atom from below.
        self._readers: dict[Atom, tuple[int, ...]] = {}

        # ---- mutable maintenance state, primed from the solved sets ----- #
        # Per-rule counts of definitely-violated / undefined external
        # literals.  A rule *definitely* fires through its externals when
        # both are zero; *possibly* when only `unsat` is zero.
        self._ext_unsat: dict[int, int] = {}
        self._ext_undef: dict[int, int] = {}
        # Counting components: per-head tallies of def/poss-firing rules.
        self._n_def: dict[Atom, int] = {}
        self._n_poss: dict[Atom, int] = {}
        self._singleton: dict[int, Atom] = {}
        # DRed components: the possibly-true envelope (the true closure is
        # comp_true itself, mutated in place) and per-rule internal
        # deficits |int_body \ T| / |int_body \ E|.
        self._in_e: dict[int, set[Atom]] = {}
        self._need_t: dict[int, int] = {}
        self._need_e: dict[int, int] = {}

        verdict: dict[Atom, int] = {}
        for atom in component_of:
            if atom in true_atoms:
                verdict[atom] = _TRUE
            elif atom in false_atoms:
                verdict[atom] = _FALSE
            else:
                verdict[atom] = _UNDEF
        self._verdict = verdict

        reader_sets: dict[Atom, set[int]] = {}
        for index, component in enumerate(components):
            kind = self._kinds[index]
            if kind == "resolve":
                for head in component:
                    for rule_id in rules_by_head.get(head, ()):
                        rule = rules[rule_id]
                        for atom in rule.positive_body:
                            if atom not in component:
                                reader_sets.setdefault(atom, set()).add(index)
                        for atom in rule.negative_body:
                            if atom not in component:
                                reader_sets.setdefault(atom, set()).add(index)
                continue
            if kind == "counting":
                self._singleton[index] = next(iter(component))
            for head in component:
                for rule_id in rules_by_head.get(head, ()):
                    rule = rules[rule_id]
                    self._rule_head[rule_id] = head
                    self._rule_comp[rule_id] = index
                    self._local_rules.setdefault(head, []).append(rule_id)
                    internal: set[Atom] = set()
                    external: set[tuple[Atom, bool]] = set()
                    for atom in rule.positive_body:
                        if atom in component:
                            internal.add(atom)
                        else:
                            external.add((atom, True))
                    for atom in rule.negative_body:
                        # Internal negation would have classified the
                        # component as "resolve" above.
                        external.add((atom, False))
                    unsat = undef = 0
                    for atom, positive in external:
                        self._watch.setdefault(atom, []).append((rule_id, positive))
                        code = verdict.get(atom, _FALSE)
                        if positive:
                            unsat += code == _FALSE
                            undef += code == _UNDEF
                        else:
                            unsat += code == _TRUE
                            undef += code == _UNDEF
                    self._ext_unsat[rule_id] = unsat
                    self._ext_undef[rule_id] = undef
                    if kind == "counting":
                        head_def = self._n_def.get(head, 0)
                        head_poss = self._n_poss.get(head, 0)
                        if unsat == 0:
                            head_poss += 1
                            if undef == 0:
                                head_def += 1
                        self._n_def[head] = head_def
                        self._n_poss[head] = head_poss
                    else:
                        self._int_count[rule_id] = len(internal)
                        for atom in internal:
                            self._int_watch.setdefault(atom, []).append(rule_id)
            if kind == "dred":
                in_t = comp_true[index]
                in_e = component - comp_false[index]
                self._in_e[index] = in_e
                for head in component:
                    for rule_id in rules_by_head.get(head, ()):
                        need_t = need_e = 0
                        rule = rules[rule_id]
                        seen: set[Atom] = set()
                        for atom in rule.positive_body:
                            if atom in component and atom not in seen:
                                seen.add(atom)
                                need_t += atom not in in_t
                                need_e += atom not in in_e
                        self._need_t[rule_id] = need_t
                        self._need_e[rule_id] = need_e
        self._readers = {atom: tuple(found) for atom, found in reader_sets.items()}

    # ------------------------------------------------------------------ #
    # Maintenance pass
    # ------------------------------------------------------------------ #
    def apply(
        self,
        facts: frozenset[Atom],
        changed: Iterable[Atom],
        *,
        resolve: Callable[[int], tuple[set[Atom], set[Atom]]],
        sync: Optional[Callable[[Atom, int], None]] = None,
        step: Optional[Callable[[], None]] = None,
    ) -> DeltaOutcome:
        """One maintenance pass over a batch of fact flips.

        *changed* are rule atoms whose EDB status differs from the solved
        state; *facts* is the full new EDB.  *resolve* re-solves one
        ``"resolve"``-kind component against the (already updated)
        aggregates and returns its new ``(true, false)`` pair; *sync*, when
        given, receives every verdict flip as ``(atom, code)`` (the kernel
        truth-vector hook); *step* is called once per processed component
        (budget metering).  Returns the pass's :class:`DeltaOutcome`.
        """
        heap: list[int] = []
        queued: set[int] = set()
        fact_dirty: dict[int, list[Atom]] = {}
        # DRed components touched through external literals this pass:
        # rule -> (def-enabled, poss-enabled) *before* the first change.
        pending: dict[int, dict[int, tuple[bool, bool]]] = {}
        methods = {"counting": 0, "dred": 0, "resolve": 0}
        atoms_changed = 0
        overdeleted = rederived = 0

        component_of = self._component_of
        kinds = self._kinds
        ext_unsat = self._ext_unsat
        ext_undef = self._ext_undef

        def mark(index: int) -> None:
            if index not in queued:
                queued.add(index)
                heappush(heap, index)

        for atom in changed:
            index = component_of[atom]
            fact_dirty.setdefault(index, []).append(atom)
            mark(index)

        def note(atom: Atom, old: int, new: int) -> None:
            """Push one verdict flip into every reader's counters."""
            for rule_id, positive in self._watch.get(atom, ()):
                if positive:
                    d_unsat = (new == _FALSE) - (old == _FALSE)
                else:
                    d_unsat = (new == _TRUE) - (old == _TRUE)
                d_undef = (new == _UNDEF) - (old == _UNDEF)
                if not d_unsat and not d_undef:
                    continue
                index = self._rule_comp[rule_id]
                unsat = ext_unsat[rule_id]
                undef = ext_undef[rule_id]
                if kinds[index] == "counting":
                    was_def = unsat == 0 and undef == 0
                    was_poss = unsat == 0
                    unsat += d_unsat
                    undef += d_undef
                    now_def = unsat == 0 and undef == 0
                    now_poss = unsat == 0
                    head = self._rule_head[rule_id]
                    moved = False
                    if now_def != was_def:
                        self._n_def[head] += 1 if now_def else -1
                        moved = True
                    if now_poss != was_poss:
                        self._n_poss[head] += 1 if now_poss else -1
                        moved = True
                    if moved:
                        mark(index)
                else:  # dred
                    events = pending.setdefault(index, {})
                    if rule_id not in events:
                        events[rule_id] = (unsat == 0 and undef == 0, unsat == 0)
                    unsat += d_unsat
                    undef += d_undef
                    mark(index)
                ext_unsat[rule_id] = unsat
                ext_undef[rule_id] = undef
            for index in self._readers.get(atom, ()):
                mark(index)

        while heap:
            index = heappop(heap)
            queued.discard(index)
            kind = kinds[index]
            if step is not None:
                step()
            local_changed = fact_dirty.pop(index, ())
            if kind == "counting":
                changes = self._apply_counting(index, facts)
            elif kind == "dred":
                changes, over, reder = self._apply_dred(
                    index, pending.pop(index, {}), local_changed, facts
                )
                overdeleted += over
                rederived += reder
            else:
                changes = self._apply_resolve(index, resolve)
            methods[kind] += 1
            for atom, new in changes:
                old = self._verdict[atom]
                self._verdict[atom] = new
                if old == _TRUE:
                    self._true.discard(atom)
                elif old == _FALSE:
                    self._false.discard(atom)
                if new == _TRUE:
                    self._true.add(atom)
                elif new == _FALSE:
                    self._false.add(atom)
                if sync is not None:
                    sync(atom, new)
                atoms_changed += 1
                note(atom, old, new)

        return DeltaOutcome(
            components=sum(methods.values()),
            atoms_changed=atoms_changed,
            methods={name: count for name, count in methods.items() if count},
            overdeleted=overdeleted,
            rederived=rederived,
        )

    # ------------------------------------------------------------------ #
    # Per-kind component passes
    # ------------------------------------------------------------------ #
    def _apply_counting(
        self, index: int, facts: frozenset[Atom]
    ) -> tuple[tuple[Atom, int], ...]:
        head = self._singleton[index]
        if head in facts or self._n_def.get(head, 0) > 0:
            new = _TRUE
        elif self._n_poss.get(head, 0) > 0:
            new = _UNDEF
        else:
            new = _FALSE
        if self._verdict[head] == new:
            return ()
        comp_true = self._comp_true[index]
        comp_false = self._comp_false[index]
        comp_true.clear()
        comp_false.clear()
        if new == _TRUE:
            comp_true.add(head)
        elif new == _FALSE:
            comp_false.add(head)
        return ((head, new),)

    def _apply_dred(
        self,
        index: int,
        events: dict[int, tuple[bool, bool]],
        local_changed: Iterable[Atom],
        facts: frozenset[Atom],
    ) -> tuple[list[tuple[Atom, int]], int, int]:
        ext_unsat = self._ext_unsat
        ext_undef = self._ext_undef
        added_facts = [atom for atom in local_changed if atom in facts]
        removed_facts = [atom for atom in local_changed if atom not in facts]
        t_events: list[tuple[int, bool, bool]] = []
        e_events: list[tuple[int, bool, bool]] = []
        for rule_id, (was_def, was_poss) in events.items():
            now_def = ext_unsat[rule_id] == 0 and ext_undef[rule_id] == 0
            now_poss = ext_unsat[rule_id] == 0
            if now_def != was_def:
                t_events.append((rule_id, was_def, now_def))
            if now_poss != was_poss:
                e_events.append((rule_id, was_poss, now_poss))

        in_t = self._comp_true[index]
        in_e = self._in_e[index]
        t_added, t_removed, over_t, reder_t = self._dred_circuit(
            in_t, self._need_t, self._def_enabled, t_events,
            added_facts, removed_facts, facts,
        )
        e_added, e_removed, over_e, reder_e = self._dred_circuit(
            in_e, self._need_e, self._poss_enabled, e_events,
            added_facts, removed_facts, facts,
        )

        comp_false = self._comp_false[index]
        for atom in e_added:
            comp_false.discard(atom)
        for atom in e_removed:
            comp_false.add(atom)

        changes: list[tuple[Atom, int]] = []
        for atom in t_added | t_removed | e_added | e_removed:
            if atom in in_t:
                new = _TRUE
            elif atom in in_e:
                new = _UNDEF
            else:
                new = _FALSE
            if self._verdict[atom] != new:
                changes.append((atom, new))
        return changes, over_t + over_e, reder_t + reder_e

    def _def_enabled(self, rule_id: int) -> bool:
        return self._ext_unsat[rule_id] == 0 and self._ext_undef[rule_id] == 0

    def _poss_enabled(self, rule_id: int) -> bool:
        return self._ext_unsat[rule_id] == 0

    def _dred_circuit(
        self,
        closure: set[Atom],
        need: dict[int, int],
        enabled: Callable[[int], bool],
        events: list[tuple[int, bool, bool]],
        added_facts: list[Atom],
        removed_facts: list[Atom],
        facts: frozenset[Atom],
    ) -> tuple[set[Atom], set[Atom], int, int]:
        """Delete-and-rederive one circuit (T or E) of a dred component.

        *closure* is the materialised closure, mutated in place; *need*
        maps each rule to its internal deficit ``|int_body \\ closure|``,
        kept exact through every membership change.  Returns the net
        ``(added, removed)`` sets plus the overdelete / rederive tallies.
        """
        int_watch = self._int_watch
        heads = self._rule_head

        # ---- overdelete: removed seeds and everything derived through
        # them, aggressively ----------------------------------------------
        overdeleted: set[Atom] = set()
        stack: list[Atom] = []

        def kill(atom: Atom) -> None:
            if atom in closure and atom not in overdeleted:
                overdeleted.add(atom)
                closure.discard(atom)
                stack.append(atom)

        for atom in removed_facts:
            kill(atom)
        for rule_id, was, now in events:
            if was and not now and need[rule_id] == 0:
                kill(heads[rule_id])
        while stack:
            atom = stack.pop()
            for rule_id in int_watch.get(atom, ()):
                firing = need[rule_id] == 0 and enabled(rule_id)
                need[rule_id] += 1
                if firing:
                    kill(heads[rule_id])

        # ---- rederive + insert: overdeleted atoms with surviving support,
        # new local facts, and newly enabled rules, semi-naively -----------
        frontier: list[Atom] = []
        newly: set[Atom] = set()
        revived: set[Atom] = set()

        def insert(atom: Atom) -> None:
            if atom in closure:
                return
            closure.add(atom)
            (revived if atom in overdeleted else newly).add(atom)
            frontier.append(atom)

        for atom in overdeleted:
            if atom in facts or any(
                need[rule_id] == 0 and enabled(rule_id)
                for rule_id in self._local_rules.get(atom, ())
            ):
                insert(atom)
        for atom in added_facts:
            insert(atom)
        for rule_id, was, now in events:
            if now and not was and need[rule_id] == 0:
                insert(heads[rule_id])
        while frontier:
            atom = frontier.pop()
            for rule_id in int_watch.get(atom, ()):
                need[rule_id] -= 1
                if need[rule_id] == 0 and enabled(rule_id):
                    insert(heads[rule_id])

        return newly, overdeleted - revived, len(overdeleted), len(revived)

    def _apply_resolve(
        self, index: int, resolve: Callable[[int], tuple[set[Atom], set[Atom]]]
    ) -> list[tuple[Atom, int]]:
        new_true, new_false = resolve(index)
        self._comp_true[index] = new_true
        self._comp_false[index] = new_false
        changes: list[tuple[Atom, int]] = []
        for atom in self._components[index]:
            if atom in new_true:
                new = _TRUE
            elif atom in new_false:
                new = _FALSE
            else:
                new = _UNDEF
            if self._verdict[atom] != new:
                changes.append((atom, new))
        return changes
