"""Atom-level delta maintenance for incremental sessions.

Maintains per-component derivation state (counting for one-pass
components, delete-and-rederive for recursive definite ones, component
re-solve only where negation is recursive) so that sustained
assert/retract churn costs O(affected derivations) instead of
O(affected components).  See :mod:`repro.delta.maintainer`.
"""

from .maintainer import DeltaMaintainer, DeltaOutcome, classify_component

__all__ = ["DeltaMaintainer", "DeltaOutcome", "classify_component"]
