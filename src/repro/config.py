"""One validated configuration object for the whole evaluation stack.

Historically the public surface grew one loosely-validated string keyword at
a time — ``semantics=`` on :func:`repro.engine.solver.solve`, ``strategy=``
threaded through :mod:`repro.core`, ``engine=`` through the well-founded
entry points, ``grounder=`` on :func:`repro.core.context.build_context` and
``matcher=`` on :func:`repro.datalog.grounding.relevant_ground` — each
validated (or not) at a different layer with a different error message.

:class:`EngineConfig` replaces that sprawl: one frozen dataclass holding
every evaluation choice, validated *once* at construction with error
messages that consistently list the accepted values.  It is accepted by
:class:`repro.session.KnowledgeBase`, :func:`repro.engine.solver.solve`,
and every ``core``/``semantics`` entry point; the old keyword arguments
keep working through :func:`resolve_config`, the deprecation shim the
public entry points funnel legacy calls through.

This module is the canonical home of the option tuples.  The historical
locations (``repro.evaluation.engine``, ``repro.core.modular``,
``repro.engine.solver``) re-export them unchanged.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from .datalog.grounding import (
    DEFAULT_GROUNDING_MATCHER,
    GROUNDING_MATCHERS,
    GroundingLimits,
)
from .exceptions import EvaluationError, GroundingError
from .resilience.budget import Budget
from .storage import DEFAULT_STORE, SUPPORTED_STORES, open_store, parse_store_spec

__all__ = [
    "SUPPORTED_SEMANTICS",
    "DEFAULT_SEMANTICS",
    "EVALUATION_STRATEGIES",
    "DEFAULT_STRATEGY",
    "EVALUATION_ENGINES",
    "DEFAULT_ENGINE",
    "SUPPORTED_GROUNDERS",
    "DEFAULT_GROUNDER",
    "GROUNDING_MATCHERS",
    "DEFAULT_GROUNDING_MATCHER",
    "SUPPORTED_STORES",
    "DEFAULT_STORE",
    "REFRESH_MODES",
    "DEFAULT_REFRESH",
    "MAINTENANCE_MODES",
    "DEFAULT_MAINTENANCE",
    "validate_semantics",
    "validate_strategy",
    "validate_engine",
    "validate_grounder",
    "validate_matcher",
    "validate_store",
    "validate_refresh",
    "validate_maintenance",
    "EngineConfig",
    "resolve_config",
    "merge_entry_config",
]

#: Model-theoretic semantics the solver can compute.  ``"auto"`` picks the
#: cheapest one that agrees with the well-founded model for the program's
#: syntactic class.
SUPPORTED_SEMANTICS = (
    "auto",
    "alternating-fixpoint",
    "well-founded",
    "stratified",
    "horn",
    "fitting",
    "inflationary",
    "stable",
)
DEFAULT_SEMANTICS = "auto"

#: Fixpoint evaluation strategies: indexed delta-driven semi-naive
#: evaluation, and the literal re-scan-everything oracle.
EVALUATION_STRATEGIES = ("seminaive", "naive")
DEFAULT_STRATEGY = "seminaive"

#: Well-founded evaluation engines: component-wise over the SCC condensation
#: of the atom dependency graph, the monolithic alternating fixpoint it is
#: differentially tested against, and the compiled flat-array kernel
#: (:mod:`repro.kernel`) that interns atoms to dense ints and evaluates the
#: same component dispatch over ``array``/``bytearray`` state.
EVALUATION_ENGINES = ("modular", "monolithic", "kernel")
DEFAULT_ENGINE = "modular"

#: Grounders accepted by :func:`repro.core.context.build_context`.
#: ``"relevant-scan"`` is the legacy spelling of the relevant grounder with
#: the linear-scan matcher; prefer ``grounder="relevant", matcher="scan"``.
SUPPORTED_GROUNDERS = ("relevant", "relevant-scan", "naive")
DEFAULT_GROUNDER = "relevant"

#: Refresh scheduling under write traffic: ``"eager"`` refreshes the model
#: after every applied write; ``"coalesce"`` lets batching layers (the
#: query service's writer loop) drain a window of queued writes into one
#: maintenance pass before refreshing.
REFRESH_MODES = ("eager", "coalesce")
DEFAULT_REFRESH = "eager"

#: Incremental-maintenance granularity for ground sessions: ``"delta"``
#: maintains per-component derivation state at atom level (counting /
#: delete-and-rederive — :mod:`repro.delta`); ``"component"`` re-solves
#: every component upstream of a change wholesale.
MAINTENANCE_MODES = ("delta", "component")
DEFAULT_MAINTENANCE = "delta"


def _unknown(kind: str, value: object, accepted: Sequence[str]) -> str:
    """The one error-message shape every option validator uses."""
    return f"unknown {kind} {value!r}; expected one of {', '.join(accepted)}"


def validate_semantics(semantics: str) -> str:
    """Return *semantics* if it is known, raising otherwise."""
    if semantics not in SUPPORTED_SEMANTICS:
        raise EvaluationError(_unknown("semantics", semantics, SUPPORTED_SEMANTICS))
    return semantics


def validate_strategy(strategy: str) -> str:
    """Return *strategy* if it is known, raising otherwise."""
    if strategy not in EVALUATION_STRATEGIES:
        raise EvaluationError(
            _unknown("evaluation strategy", strategy, EVALUATION_STRATEGIES)
        )
    return strategy


def validate_engine(engine: str) -> str:
    """Return *engine* if it is known, raising otherwise."""
    if engine not in EVALUATION_ENGINES:
        raise EvaluationError(_unknown("evaluation engine", engine, EVALUATION_ENGINES))
    return engine


def validate_grounder(grounder: str) -> str:
    """Return *grounder* if it is known, raising otherwise."""
    if grounder not in SUPPORTED_GROUNDERS:
        raise GroundingError(_unknown("grounder", grounder, SUPPORTED_GROUNDERS))
    return grounder


def validate_matcher(matcher: str) -> str:
    """Return *matcher* if it is known, raising otherwise."""
    if matcher not in GROUNDING_MATCHERS:
        raise GroundingError(
            _unknown("grounding matcher", matcher, GROUNDING_MATCHERS)
        )
    return matcher


def validate_store(store: str) -> str:
    """Return the store spec if it is well-formed, raising otherwise.

    Accepted shapes: ``"memory"`` (default) or ``"sqlite:PATH"`` — see
    :func:`repro.storage.parse_store_spec`.
    """
    parse_store_spec(store)
    return store


def validate_refresh(refresh: str) -> str:
    """Return *refresh* if it is known, raising otherwise."""
    if refresh not in REFRESH_MODES:
        raise EvaluationError(_unknown("refresh mode", refresh, REFRESH_MODES))
    return refresh


def validate_maintenance(maintenance: str) -> str:
    """Return *maintenance* if it is known, raising otherwise."""
    if maintenance not in MAINTENANCE_MODES:
        raise EvaluationError(
            _unknown("maintenance mode", maintenance, MAINTENANCE_MODES)
        )
    return maintenance


@dataclass(frozen=True)
class EngineConfig:
    """Every evaluation choice, validated together at construction.

    Attributes
    ----------
    semantics:
        One of :data:`SUPPORTED_SEMANTICS`; ``"auto"`` (default) resolves
        to the cheapest semantics agreeing with the well-founded model.
    strategy:
        Fixpoint evaluation strategy, one of :data:`EVALUATION_STRATEGIES`.
    engine:
        Well-founded evaluation engine, one of :data:`EVALUATION_ENGINES`.
        Only consulted by the well-founded / alternating-fixpoint semantics.
    grounder:
        One of :data:`SUPPORTED_GROUNDERS`.
    matcher:
        Rule-matching implementation of the relevant grounder
        (:data:`GROUNDING_MATCHERS`), or ``None`` for the default.  Only
        meaningful with ``grounder="relevant"`` — any other combination is
        rejected here, in the one place field combinations are checked.
    store:
        Fact-storage backend spec: ``"memory"`` (default) or
        ``"sqlite:PATH"``.  A :class:`~repro.session.KnowledgeBase` built
        with this config keeps its EDB in the named backend, and one-shot
        :func:`~repro.engine.solver.solve` calls read their facts from it
        (:meth:`create_store` opens the backend).
    limits:
        Optional :class:`~repro.datalog.grounding.GroundingLimits`.
    budget:
        Optional :class:`~repro.resilience.Budget` — wall-clock deadline,
        fixpoint-step cap, and/or cooperative cancel token, enforced at
        checkpoints in every evaluation phase.  Each solve or refresh that
        honours the config starts the budget afresh (a per-operation
        deadline, not a lifetime allowance).
    refresh:
        Refresh scheduling under write traffic, one of
        :data:`REFRESH_MODES`.  ``"coalesce"`` lets the query service's
        writer drain a window of queued writes into one refresh.
    maintenance:
        Incremental-maintenance granularity, one of
        :data:`MAINTENANCE_MODES`: atom-level ``"delta"`` (default) or
        whole-``"component"`` re-solve.  Only consulted by the
        incremental session path (ground rules, well-founded family).
    """

    semantics: str = DEFAULT_SEMANTICS
    strategy: str = DEFAULT_STRATEGY
    engine: str = DEFAULT_ENGINE
    grounder: str = DEFAULT_GROUNDER
    matcher: Optional[str] = None
    store: str = DEFAULT_STORE
    limits: Optional[GroundingLimits] = None
    budget: Optional[Budget] = None
    refresh: str = DEFAULT_REFRESH
    maintenance: str = DEFAULT_MAINTENANCE

    def __post_init__(self) -> None:
        validate_semantics(self.semantics)
        validate_strategy(self.strategy)
        validate_engine(self.engine)
        validate_grounder(self.grounder)
        validate_store(self.store)
        validate_refresh(self.refresh)
        validate_maintenance(self.maintenance)
        if self.matcher is not None:
            validate_matcher(self.matcher)
            if self.grounder != "relevant":
                raise GroundingError(
                    f"matcher={self.matcher!r} applies only to the 'relevant' "
                    f"grounder, not grounder={self.grounder!r}"
                )
        if self.limits is not None and not isinstance(self.limits, GroundingLimits):
            raise EvaluationError(
                f"limits must be a GroundingLimits instance, got {self.limits!r}"
            )
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise EvaluationError(
                f"budget must be a repro.resilience.Budget instance, got {self.budget!r}"
            )

    # ------------------------------------------------------------------ #
    @property
    def resolved_grounder(self) -> str:
        """The grounder name :func:`~repro.core.context.build_context`
        consumes, with the matcher folded in."""
        if self.grounder == "relevant" and self.matcher == "scan":
            return "relevant-scan"
        return self.grounder

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy with some fields changed (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def create_store(self):
        """Open the :class:`~repro.storage.FactStore` the ``store`` spec
        names (a fresh backend per call; the caller owns closing it)."""
        return open_store(self.store)

    def describe(self) -> dict[str, object]:
        """The configuration as a plain dict (CLI/REPL ``config`` display)."""
        return {
            "semantics": self.semantics,
            "strategy": self.strategy,
            "engine": self.engine,
            "grounder": self.resolved_grounder,
            "store": self.store,
            "limits": self.limits,
            "budget": self.budget.describe() if self.budget is not None else None,
            "refresh": self.refresh,
            "maintenance": self.maintenance,
        }


def merge_entry_config(
    config: Optional["EngineConfig"],
    *,
    strategy: Optional[str] = None,
    engine: Optional[str] = None,
    limits: Optional[GroundingLimits] = None,
    grounder: Optional[str] = None,
    default_engine: str = DEFAULT_ENGINE,
) -> tuple[str, str, Optional[GroundingLimits], Optional[str], Optional[Budget]]:
    """Resolve the ``(strategy, engine, limits, grounder, budget)`` tuple a
    ``core`` or ``semantics`` entry point runs with.

    With a *config*, the legacy ``strategy=``/``engine=`` keywords must not
    also be given (``limits=`` may still override the config's), and the
    returned grounder is the config's resolved one — entry points forward
    it to :func:`~repro.core.context.build_context` so a config's grounder
    choice is honoured everywhere, not only by ``solve``.  The budget is
    always the config's (there is no legacy keyword spelling); entry
    points activate it with :func:`repro.resilience.metered`, which also
    inherits an ambient meter when the budget is ``None`` — so nested
    calls made inside a governed solve stay governed.  Without a config,
    the keywords are validated individually, unset fields fall back to
    the defaults (*default_engine* lets entry points whose historical
    default is the monolithic engine keep it), and the grounder is
    ``None`` (i.e. ``build_context``'s own default).
    """
    if config is not None:
        conflicts = [
            name
            for name, value in (
                ("strategy", strategy),
                ("engine", engine),
                ("grounder", grounder),
            )
            if value is not None
        ]
        if conflicts:
            raise EvaluationError(
                f"got both config= and {'/'.join(conflicts)}=; "
                "pass the value inside the config"
            )
        return (
            config.strategy,
            config.engine,
            limits if limits is not None else config.limits,
            config.resolved_grounder,
            config.budget,
        )
    return (
        validate_strategy(strategy if strategy is not None else DEFAULT_STRATEGY),
        validate_engine(engine if engine is not None else default_engine),
        limits,
        validate_grounder(grounder) if grounder is not None else None,
        None,
    )


def resolve_config(
    config: Optional[EngineConfig] = None,
    *,
    semantics: Optional[str] = None,
    strategy: Optional[str] = None,
    engine: Optional[str] = None,
    grounder: Optional[str] = None,
    matcher: Optional[str] = None,
    limits: Optional[GroundingLimits] = None,
    default_semantics: str = DEFAULT_SEMANTICS,
    default_engine: str = DEFAULT_ENGINE,
    warn: bool = False,
    caller: str = "solve",
) -> EngineConfig:
    """Merge a ``config=`` argument with the legacy per-field keywords.

    When *config* is given, the legacy evaluation keywords
    (``strategy``/``engine``/``grounder``/``matcher``) must not also be
    passed — mixing the two spellings is rejected rather than silently
    resolved.  ``semantics``/``limits`` remain first-class conveniences and
    override the corresponding config fields.

    When *config* is ``None``, an :class:`EngineConfig` is assembled from
    the keywords (unset ones fall back to the caller's defaults); with
    ``warn=True`` explicit legacy keywords additionally emit a
    :class:`DeprecationWarning` naming the replacement.
    """
    legacy = {
        "strategy": strategy,
        "engine": engine,
        "grounder": grounder,
        "matcher": matcher,
    }
    passed = sorted(name for name, value in legacy.items() if value is not None)
    if config is not None:
        if passed:
            raise EvaluationError(
                f"{caller}() got both config= and the legacy "
                f"{'/'.join(passed)} keyword(s); pass one or the other"
            )
        if semantics is not None:
            config = config.replace(semantics=validate_semantics(semantics))
        if limits is not None:
            config = config.replace(limits=limits)
        return config
    if warn and passed:
        warnings.warn(
            f"the {'/'.join(passed)} keyword argument(s) of {caller}() are "
            f"deprecated; pass config=EngineConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return EngineConfig(
        semantics=semantics if semantics is not None else default_semantics,
        strategy=strategy if strategy is not None else DEFAULT_STRATEGY,
        engine=engine if engine is not None else default_engine,
        grounder=grounder if grounder is not None else DEFAULT_GROUNDER,
        matcher=matcher,
        limits=limits,
    )
