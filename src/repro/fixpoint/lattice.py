"""Operations on sets of literals (Definition 3.2 of the paper).

The paper works with two kinds of sets over the Herbrand base ``H``:

* sets of *positive* literals, written with a ``+`` superscript (``I⁺``);
* sets of *negative* literals, written with a tilde (``Ĩ``).

Definition 3.2 introduces three operations used throughout:

* ``¬·I`` — complement each literal's polarity;
* disjoint union ``I⁺ + Ĩ`` — here simply set union of a positive and a
  negative set;
* the *conjugate*: the complement in ``H`` with polarity flipped.

This module represents a positive set as ``frozenset[Atom]`` and a negative
set as :class:`NegativeSet`, a thin immutable wrapper that keeps the two
kinds from being mixed up accidentally and gives the conjugate operations a
natural home.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator

from ..datalog.atoms import Atom, Literal

__all__ = [
    "NegativeSet",
    "negative_set",
    "conjugate_of_positive",
    "conjugate_of_negative",
    "literals_to_sets",
    "sets_to_literals",
]


@dataclass(frozen=True)
class NegativeSet:
    """An immutable set of negative conclusions ``Ĩ`` (atoms believed false).

    Internally the *atoms* of the negative literals are stored; ``p(a) in
    negset`` asks whether ``¬p(a)`` belongs to the set.  The class supports
    the subset/superset comparisons used by the monotonicity arguments of
    the paper and by the property-based tests.
    """

    atoms: frozenset[Atom]

    def __init__(self, atoms: Iterable[Atom] = ()):
        object.__setattr__(self, "atoms", frozenset(atoms))

    # -- container protocol -------------------------------------------- #
    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __le__(self, other: "NegativeSet") -> bool:
        return self.atoms <= other.atoms

    def __lt__(self, other: "NegativeSet") -> bool:
        return self.atoms < other.atoms

    def __ge__(self, other: "NegativeSet") -> bool:
        return self.atoms >= other.atoms

    def __gt__(self, other: "NegativeSet") -> bool:
        return self.atoms > other.atoms

    def __or__(self, other: "NegativeSet") -> "NegativeSet":
        return NegativeSet(self.atoms | other.atoms)

    def __and__(self, other: "NegativeSet") -> "NegativeSet":
        return NegativeSet(self.atoms & other.atoms)

    def __sub__(self, other: "NegativeSet") -> "NegativeSet":
        return NegativeSet(self.atoms - other.atoms)

    def __str__(self) -> str:
        inner = ", ".join(sorted(f"not {atom}" for atom in self.atoms))
        return "{" + inner + "}"

    # -- conversions ---------------------------------------------------- #
    def literals(self) -> frozenset[Literal]:
        """The set as explicit negative :class:`Literal` objects."""
        return frozenset(Literal(atom, positive=False) for atom in self.atoms)

    def conjugate(self, base: AbstractSet[Atom]) -> frozenset[Atom]:
        """Definition 3.2(3b): the positive set ``H − (¬·Ĩ)``.

        Given the Herbrand base *base*, returns the atoms *not* declared
        false by this negative set.
        """
        return frozenset(base) - self.atoms

    @classmethod
    def empty(cls) -> "NegativeSet":
        return cls(frozenset())

    @classmethod
    def everything(cls, base: AbstractSet[Atom]) -> "NegativeSet":
        """``¬·H`` — every atom of the base declared false."""
        return cls(frozenset(base))


def negative_set(atoms: Iterable[Atom]) -> NegativeSet:
    """Build a :class:`NegativeSet` from atoms (the atoms to be negated)."""
    return NegativeSet(atoms)


def conjugate_of_positive(positive: AbstractSet[Atom], base: AbstractSet[Atom]) -> NegativeSet:
    """Definition 3.2(3a): the negative set ``¬·(H − I⁺)``.

    Atoms of the base not in the positive set become negative conclusions.
    """
    return NegativeSet(frozenset(base) - frozenset(positive))


def conjugate_of_negative(negative: NegativeSet, base: AbstractSet[Atom]) -> frozenset[Atom]:
    """Definition 3.2(3b): the positive set ``H − (¬·Ĩ)``."""
    return negative.conjugate(base)


def literals_to_sets(literals: Iterable[Literal]) -> tuple[frozenset[Atom], NegativeSet]:
    """Split a mixed literal set into ``(I⁺, Ĩ)``."""
    positive: set[Atom] = set()
    negative: set[Atom] = set()
    for literal in literals:
        if literal.positive:
            positive.add(literal.atom)
        else:
            negative.add(literal.atom)
    return frozenset(positive), NegativeSet(negative)


def sets_to_literals(positive: AbstractSet[Atom], negative: NegativeSet) -> frozenset[Literal]:
    """Merge ``(I⁺, Ĩ)`` back into one set of literals."""
    result: set[Literal] = {Literal(atom, positive=True) for atom in positive}
    result.update(Literal(atom, positive=False) for atom in negative)
    return frozenset(result)
