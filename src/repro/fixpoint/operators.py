"""Generic fixpoint machinery: ordinal powers, least fixpoints, traces.

Section 3.2 of the paper defines the *ordinal powers* ``T↑α(∅)`` of a
transformation ``T`` on a powerset lattice and recalls (Theorem 3.1) that a
monotonic transformation reaches its least fixpoint at some stage.  On the
finite structures the library evaluates, closure ordinals are finite, so the
iteration below simply runs until two consecutive stages coincide.

The module works with *any* transformation on hashable, comparable set-like
values — ``frozenset`` of atoms, :class:`~repro.fixpoint.lattice.NegativeSet`,
or frozensets of literals — which lets the same driver compute ``T_P``,
``S_P``, ``A_P`` and ``W_P`` fixpoints and record their stage-by-stage
traces for the Table I reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from ..exceptions import EvaluationError

__all__ = [
    "FixpointTrace",
    "iterate_to_fixpoint",
    "least_fixpoint",
    "is_fixpoint",
    "check_monotone_on_chain",
    "check_antimonotone_on_pair",
]

SetLike = TypeVar("SetLike")

DEFAULT_MAX_STAGES = 1_000_000


@dataclass(frozen=True)
class FixpointTrace(Generic[SetLike]):
    """The full stage-by-stage history of a fixpoint iteration.

    ``stages[0]`` is the starting value (usually the empty set) and
    ``stages[-1]`` is the fixpoint.  ``converged_at`` is the index of the
    first stage that equals its successor, i.e. the closure ordinal of the
    iteration on this input.
    """

    stages: tuple[SetLike, ...]
    converged_at: int

    @property
    def fixpoint(self) -> SetLike:
        return self.stages[-1]

    @property
    def iterations(self) -> int:
        """Number of operator applications performed."""
        return len(self.stages) - 1

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)


def iterate_to_fixpoint(
    transform: Callable[[SetLike], SetLike],
    start: SetLike,
    max_stages: int = DEFAULT_MAX_STAGES,
) -> FixpointTrace[SetLike]:
    """Iterate *transform* from *start* until a fixpoint is reached.

    The transformation is expected to be monotonic (or at least convergent
    from *start*); if no fixpoint is found within *max_stages* applications
    an :class:`EvaluationError` is raised rather than looping forever.
    """
    stages: list[SetLike] = [start]
    current = start
    for stage in range(max_stages):
        following = transform(current)
        stages.append(following)
        if following == current:
            return FixpointTrace(tuple(stages), converged_at=stage)
        current = following
    raise EvaluationError(
        f"fixpoint iteration did not converge within {max_stages} stages"
    )


def least_fixpoint(
    transform: Callable[[SetLike], SetLike],
    bottom: SetLike,
    max_stages: int = DEFAULT_MAX_STAGES,
) -> SetLike:
    """The least fixpoint ``T↑∞(⊥)`` of a monotonic transformation."""
    return iterate_to_fixpoint(transform, bottom, max_stages).fixpoint


def is_fixpoint(transform: Callable[[SetLike], SetLike], value: SetLike) -> bool:
    """Check whether ``transform(value) == value``."""
    return transform(value) == value


def check_monotone_on_chain(
    transform: Callable[[SetLike], SetLike],
    chain: Sequence[SetLike],
    leq: Callable[[SetLike, SetLike], bool] | None = None,
) -> bool:
    """Verify ``x ⊆ y  ⇒  T(x) ⊆ T(y)`` along an ascending chain.

    Used by the property-based tests to confirm Theorem 3.1's premise holds
    for the operators the library builds (``A_P`` in particular).  The
    default order is ``<=`` on the values themselves.
    """
    compare = leq or (lambda a, b: a <= b)
    for smaller, larger in zip(chain, chain[1:]):
        if not compare(smaller, larger):
            raise ValueError("input chain is not ascending")
        if not compare(transform(smaller), transform(larger)):
            return False
    return True


def check_antimonotone_on_pair(
    transform: Callable[[SetLike], SetLike],
    smaller: SetLike,
    larger: SetLike,
    leq: Callable[[SetLike, SetLike], bool] | None = None,
) -> bool:
    """Verify ``x ⊆ y  ⇒  T(y) ⊆ T(x)`` for one pair.

    This is the antimonotonicity property of the stability transformation
    ``S̃_P`` (Section 4), which the tests exercise on random programs.
    """
    compare = leq or (lambda a, b: a <= b)
    if not compare(smaller, larger):
        raise ValueError("expected smaller <= larger")
    return compare(transform(larger), transform(smaller))
