"""Partial and total interpretations, three-valued truth, rule satisfaction.

Definitions 3.4 and 3.5 of the paper: a *partial interpretation* is a
partial function from the Herbrand base into ``{true, false}``, represented
as a consistent set of literals; it extends to conjunctions three-valuedly,
and a rule ``p ← φ`` is *satisfied* when (1) its head is true, or (2) its
body is false, or (3) both head and body are undefined.

The paper is explicit that satisfaction is *not* simply truth of
``p ∨ ¬φ`` — Example 3.1 motivates clause (3) — and the tests reproduce
that example against this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator, Optional

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..exceptions import EvaluationError
from .lattice import NegativeSet

__all__ = ["TruthValue", "PartialInterpretation", "satisfies_rule", "is_partial_model", "is_total_model"]


class TruthValue(enum.Enum):
    """The three truth values of the partial-interpretation semantics."""

    TRUE = "true"
    FALSE = "false"
    UNDEFINED = "undefined"

    def __invert__(self) -> "TruthValue":
        if self is TruthValue.TRUE:
            return TruthValue.FALSE
        if self is TruthValue.FALSE:
            return TruthValue.TRUE
        return TruthValue.UNDEFINED

    def conjoin(self, other: "TruthValue") -> "TruthValue":
        """Kleene conjunction (Definition 3.4)."""
        if self is TruthValue.FALSE or other is TruthValue.FALSE:
            return TruthValue.FALSE
        if self is TruthValue.TRUE and other is TruthValue.TRUE:
            return TruthValue.TRUE
        return TruthValue.UNDEFINED

    def disjoin(self, other: "TruthValue") -> "TruthValue":
        """Kleene disjunction (used by the Fitting semantics and Section 8)."""
        if self is TruthValue.TRUE or other is TruthValue.TRUE:
            return TruthValue.TRUE
        if self is TruthValue.FALSE and other is TruthValue.FALSE:
            return TruthValue.FALSE
        return TruthValue.UNDEFINED


@dataclass(frozen=True)
class PartialInterpretation:
    """A consistent assignment of ``true`` / ``false`` to some ground atoms.

    ``true_atoms`` and ``false_atoms`` must be disjoint; atoms in neither are
    *undefined*.  The class is the common currency of all semantics modules:
    the well-founded partial model, AFP partial model, Fitting model and
    stable models are all returned as (possibly total) partial
    interpretations.
    """

    true_atoms: frozenset[Atom]
    false_atoms: frozenset[Atom]

    def __init__(self, true_atoms: Iterable[Atom] = (), false_atoms: Iterable[Atom] = ()):
        trues = frozenset(true_atoms)
        falses = frozenset(false_atoms)
        overlap = trues & falses
        if overlap:
            sample = ", ".join(sorted(str(a) for a in list(overlap)[:3]))
            raise EvaluationError(
                f"inconsistent interpretation: atoms both true and false ({sample})"
            )
        object.__setattr__(self, "true_atoms", trues)
        object.__setattr__(self, "false_atoms", falses)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_literals(cls, literals: Iterable[Literal]) -> "PartialInterpretation":
        trues: set[Atom] = set()
        falses: set[Atom] = set()
        for literal in literals:
            (trues if literal.positive else falses).add(literal.atom)
        return cls(trues, falses)

    @classmethod
    def from_sets(cls, positive: AbstractSet[Atom], negative: NegativeSet) -> "PartialInterpretation":
        return cls(positive, set(negative))

    @classmethod
    def empty(cls) -> "PartialInterpretation":
        return cls((), ())

    @classmethod
    def total_from_true(cls, true_atoms: Iterable[Atom], base: AbstractSet[Atom]) -> "PartialInterpretation":
        """A total interpretation over *base*: everything not true is false."""
        trues = frozenset(true_atoms)
        return cls(trues, frozenset(base) - trues)

    # ------------------------------------------------------------------ #
    # Truth valuation
    # ------------------------------------------------------------------ #
    def value_of_atom(self, atom: Atom) -> TruthValue:
        if atom in self.true_atoms:
            return TruthValue.TRUE
        if atom in self.false_atoms:
            return TruthValue.FALSE
        return TruthValue.UNDEFINED

    def value_of_literal(self, literal: Literal) -> TruthValue:
        value = self.value_of_atom(literal.atom)
        return value if literal.positive else ~value

    def value_of_body(self, body: Iterable[Literal]) -> TruthValue:
        """Three-valued conjunction of the body literals (empty body = true)."""
        result = TruthValue.TRUE
        for literal in body:
            result = result.conjoin(self.value_of_literal(literal))
            if result is TruthValue.FALSE:
                return TruthValue.FALSE
        return result

    def is_true(self, atom: Atom) -> bool:
        return atom in self.true_atoms

    def is_false(self, atom: Atom) -> bool:
        return atom in self.false_atoms

    def is_undefined(self, atom: Atom) -> bool:
        return atom not in self.true_atoms and atom not in self.false_atoms

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def literals(self) -> frozenset[Literal]:
        result = {Literal(a, True) for a in self.true_atoms}
        result.update(Literal(a, False) for a in self.false_atoms)
        return frozenset(result)

    def undefined_atoms(self, base: AbstractSet[Atom]) -> frozenset[Atom]:
        return frozenset(base) - self.true_atoms - self.false_atoms

    def defined_atoms(self) -> frozenset[Atom]:
        return self.true_atoms | self.false_atoms

    def is_total_over(self, base: AbstractSet[Atom]) -> bool:
        return not self.undefined_atoms(base)

    def restrict_to_predicates(self, predicates: AbstractSet[str]) -> "PartialInterpretation":
        """Keep only literals of the given predicates (used when comparing
        against models of transformed programs, Section 8)."""
        return PartialInterpretation(
            (a for a in self.true_atoms if a.predicate in predicates),
            (a for a in self.false_atoms if a.predicate in predicates),
        )

    def true_of_predicate(self, predicate: str) -> set[Atom]:
        return {a for a in self.true_atoms if a.predicate == predicate}

    def false_of_predicate(self, predicate: str) -> set[Atom]:
        return {a for a in self.false_atoms if a.predicate == predicate}

    # ------------------------------------------------------------------ #
    # Order
    # ------------------------------------------------------------------ #
    def extends(self, other: "PartialInterpretation") -> bool:
        """Information order: self defines at least everything *other* does,
        with the same polarity."""
        return other.true_atoms <= self.true_atoms and other.false_atoms <= self.false_atoms

    def __le__(self, other: "PartialInterpretation") -> bool:
        return other.extends(self)

    def __len__(self) -> int:
        return len(self.true_atoms) + len(self.false_atoms)

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self.literals(), key=str))

    def __str__(self) -> str:
        parts = sorted(str(a) for a in self.true_atoms)
        parts.extend(sorted(f"not {a}" for a in self.false_atoms))
        return "{" + ", ".join(parts) + "}"


# --------------------------------------------------------------------- #
# Rule satisfaction (Definition 3.5)
# --------------------------------------------------------------------- #
def satisfies_rule(interpretation: PartialInterpretation, rule: Rule) -> bool:
    """Definition 3.5: a partial interpretation satisfies ``p ← φ`` when the
    head is true, or the body is false, or both are undefined."""
    head_value = interpretation.value_of_atom(rule.head)
    if head_value is TruthValue.TRUE:
        return True
    body_value = interpretation.value_of_body(rule.body)
    if body_value is TruthValue.FALSE:
        return True
    return head_value is TruthValue.UNDEFINED and body_value is TruthValue.UNDEFINED


def is_partial_model(interpretation: PartialInterpretation, program: Program) -> bool:
    """Check whether *interpretation* satisfies every rule of the (ground)
    program."""
    return all(satisfies_rule(interpretation, rule) for rule in program)


def is_total_model(
    interpretation: PartialInterpretation,
    program: Program,
    base: Optional[AbstractSet[Atom]] = None,
) -> bool:
    """A total model is a partial model defined on the whole base.

    When *base* is omitted, the atoms occurring in the ground program are
    used.
    """
    if base is None:
        base = set()
        for rule in program:
            base.add(rule.head)
            base.update(lit.atom for lit in rule.body)
    return interpretation.is_total_over(base) and is_partial_model(interpretation, program)
