"""Fixpoint machinery: lattices of literal sets, operators, interpretations.

Implements the preliminaries of Section 3 of the paper — Definition 3.2's
set operations, Theorem 3.1's ordinal-power iteration, and Definitions
3.4–3.5's partial interpretations and rule satisfaction.
"""

from .interpretations import (
    PartialInterpretation,
    TruthValue,
    is_partial_model,
    is_total_model,
    satisfies_rule,
)
from .lattice import (
    NegativeSet,
    conjugate_of_negative,
    conjugate_of_positive,
    literals_to_sets,
    negative_set,
    sets_to_literals,
)
from .operators import (
    FixpointTrace,
    check_antimonotone_on_pair,
    check_monotone_on_chain,
    is_fixpoint,
    iterate_to_fixpoint,
    least_fixpoint,
)

__all__ = [
    "PartialInterpretation",
    "TruthValue",
    "is_partial_model",
    "is_total_model",
    "satisfies_rule",
    "NegativeSet",
    "conjugate_of_negative",
    "conjugate_of_positive",
    "literals_to_sets",
    "negative_set",
    "sets_to_literals",
    "FixpointTrace",
    "check_antimonotone_on_pair",
    "check_monotone_on_chain",
    "is_fixpoint",
    "iterate_to_fixpoint",
    "least_fixpoint",
]
