"""Local stratification on ground programs (Przymusiński, Section 2.3).

A ground program is *locally stratified* when the ground atoms (not just
predicates) can be assigned ordinal levels such that every rule's head is at
a level at least as high as its positive body atoms and strictly higher than
its negative body atoms.  Every locally stratified program has a total
well-founded model that coincides with its unique stable model and its
perfect model; the property-based tests use this module to pick the programs
on which those agreements must hold.

Deciding local stratification of a non-ground program is undecidable in
general (Cholak, cited in the paper); here we only analyse finite ground
programs, where the question reduces to detecting negative cycles in the
*atom* dependency graph — built by
:func:`repro.analysis.dependency.build_atom_dependency_graph`, the same
structure the component-wise well-founded evaluator condenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..datalog.atoms import Atom
from ..datalog.grounding import ground_program
from ..datalog.rules import Program
from .dependency import ArcPolarity, build_atom_dependency_graph

__all__ = ["LocalStratification", "locally_stratify", "is_locally_stratified"]


@dataclass(frozen=True)
class LocalStratification:
    """An assignment of ground atoms to integer levels, or a witness of
    failure.

    ``levels`` is ``None`` exactly when the ground program is not locally
    stratified; in that case ``offending_atoms`` contains atoms lying on a
    cycle through negation.
    """

    levels: Optional[Mapping[Atom, int]]
    offending_atoms: frozenset[Atom]

    @property
    def is_stratified(self) -> bool:
        return self.levels is not None


def is_locally_stratified(program: Program) -> bool:
    """True when the (grounded) program is locally stratified."""
    return locally_stratify(program).is_stratified


def locally_stratify(program: Program) -> LocalStratification:
    """Analyse the atom-level dependency structure of the ground program.

    The algorithm builds the atom dependency graph (an arc from the head
    atom to each body atom, labelled by the body literal's polarity), finds
    its strongly connected components, and reports failure when a component
    contains a negative arc; otherwise it assigns each component a level by
    the usual longest-negation-count over the condensation.
    """
    grounded = ground_program(program)
    graph = build_atom_dependency_graph(grounded)
    components = graph.strongly_connected_components()

    # Fail when a negative (or mixed) arc stays within one component.
    offenders: set[Atom] = set()
    for component in components:
        if graph.negative_arc_within(component):
            offenders.update(component)
    if offenders:
        return LocalStratification(None, frozenset(offenders))

    # Components are produced callees-first, so a single pass assigns levels.
    levels: dict[Atom, int] = {}
    for component in components:
        level = 0
        for member in component:
            for target in graph.successors(member):
                if target in component:
                    continue
                if graph.polarity(member, target) is ArcPolarity.POSITIVE:
                    level = max(level, levels[target])  # same level allowed
                else:
                    level = max(level, levels[target] + 1)  # strictly higher
        for member in component:
            levels[member] = level
    return LocalStratification(levels, frozenset())
