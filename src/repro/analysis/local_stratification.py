"""Local stratification on ground programs (Przymusiński, Section 2.3).

A ground program is *locally stratified* when the ground atoms (not just
predicates) can be assigned ordinal levels such that every rule's head is at
a level at least as high as its positive body atoms and strictly higher than
its negative body atoms.  Every locally stratified program has a total
well-founded model that coincides with its unique stable model and its
perfect model; the property-based tests use this module to pick the programs
on which those agreements must hold.

Deciding local stratification of a non-ground program is undecidable in
general (Cholak, cited in the paper); here we only analyse finite ground
programs, where the question reduces to detecting negative cycles in the
*atom* dependency graph.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Optional

from ..datalog.atoms import Atom
from ..datalog.grounding import ground_program
from ..datalog.rules import Program

__all__ = ["LocalStratification", "locally_stratify", "is_locally_stratified"]


@dataclass(frozen=True)
class LocalStratification:
    """An assignment of ground atoms to integer levels, or a witness of
    failure.

    ``levels`` is ``None`` exactly when the ground program is not locally
    stratified; in that case ``offending_atoms`` contains atoms lying on a
    cycle through negation.
    """

    levels: Optional[Mapping[Atom, int]]
    offending_atoms: frozenset[Atom]

    @property
    def is_stratified(self) -> bool:
        return self.levels is not None


def is_locally_stratified(program: Program) -> bool:
    """True when the (grounded) program is locally stratified."""
    return locally_stratify(program).is_stratified


def locally_stratify(program: Program) -> LocalStratification:
    """Analyse the atom-level dependency structure of the ground program.

    The algorithm builds the atom dependency graph (an arc from the head
    atom to each body atom, labelled by the body literal's polarity), finds
    its strongly connected components, and reports failure when a component
    contains a negative arc; otherwise it assigns each component a level by
    the usual longest-negation-count over the condensation.
    """
    grounded = ground_program(program)

    positive_edges: dict[Atom, set[Atom]] = defaultdict(set)
    negative_edges: dict[Atom, set[Atom]] = defaultdict(set)
    atoms: set[Atom] = set()
    for rule in grounded:
        atoms.add(rule.head)
        for literal in rule.body:
            atoms.add(literal.atom)
            if literal.positive:
                positive_edges[rule.head].add(literal.atom)
            else:
                negative_edges[rule.head].add(literal.atom)

    components = _tarjan(atoms, positive_edges, negative_edges)
    component_of: dict[Atom, int] = {}
    for index, component in enumerate(components):
        for member in component:
            component_of[member] = index

    # Fail when a negative arc stays within one component.
    offenders: set[Atom] = set()
    for source, targets in negative_edges.items():
        for target in targets:
            if component_of[source] == component_of[target]:
                offenders.update(components[component_of[source]])
    if offenders:
        return LocalStratification(None, frozenset(offenders))

    # Components are produced callees-first, so a single pass assigns levels.
    levels: dict[Atom, int] = {}
    for component in components:
        level = 0
        for member in component:
            for target in positive_edges.get(member, ()):  # same level allowed
                if target not in component:
                    level = max(level, levels[target])
            for target in negative_edges.get(member, ()):  # must be strictly lower
                level = max(level, levels[target] + 1)
        for member in component:
            levels[member] = level
    return LocalStratification(levels, frozenset())


def _tarjan(
    atoms: set[Atom],
    positive_edges: Mapping[Atom, set[Atom]],
    negative_edges: Mapping[Atom, set[Atom]],
) -> list[set[Atom]]:
    """Strongly connected components of the atom graph, callees first."""
    adjacency: dict[Atom, list[Atom]] = defaultdict(list)
    for source in atoms:
        adjacency[source].extend(positive_edges.get(source, ()))
        adjacency[source].extend(negative_edges.get(source, ()))

    index_counter = 0
    index: dict[Atom, int] = {}
    lowlink: dict[Atom, int] = {}
    stack: list[Atom] = []
    on_stack: set[Atom] = set()
    components: list[set[Atom]] = []

    for root in sorted(atoms, key=str):
        if root in index:
            continue
        work: list[tuple[Atom, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: set[Atom] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
