"""Stratification analysis (Section 2.3 of the paper).

A program is *stratified* when its predicates can be assigned to numbered
strata so that a predicate only depends positively on predicates of the same
or lower strata and only negatively on strictly lower strata.  Equivalently,
no cycle of the dependency graph contains a negative (or mixed) arc.

:func:`stratify` returns a :class:`Stratification` with the stratum of each
predicate and the predicates grouped per stratum; it raises
:class:`~repro.exceptions.NotStratifiedError` on unstratifiable programs
(e.g. the win–move program of Example 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datalog.rules import Program
from ..exceptions import NotStratifiedError
from .dependency import ArcPolarity, DependencyGraph, build_dependency_graph

__all__ = ["Stratification", "stratify", "is_stratified"]


@dataclass(frozen=True)
class Stratification:
    """An assignment of predicates to strata ``0, 1, 2, ...``.

    ``strata[i]`` is the set of predicates in stratum ``i``; evaluation
    proceeds stratum by stratum, treating lower strata as completed EDB.
    """

    levels: Mapping[str, int]
    strata: tuple[frozenset[str], ...]

    @property
    def depth(self) -> int:
        """Number of strata."""
        return len(self.strata)

    def stratum_of(self, predicate: str) -> int:
        return self.levels.get(predicate, 0)

    def predicates_at(self, level: int) -> frozenset[str]:
        return self.strata[level]

    def __iter__(self):
        return iter(self.strata)


def is_stratified(program: Program) -> bool:
    """True when the program admits a stratification."""
    graph = build_dependency_graph(program)
    return not graph.negative_cycle_predicates()


def stratify(program: Program) -> Stratification:
    """Compute a stratification, or raise :class:`NotStratifiedError`.

    The stratum of a predicate is computed as the longest "negation count"
    over dependency paths within the condensation of the dependency graph:
    predicates in the same strongly connected component share a stratum, a
    positive dependency requires ``level(p) >= level(q)``, and a negative or
    mixed dependency requires ``level(p) >= level(q) + 1``.
    """
    graph: DependencyGraph = build_dependency_graph(program)
    offenders = graph.negative_cycle_predicates()
    if offenders:
        names = ", ".join(sorted(offenders))
        raise NotStratifiedError(
            f"program is not stratified: negation occurs in a cycle through {names}"
        )

    components = graph.strongly_connected_components()  # callees first
    component_of: dict[str, int] = {}
    for index, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = index

    levels: dict[str, int] = {}
    # Components are in reverse topological order, so dependencies of a
    # component have already been assigned when we reach it.
    for component in components:
        level = 0
        for predicate in component:
            for source, target, polarity in graph.arcs():
                if source != predicate or target in component:
                    continue
                required = levels.get(target, 0)
                if polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED):
                    required += 1
                level = max(level, required)
        for predicate in component:
            levels[predicate] = level

    depth = max(levels.values(), default=0) + 1
    strata = [set() for _ in range(depth)]
    for predicate, level in levels.items():
        strata[level].add(predicate)
    return Stratification(dict(levels), tuple(frozenset(s) for s in strata))
