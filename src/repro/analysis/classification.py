"""Program classification.

A small convenience layer that labels a program with the syntactic classes
the paper discusses — definite (Horn), stratified, locally stratified,
strict, strict in the IDB — and recommends the cheapest applicable
semantics.  The comparison benchmarks and the high-level ``solve`` API use
it to decide which evaluators are applicable to a given input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.rules import Program
from .local_stratification import is_locally_stratified
from .stratification import is_stratified
from .strictness import analyse_strictness

__all__ = ["ProgramClassification", "classify"]


@dataclass(frozen=True)
class ProgramClassification:
    """Boolean feature vector describing a program's syntactic class."""

    is_definite: bool
    is_stratified: bool
    is_locally_stratified: bool
    is_strict: bool
    is_strict_in_idb: bool
    is_ground: bool
    is_propositional: bool

    @property
    def has_total_well_founded_model(self) -> bool:
        """Locally stratified programs are guaranteed a total WFS model;
        other programs may or may not have one."""
        return self.is_locally_stratified

    @property
    def recommended_semantics(self) -> str:
        """The cheapest semantics that agrees with the well-founded model on
        this class of programs."""
        if self.is_definite:
            return "horn"
        if self.is_stratified:
            return "stratified"
        return "alternating-fixpoint"

    def summary(self) -> dict[str, bool | str]:
        return {
            "definite": self.is_definite,
            "stratified": self.is_stratified,
            "locally_stratified": self.is_locally_stratified,
            "strict": self.is_strict,
            "strict_in_idb": self.is_strict_in_idb,
            "ground": self.is_ground,
            "propositional": self.is_propositional,
            "recommended_semantics": self.recommended_semantics,
        }


def classify(program: Program, check_local: bool = True) -> ProgramClassification:
    """Classify *program*.

    ``check_local`` can be disabled for very large programs, where grounding
    just to answer the local-stratification question would be wasteful; in
    that case the flag is reported as the (sound) value of plain
    stratification.
    """
    stratified = is_stratified(program)
    if program.is_definite:
        locally = True
    elif stratified:
        locally = True
    elif check_local:
        locally = is_locally_stratified(program)
    else:
        locally = False
    strictness = analyse_strictness(program, idb_only=False)
    strictness_idb = analyse_strictness(program, idb_only=True)
    return ProgramClassification(
        is_definite=program.is_definite,
        is_stratified=stratified,
        is_locally_stratified=locally,
        is_strict=strictness.is_strict,
        is_strict_in_idb=strictness_idb.is_strict_in_idb,
        is_ground=program.is_ground,
        is_propositional=program.is_propositional,
    )
