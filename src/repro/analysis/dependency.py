"""Predicate dependency graphs with polarity labels.

Definition 8.3 of the paper: the dependency graph of a program has the
relation symbols as nodes, with an arc from ``p`` to ``q`` whenever some
rule for ``p`` uses ``q`` in its body.  The arc is labelled *positive*,
*negative*, or *mixed* according to the polarities with which ``q`` occurs
across those rules.

This graph drives three analyses used elsewhere in the library:
stratification (no negative arc inside a cycle), local stratification on
ground programs, and the strictness / global-polarity partition of
Section 8.2.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..datalog.rules import Program, Rule

__all__ = ["ArcPolarity", "DependencyGraph", "build_dependency_graph"]


class ArcPolarity(enum.Enum):
    """Label of a dependency arc (Definition 8.3)."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    MIXED = "mixed"

    def merge(self, other: "ArcPolarity") -> "ArcPolarity":
        """Combine evidence from two occurrences of the same dependency."""
        if self is other:
            return self
        return ArcPolarity.MIXED


@dataclass
class DependencyGraph:
    """Directed graph over predicate names with polarity-labelled arcs."""

    nodes: set[str] = field(default_factory=set)
    _arcs: dict[tuple[str, str], ArcPolarity] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str) -> None:
        self.nodes.add(name)

    def add_arc(self, source: str, target: str, polarity: ArcPolarity) -> None:
        """Add (or merge) an arc ``source -> target`` with the given polarity."""
        self.nodes.add(source)
        self.nodes.add(target)
        key = (source, target)
        existing = self._arcs.get(key)
        self._arcs[key] = polarity if existing is None else existing.merge(polarity)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def arcs(self) -> Iterator[tuple[str, str, ArcPolarity]]:
        for (source, target), polarity in self._arcs.items():
            yield source, target, polarity

    def polarity(self, source: str, target: str) -> ArcPolarity | None:
        return self._arcs.get((source, target))

    def successors(self, node: str) -> set[str]:
        return {target for (source, target) in self._arcs if source == node}

    def predecessors(self, node: str) -> set[str]:
        return {source for (source, target) in self._arcs if target == node}

    def has_negative_arc(self) -> bool:
        return any(
            polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED)
            for polarity in self._arcs.values()
        )

    # ------------------------------------------------------------------ #
    # Strongly connected components (Tarjan, iterative)
    # ------------------------------------------------------------------ #
    def strongly_connected_components(self) -> list[set[str]]:
        """SCCs in reverse topological order (callees before callers)."""
        index_counter = 0
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        components: list[set[str]] = []
        adjacency: dict[str, list[str]] = defaultdict(list)
        for source, target, _ in self.arcs():
            adjacency[source].append(target)

        for root in sorted(self.nodes):
            if root in index:
                continue
            # Iterative Tarjan to avoid recursion limits on deep graphs.
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = index_counter
                    lowlink[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adjacency.get(node, [])
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index:
                        work.append((node, child_index))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def condensation_order(self) -> list[set[str]]:
        """SCCs ordered so that dependencies come before dependents."""
        return self.strongly_connected_components()

    # ------------------------------------------------------------------ #
    # Cycle analysis
    # ------------------------------------------------------------------ #
    def negative_cycle_predicates(self) -> set[str]:
        """Predicates lying on a cycle through a negative or mixed arc.

        A program is stratified exactly when this set is empty.
        """
        offenders: set[str] = set()
        for component in self.strongly_connected_components():
            if len(component) == 1:
                only = next(iter(component))
                polarity = self.polarity(only, only)
                if polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED):
                    offenders.add(only)
                continue
            for source, target, polarity in self.arcs():
                if (
                    source in component
                    and target in component
                    and polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED)
                ):
                    offenders.update(component)
                    break
        return offenders

    def reachable_from(self, node: str) -> set[str]:
        """All predicates reachable by directed paths from *node* (including
        itself via the null path, as in Definition 8.3)."""
        seen = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen


def build_dependency_graph(program: Program, idb_only: bool = False) -> DependencyGraph:
    """Build the dependency graph of *program*.

    With ``idb_only`` set, arcs into EDB predicates are skipped; this is the
    graph used for the "strict in the IDB" notion of Section 8.2.
    """
    graph = DependencyGraph()
    edb = program.edb_predicates() if idb_only else set()
    for rule in program:
        head = rule.head.predicate
        graph.add_node(head)
        occurrences: dict[str, ArcPolarity] = {}
        for literal in rule.body:
            target = literal.predicate
            if idb_only and target in edb:
                continue
            polarity = ArcPolarity.POSITIVE if literal.positive else ArcPolarity.NEGATIVE
            existing = occurrences.get(target)
            occurrences[target] = polarity if existing is None else existing.merge(polarity)
        for target, polarity in occurrences.items():
            graph.add_arc(head, target, polarity)
    # Ensure isolated body-only predicates appear as nodes too.
    for rule in program:
        for literal in rule.body:
            if not idb_only or literal.predicate not in edb:
                graph.add_node(literal.predicate)
    return graph
