"""Dependency graphs with polarity labels, at two granularities.

Definition 8.3 of the paper: the dependency graph of a program has the
relation symbols as nodes, with an arc from ``p`` to ``q`` whenever some
rule for ``p`` uses ``q`` in its body.  The arc is labelled *positive*,
*negative*, or *mixed* according to the polarities with which ``q`` occurs
across those rules.

Two instantiations of the same structure live here:

* :class:`DependencyGraph` — the *predicate-level* graph of Definition 8.3,
  driving stratification, strictness and the Section 8.2 analyses;
* :class:`AtomDependencyGraph` — the *ground-atom-level* graph of a ground
  program (or :class:`~repro.core.context.GroundContext`), driving local
  stratification and the component-wise well-founded evaluator of
  :mod:`repro.core.modular`.

Both share one iterative Tarjan SCC implementation (:func:`tarjan_scc`),
which emits components callees-first — i.e. already in the bottom-up
condensation order the component-wise evaluator consumes.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping, Sequence, TypeVar, Union

from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..resilience.budget import current_meter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.context import GroundContext

__all__ = [
    "ArcPolarity",
    "DependencyGraph",
    "AtomDependencyGraph",
    "build_dependency_graph",
    "build_atom_dependency_graph",
    "tarjan_scc",
]

Node = TypeVar("Node", bound=Hashable)


def tarjan_scc(
    nodes: Iterable[Node],
    adjacency: Mapping[Node, Sequence[Node]],
) -> list[set[Node]]:
    """Strongly connected components of a directed graph, callees first.

    *nodes* fixes the root visiting order (and therefore the tie-breaking
    between independent components); *adjacency* maps each node to its
    successors.  The iterative formulation avoids recursion limits on deep
    graphs — ground atom graphs routinely reach tens of thousands of nodes.
    Components are emitted in reverse topological order: every successor of
    a component member that lies outside the component belongs to an
    earlier component.
    """
    index_counter = 0
    stack: list[Node] = []
    lowlink: dict[Node, int] = {}
    index: dict[Node, int] = {}
    on_stack: set[Node] = set()
    components: list[set[Node]] = []

    # Condensation runs between the grounding and evaluation checkpoints
    # of a budgeted solve; ticking the ambient meter keeps the longest
    # checkpoint-free stretch bounded on graphs with many nodes.
    meter = current_meter()
    for root in nodes:
        meter.tick("condense", stride=512)
        if root in index:
            continue
        work: list[tuple[Node, int]] = [(root, 0)]
        while work:
            meter.tick("condense", stride=1024)
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = adjacency.get(node, ())
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work.append((node, child_index))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


class ArcPolarity(enum.Enum):
    """Label of a dependency arc (Definition 8.3)."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    MIXED = "mixed"

    def merge(self, other: "ArcPolarity") -> "ArcPolarity":
        """Combine evidence from two occurrences of the same dependency."""
        if self is other:
            return self
        return ArcPolarity.MIXED


@dataclass
class DependencyGraph:
    """Directed graph over predicate names with polarity-labelled arcs."""

    nodes: set[str] = field(default_factory=set)
    _arcs: dict[tuple[str, str], ArcPolarity] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str) -> None:
        self.nodes.add(name)

    def add_arc(self, source: str, target: str, polarity: ArcPolarity) -> None:
        """Add (or merge) an arc ``source -> target`` with the given polarity."""
        self.nodes.add(source)
        self.nodes.add(target)
        key = (source, target)
        existing = self._arcs.get(key)
        self._arcs[key] = polarity if existing is None else existing.merge(polarity)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def arcs(self) -> Iterator[tuple[str, str, ArcPolarity]]:
        for (source, target), polarity in self._arcs.items():
            yield source, target, polarity

    def polarity(self, source: str, target: str) -> ArcPolarity | None:
        return self._arcs.get((source, target))

    def successors(self, node: str) -> set[str]:
        return {target for (source, target) in self._arcs if source == node}

    def predecessors(self, node: str) -> set[str]:
        return {source for (source, target) in self._arcs if target == node}

    def has_negative_arc(self) -> bool:
        return any(
            polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED)
            for polarity in self._arcs.values()
        )

    # ------------------------------------------------------------------ #
    # Strongly connected components (shared iterative Tarjan)
    # ------------------------------------------------------------------ #
    def strongly_connected_components(self) -> list[set[str]]:
        """SCCs in reverse topological order (callees before callers)."""
        adjacency: dict[str, list[str]] = defaultdict(list)
        for source, target, _ in self.arcs():
            adjacency[source].append(target)
        return tarjan_scc(sorted(self.nodes), adjacency)

    def condensation_order(self) -> list[set[str]]:
        """SCCs ordered so that dependencies come before dependents."""
        return self.strongly_connected_components()

    # ------------------------------------------------------------------ #
    # Cycle analysis
    # ------------------------------------------------------------------ #
    def negative_cycle_predicates(self) -> set[str]:
        """Predicates lying on a cycle through a negative or mixed arc.

        A program is stratified exactly when this set is empty.
        """
        offenders: set[str] = set()
        for component in self.strongly_connected_components():
            if len(component) == 1:
                only = next(iter(component))
                polarity = self.polarity(only, only)
                if polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED):
                    offenders.add(only)
                continue
            for source, target, polarity in self.arcs():
                if (
                    source in component
                    and target in component
                    and polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED)
                ):
                    offenders.update(component)
                    break
        return offenders

    def reachable_from(self, node: str) -> set[str]:
        """All predicates reachable by directed paths from *node* (including
        itself via the null path, as in Definition 8.3)."""
        seen = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen


def build_dependency_graph(program: Program, idb_only: bool = False) -> DependencyGraph:
    """Build the dependency graph of *program*.

    With ``idb_only`` set, arcs into EDB predicates are skipped; this is the
    graph used for the "strict in the IDB" notion of Section 8.2.
    """
    graph = DependencyGraph()
    edb = program.edb_predicates() if idb_only else set()
    for rule in program:
        head = rule.head.predicate
        graph.add_node(head)
        occurrences: dict[str, ArcPolarity] = {}
        for literal in rule.body:
            target = literal.predicate
            if idb_only and target in edb:
                continue
            polarity = ArcPolarity.POSITIVE if literal.positive else ArcPolarity.NEGATIVE
            existing = occurrences.get(target)
            occurrences[target] = polarity if existing is None else existing.merge(polarity)
        for target, polarity in occurrences.items():
            graph.add_arc(head, target, polarity)
    # Ensure isolated body-only predicates appear as nodes too.
    for rule in program:
        for literal in rule.body:
            if not idb_only or literal.predicate not in edb:
                graph.add_node(literal.predicate)
    return graph


# --------------------------------------------------------------------- #
# Ground-atom-level dependency graphs
# --------------------------------------------------------------------- #
@dataclass
class AtomDependencyGraph:
    """The Definition 8.3 graph at ground-atom granularity.

    Nodes are ground atoms; there is an arc from a rule's head atom to each
    of its body atoms, labelled with the polarity the body atom occurs with
    (merged to *mixed* across occurrences).  Internally an arc is stored as
    membership of the target in the per-source positive and/or negative
    target sets — the representation the hot consumers
    (:mod:`repro.core.modular`, local stratification) actually probe — and
    ``adjacency`` keeps the deduplicated successor lists the SCC
    computation walks.
    """

    nodes: set[Atom] = field(default_factory=set)
    adjacency: dict[Atom, list[Atom]] = field(default_factory=dict)
    _positive: dict[Atom, set[Atom]] = field(default_factory=dict)
    _negative: dict[Atom, set[Atom]] = field(default_factory=dict)

    # -- construction --------------------------------------------------- #
    def add_node(self, atom: Atom) -> None:
        self.nodes.add(atom)

    def add_arc(self, source: Atom, target: Atom, polarity: ArcPolarity) -> None:
        """Add (or polarity-merge) an arc ``source -> target``."""
        self.nodes.add(source)
        self.nodes.add(target)
        if self.polarity(source, target) is None:
            self.adjacency.setdefault(source, []).append(target)
        if polarity in (ArcPolarity.POSITIVE, ArcPolarity.MIXED):
            self._positive.setdefault(source, set()).add(target)
        if polarity in (ArcPolarity.NEGATIVE, ArcPolarity.MIXED):
            self._negative.setdefault(source, set()).add(target)

    # -- queries --------------------------------------------------------- #
    def arcs(self) -> Iterator[tuple[Atom, Atom, ArcPolarity]]:
        for source, targets in self.adjacency.items():
            for target in targets:
                yield source, target, self.polarity(source, target)

    def polarity(self, source: Atom, target: Atom) -> ArcPolarity | None:
        positive = target in self._positive.get(source, ())
        negative = target in self._negative.get(source, ())
        if positive and negative:
            return ArcPolarity.MIXED
        if positive:
            return ArcPolarity.POSITIVE
        if negative:
            return ArcPolarity.NEGATIVE
        return None

    def successors(self, atom: Atom) -> Sequence[Atom]:
        return self.adjacency.get(atom, ())

    def has_negative_arc(self) -> bool:
        return any(targets for targets in self._negative.values())

    # -- condensation ---------------------------------------------------- #
    def strongly_connected_components(self) -> list[set[Atom]]:
        """SCCs callees-first.  Roots are visited in textual atom order, so
        the ordering of independent components is stable across runs (set
        iteration order would vary with the hash seed)."""
        return tarjan_scc(sorted(self.nodes, key=str), self.adjacency)

    def condensation_order(self) -> list[set[Atom]]:
        """SCCs ordered so that dependencies come before dependents — the
        evaluation order of the component-wise well-founded evaluator."""
        return self.strongly_connected_components()

    def negative_arc_within(self, component: set[Atom]) -> bool:
        """Does some negative (or mixed) arc stay inside *component*?

        Components with such an arc have negation through recursion and
        need the full alternating fixpoint; without one they are locally
        stratified and fall to cheaper evaluation methods.
        """
        for source in component:
            targets = self._negative.get(source)
            if targets and not targets.isdisjoint(component):
                return True
        return False

    def negative_cycle_atoms(self) -> set[Atom]:
        """Atoms lying on a cycle through a negative or mixed arc.

        A ground program is locally stratified exactly when this is empty.
        """
        offenders: set[Atom] = set()
        for component in self.strongly_connected_components():
            if self.negative_arc_within(component):
                offenders.update(component)
        return offenders


def build_atom_dependency_graph(
    source: Union[Program, "GroundContext"],
) -> AtomDependencyGraph:
    """Build the ground-atom dependency graph of a ground program or of a
    prepared :class:`~repro.core.context.GroundContext`.

    From a context, every atom of the base becomes a node (facts and
    body-only atoms included), so isolated atoms still receive their own
    singleton components; from a raw program, the occurring atoms do.  The
    context path is the hot one (the component-wise evaluator calls it per
    run), so it builds the per-source target sets in bulk instead of going
    through :meth:`AtomDependencyGraph.add_arc`.
    """
    graph = AtomDependencyGraph()
    if isinstance(source, Program):
        source.require_ground()
        for rule in source:
            graph.add_node(rule.head)
            for literal in rule.body:
                graph.add_arc(
                    rule.head,
                    literal.atom,
                    ArcPolarity.POSITIVE if literal.positive else ArcPolarity.NEGATIVE,
                )
        return graph

    positive: dict[Atom, set[Atom]] = {}
    negative: dict[Atom, set[Atom]] = {}
    meter = current_meter()
    for rule in source.rules:
        meter.tick("condense", stride=512)
        head = rule.head
        if rule.positive_body:
            targets = positive.get(head)
            if targets is None:
                targets = positive[head] = set()
            targets.update(rule.positive_body)
        if rule.negative_body:
            targets = negative.get(head)
            if targets is None:
                targets = negative[head] = set()
            targets.update(rule.negative_body)

    adjacency: dict[Atom, list[Atom]] = {}
    for head in positive.keys() | negative.keys():
        merged = positive.get(head, set()) | negative.get(head, set())
        adjacency[head] = list(merged)

    graph.nodes = set(source.base)
    graph.adjacency = adjacency
    graph._positive = positive
    graph._negative = negative
    return graph
