"""Static analysis of logic programs: dependency graphs, stratification,
local stratification, strictness (Definition 8.3), and classification."""

from .classification import ProgramClassification, classify
from .dependency import (
    ArcPolarity,
    AtomDependencyGraph,
    DependencyGraph,
    build_atom_dependency_graph,
    build_dependency_graph,
    tarjan_scc,
)
from .local_stratification import LocalStratification, is_locally_stratified, locally_stratify
from .stratification import Stratification, is_stratified, stratify
from .strictness import StrictnessAnalysis, analyse_strictness, is_strict, is_strict_in_idb

__all__ = [
    "ProgramClassification",
    "classify",
    "ArcPolarity",
    "AtomDependencyGraph",
    "DependencyGraph",
    "build_atom_dependency_graph",
    "build_dependency_graph",
    "tarjan_scc",
    "LocalStratification",
    "is_locally_stratified",
    "locally_stratify",
    "Stratification",
    "is_stratified",
    "stratify",
    "StrictnessAnalysis",
    "analyse_strictness",
    "is_strict",
    "is_strict_in_idb",
]
