"""Static analysis of logic programs: dependency graphs, stratification,
local stratification, strictness (Definition 8.3), and classification."""

from .classification import ProgramClassification, classify
from .dependency import ArcPolarity, DependencyGraph, build_dependency_graph
from .local_stratification import LocalStratification, is_locally_stratified, locally_stratify
from .stratification import Stratification, is_stratified, stratify
from .strictness import StrictnessAnalysis, analyse_strictness, is_strict, is_strict_in_idb

__all__ = [
    "ProgramClassification",
    "classify",
    "ArcPolarity",
    "DependencyGraph",
    "build_dependency_graph",
    "LocalStratification",
    "is_locally_stratified",
    "locally_stratify",
    "Stratification",
    "is_stratified",
    "stratify",
    "StrictnessAnalysis",
    "analyse_strictness",
    "is_strict",
    "is_strict_in_idb",
]
