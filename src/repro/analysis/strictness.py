"""Strictness and the globally-positive / globally-negative partition.

Definition 8.3 of the paper: a pair of relations ``(p, q)`` is *strict* when
every dependency path from ``p`` to ``q`` traverses an even number of
negative arcs and no mixed arcs (strictly positive), or every path traverses
an odd number (strictly negative), or there is no path at all.  A program is
*strict* when every ordered pair is strict, and *strict in the IDB* when
every pair of IDB relations is.

For programs strict in the IDB, the IDB relations split into two sets — the
*globally positive* and *globally negative* relations — such that relations
in the same set are pairwise strictly positive (or unrelated) and relations
in different sets strictly negative (or unrelated).  That partition is what
the Section 8 simulation theorems (8.5–8.7) are stated in terms of, and the
FOL subpackage consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..datalog.rules import Program
from .dependency import ArcPolarity, DependencyGraph, build_dependency_graph

__all__ = ["StrictnessAnalysis", "analyse_strictness", "is_strict", "is_strict_in_idb"]


@dataclass(frozen=True)
class StrictnessAnalysis:
    """Result of the strictness analysis of a program.

    ``parities[(p, q)]`` is a frozenset of path parities (0 = even number of
    negative arcs, 1 = odd) over all dependency paths from ``p`` to ``q``
    that avoid mixed arcs; ``mixed_reachable`` contains pairs connected by a
    path through a mixed arc.  A pair is strict when it is not mixed-reachable
    and has at most one parity.
    """

    parities: Mapping[tuple[str, str], frozenset[int]]
    mixed_reachable: frozenset[tuple[str, str]]
    idb_predicates: frozenset[str]

    # ------------------------------------------------------------------ #
    def pair_is_strict(self, source: str, target: str) -> bool:
        if (source, target) in self.mixed_reachable:
            return False
        return len(self.parities.get((source, target), frozenset())) <= 1

    def strictly_positive(self, source: str, target: str) -> bool:
        """Every path from *source* to *target* has an even negation count."""
        return (
            (source, target) not in self.mixed_reachable
            and self.parities.get((source, target)) == frozenset({0})
        )

    def strictly_negative(self, source: str, target: str) -> bool:
        return (
            (source, target) not in self.mixed_reachable
            and self.parities.get((source, target)) == frozenset({1})
        )

    @property
    def is_strict(self) -> bool:
        """Every ordered pair of relations is strict."""
        pairs = set(self.parities) | set(self.mixed_reachable)
        return all(self.pair_is_strict(s, t) for s, t in pairs)

    @property
    def is_strict_in_idb(self) -> bool:
        """Every ordered pair of IDB relations is strict."""
        pairs = set(self.parities) | set(self.mixed_reachable)
        return all(
            self.pair_is_strict(s, t)
            for s, t in pairs
            if s in self.idb_predicates and t in self.idb_predicates
        )

    def global_partition(self) -> Optional[tuple[frozenset[str], frozenset[str]]]:
        """Split the IDB into (globally positive, globally negative) sets.

        Returns ``None`` when the program is not strict in the IDB.  The
        partition is computed by two-colouring: relations connected by a
        strictly-negative pair get opposite colours, relations connected by
        a strictly-positive pair the same colour.  Predicates unrelated to
        everything default to the globally positive side.
        """
        if not self.is_strict_in_idb:
            return None
        colour: dict[str, int] = {}
        predicates = sorted(self.idb_predicates)

        def paint(start: str) -> bool:
            colour[start] = 0
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for other in predicates:
                    for source, target in ((current, other), (other, current)):
                        parity_set = self.parities.get((source, target))
                        if not parity_set or len(parity_set) != 1:
                            continue
                        parity = next(iter(parity_set))
                        wanted = colour[current] ^ parity
                        if other not in colour:
                            colour[other] = wanted
                            frontier.append(other)
                        elif colour[other] != wanted:
                            return False
            return True

        for predicate in predicates:
            if predicate not in colour:
                if not paint(predicate):
                    return None
        positive = frozenset(p for p in predicates if colour.get(p, 0) == 0)
        negative = frozenset(p for p in predicates if colour.get(p, 0) == 1)
        return positive, negative


def analyse_strictness(program: Program, idb_only: bool = True) -> StrictnessAnalysis:
    """Compute path parities between all predicate pairs of *program*.

    ``idb_only`` restricts the underlying dependency graph to IDB
    predicates, matching the "strict in the IDB" notion used by Section 8.
    """
    graph: DependencyGraph = build_dependency_graph(program, idb_only=idb_only)
    idb = frozenset(program.idb_predicates())

    # parity_reachable[(p, q)] ⊆ {0, 1}: parities of negation counts along
    # mixed-free paths from p to q.  The null path gives parity 0 from every
    # node to itself (Definition 8.3).
    parities: dict[tuple[str, str], set[int]] = {}
    mixed: set[tuple[str, str]] = set()
    for node in graph.nodes:
        parities[(node, node)] = {0}

    changed = True
    while changed:
        changed = False
        for source, target, polarity in graph.arcs():
            if polarity is ArcPolarity.MIXED:
                # Any pair (x, y) with a mixed-free path x→source is spoiled
                # for every y reachable from target (and target itself).
                reach = graph.reachable_from(target)
                for (origin, end), _ in list(parities.items()):
                    if end == source:
                        for destination in reach:
                            if (origin, destination) not in mixed:
                                mixed.add((origin, destination))
                                changed = True
                for destination in reach:
                    for origin in graph.nodes:
                        has_path_to_source = (origin, source) in parities or origin == source
                        if has_path_to_source and (origin, destination) not in mixed:
                            mixed.add((origin, destination))
                            changed = True
                continue
            arc_parity = 0 if polarity is ArcPolarity.POSITIVE else 1
            for (origin, end), parity_set in list(parities.items()):
                if end != source:
                    continue
                bucket = parities.setdefault((origin, target), set())
                for parity in list(parity_set):
                    combined = parity ^ arc_parity
                    if combined not in bucket:
                        bucket.add(combined)
                        changed = True

    frozen = {pair: frozenset(values) for pair, values in parities.items()}
    return StrictnessAnalysis(frozen, frozenset(mixed), idb)


def is_strict(program: Program) -> bool:
    """True when every ordered pair of relations of *program* is strict."""
    return analyse_strictness(program, idb_only=False).is_strict


def is_strict_in_idb(program: Program) -> bool:
    """True when every ordered pair of IDB relations of *program* is strict."""
    return analyse_strictness(program, idb_only=True).is_strict_in_idb
