"""Semi-naive indexed evaluation engine.

* :mod:`repro.evaluation.indexes`   — per-context rule indexes: watch lists
  per ground body atom plus Dowling–Gallier counter seeds;
* :mod:`repro.evaluation.seminaive` — the delta-driven least-fixpoint
  driver, supporting the two-argument ``C_P(I⁺, Ĩ)`` form with a fixed
  negative context;
* :mod:`repro.evaluation.engine`    — the ``"seminaive"`` / ``"naive"``
  strategy dispatch the rest of the stack talks to.

The semi-naive engine is the default everywhere; the naive engine re-scans
all rules exactly as the paper's definitions read and serves as the
differential-testing oracle.
"""

from .engine import (
    DEFAULT_STRATEGY,
    EVALUATION_STRATEGIES,
    NaiveEngine,
    SeminaiveEngine,
    get_engine,
    validate_strategy,
)
from .indexes import RuleIndex, build_index, get_index
from .seminaive import (
    active_rules_for_negative,
    seminaive_closure,
    seminaive_consequence,
    seminaive_rounds,
    seminaive_step,
    supported_atoms,
)

__all__ = [
    "DEFAULT_STRATEGY",
    "EVALUATION_STRATEGIES",
    "NaiveEngine",
    "SeminaiveEngine",
    "get_engine",
    "validate_strategy",
    "RuleIndex",
    "build_index",
    "get_index",
    "active_rules_for_negative",
    "seminaive_closure",
    "seminaive_consequence",
    "seminaive_rounds",
    "seminaive_step",
    "supported_atoms",
]
