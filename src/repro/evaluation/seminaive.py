"""Semi-naive, delta-driven fixpoint evaluation.

Every least fixpoint the paper needs — ``S_P(Ĩ)`` (Definition 4.2), Horn
closure ``T_P↑ω``, the externally-supported set behind ``U_P``
(Definition 6.1), and stratum saturation of the perfect-model computation —
is an instance of one propagation scheme:

    seed some atoms, keep per-rule counters of unsatisfied positive body
    literals, and when an atom is newly derived decrement the counters of
    the rules watching it; a rule whose counter hits zero fires its head.

Each derived atom enters the frontier exactly once, so a run costs
O(total body size) instead of the naive O(rounds × rules × body).  The
frontier is processed in rounds, and the deltas are recorded: round ``k``
holds exactly the atoms first derivable at naive stage ``k + 1``, which the
differential tests check against the literal ``T_{P∪Ĩ}`` iteration.

All entry points take the two-argument ``C_P(I⁺, Ĩ)`` form with a *fixed*
negative context, so the same engine serves Horn closure (``Ĩ = ∅``), the
eventual consequence ``S_P`` inside the stability and alternating
transformations, and the unfounded-set computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Iterable, Sequence

from ..datalog.atoms import Atom
from ..fixpoint.lattice import NegativeSet
from ..resilience.budget import current_meter
from .indexes import RuleIndex, get_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.context import GroundContext
    from ..fixpoint.interpretations import PartialInterpretation

__all__ = [
    "active_rules_for_negative",
    "seminaive_closure",
    "seminaive_consequence",
    "seminaive_rounds",
    "seminaive_step",
    "supported_atoms",
]


def _smaller_side(atoms, mapping) -> Iterable[Atom]:
    """The atoms present in both collections, iterated from whichever side
    is smaller (*atoms* supports ``len`` and containment; *mapping* is a
    watch-list dict)."""
    if len(atoms) <= len(mapping):
        return (atom for atom in atoms if atom in mapping)
    return (atom for atom in mapping if atom in atoms)


def active_rules_for_negative(context: "GroundContext", negative: NegativeSet) -> bytearray:
    """Activation flags: rule ``r`` is active iff its negative body is
    contained in ``Ĩ`` (the rules of ``P ∪ Ĩ`` that can ever fire).

    Instead of testing every rule body against ``Ĩ``, the negative watch
    lists are walked from whichever side is smaller — the negative context
    or the set of negatively watched atoms.
    """
    index = get_index(context)
    pending = list(index.negative_counts)
    watchers = index.negative_watchers
    for atom in _smaller_side(negative, watchers):
        for rule in watchers[atom]:
            pending[rule] -= 1
    return bytearray(1 if left == 0 else 0 for left in pending)


def _propagate(
    index: RuleIndex,
    seed: Iterable[Atom],
    active: Sequence[int],
    record_rounds: bool = False,
) -> tuple[set[Atom], list[frozenset[Atom]]]:
    """Counter propagation from *seed* over the *active* rules.

    Returns the derived set and, when *record_rounds* is set, the per-round
    deltas (round 0 is the seed plus the heads of active rules with empty
    positive body); the hot-path callers skip the delta snapshots.
    """
    remaining = index.fresh_counters()
    heads = index.heads
    watchers = index.watchers
    # Ambient budget meter, fetched once per propagation: one strided
    # checkpoint per frontier round bounds how long a runaway closure can
    # outlive its deadline without taxing the per-atom inner loop.
    meter = current_meter()

    derived: set[Atom] = set()
    frontier: list[Atom] = []
    for atom in seed:
        if atom not in derived:
            derived.add(atom)
            frontier.append(atom)
    for rule in range(len(heads)):
        if active[rule] and remaining[rule] == 0:
            head = heads[rule]
            if head not in derived:
                derived.add(head)
                frontier.append(head)

    rounds: list[frozenset[Atom]] = []
    while frontier:
        meter.tick("evaluate", stride=16)
        if record_rounds:
            rounds.append(frozenset(frontier))
        current, frontier = frontier, []
        for atom in current:
            for rule in watchers.get(atom, ()):
                if not active[rule]:
                    continue
                remaining[rule] -= 1
                if remaining[rule] == 0:
                    head = heads[rule]
                    if head not in derived:
                        derived.add(head)
                        frontier.append(head)
    return derived, rounds


def seminaive_closure(
    context: "GroundContext",
    seed: Iterable[Atom],
    active: Sequence[int],
) -> frozenset[Atom]:
    """Least set containing *seed* and closed under the *active* rules
    (negative bodies are the caller's responsibility, encoded in the
    activation flags)."""
    derived, _ = _propagate(get_index(context), seed, active)
    return frozenset(derived)


def seminaive_consequence(context: "GroundContext", negative: NegativeSet) -> frozenset[Atom]:
    """``S_P(Ĩ)`` — the least fixpoint of ``T_{P∪Ĩ}`` — by delta
    propagation: O(total body size) per call."""
    derived, _ = _propagate(
        get_index(context), context.facts, active_rules_for_negative(context, negative)
    )
    return frozenset(derived)


def seminaive_rounds(context: "GroundContext", negative: NegativeSet) -> list[frozenset[Atom]]:
    """The per-round deltas of the ``S_P(Ĩ)`` propagation.

    The union of rounds ``0..k`` equals the naive stage ``T_{P∪Ĩ}↑(k+1)``,
    which is how the differential tests pin the delta discipline down.
    """
    _, rounds = _propagate(
        get_index(context),
        context.facts,
        active_rules_for_negative(context, negative),
        record_rounds=True,
    )
    return rounds


def seminaive_step(
    context: "GroundContext",
    positive: AbstractSet[Atom],
    negative: NegativeSet,
) -> frozenset[Atom]:
    """One application of ``C_P(I⁺, Ĩ)`` (Definition 3.6) via the index.

    Counters are seeded from the watch lists of the atoms in ``I⁺`` rather
    than by scanning every rule body, so a step costs O(rules + adjacency of
    I⁺) instead of O(rules × body size).
    """
    index = get_index(context)
    active = active_rules_for_negative(context, negative)
    remaining = index.fresh_counters()
    watchers = index.watchers
    for atom in _smaller_side(positive, watchers):
        for rule in watchers[atom]:
            remaining[rule] -= 1
    derived: set[Atom] = set(context.facts)
    heads = index.heads
    for rule, left in enumerate(remaining):
        if left == 0 and active[rule]:
            derived.add(heads[rule])
    return frozenset(derived)


def supported_atoms(
    context: "GroundContext",
    interpretation: "PartialInterpretation",
) -> frozenset[Atom]:
    """The externally supported atoms of Definition 6.1's complement.

    An atom is supported when some rule for it has no body literal false in
    *interpretation* and all its positive body atoms supported.  Rules are
    killed through the watch lists of the interpretation's decided atoms;
    the survivors propagate with the shared counters.  ``U_P(I)`` is the
    base minus this set.
    """
    index = get_index(context)
    active = bytearray(b"\x01") * index.rule_count
    watchers = index.watchers
    negative_watchers = index.negative_watchers

    for atom in _smaller_side(interpretation.false_atoms, watchers):
        for rule in watchers[atom]:
            active[rule] = 0

    for atom in _smaller_side(interpretation.true_atoms, negative_watchers):
        for rule in negative_watchers[atom]:
            active[rule] = 0

    derived, _ = _propagate(index, context.facts, active)
    return frozenset(derived)
