"""Rule indexes for semi-naive, delta-driven evaluation.

The fixpoint operators of the paper are all driven by the same question:
*which ground rules are affected when an atom's status changes?*  The naive
operators answer it by re-scanning every rule; this module answers it in
O(1) per (atom, rule) pair with a :class:`RuleIndex` built once per
:class:`~repro.core.context.GroundContext`:

* ``watchers``          — for each ground atom, the rules with that atom in
  their *positive* body (one entry per distinct body atom, so counter
  decrements are exact);
* ``negative_watchers`` — the same for *negative* body occurrences, used to
  decide in O(|Ĩ|·adjacency) which rules a negative context activates;
* ``positive_counts`` / ``negative_counts`` — per-rule counts of distinct
  positive / negative body atoms, the initial values of the Dowling–Gallier
  counters: a rule fires the moment its counter reaches zero, i.e. in O(1)
  when its *last* unsatisfied body literal is resolved.

Indexes are immutable and cached on the context (contexts are frozen and
reused across operators), so every semantics computed on one grounding
shares a single index build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..datalog.atoms import Atom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.context import GroundContext

__all__ = ["RuleIndex", "build_index", "get_index"]

_INDEX_ATTRIBUTE = "_seminaive_rule_index"


@dataclass(frozen=True)
class RuleIndex:
    """Watch lists and counter seeds for one ground program.

    ``heads[r]`` is the head of rule ``r``; ``positive_counts[r]`` /
    ``negative_counts[r]`` the number of *distinct* atoms in its positive /
    negative body.  ``watchers[a]`` / ``negative_watchers[a]`` list the
    rules watching atom ``a`` positively / negatively, each rule at most
    once per atom.
    """

    heads: tuple[Atom, ...]
    positive_counts: tuple[int, ...]
    negative_counts: tuple[int, ...]
    watchers: Mapping[Atom, tuple[int, ...]]
    negative_watchers: Mapping[Atom, tuple[int, ...]]
    definite_rules: tuple[int, ...]

    @property
    def rule_count(self) -> int:
        return len(self.heads)

    def fresh_counters(self) -> list[int]:
        """A mutable copy of the positive-body counters, ready for one
        propagation run."""
        return list(self.positive_counts)

    def statistics(self) -> dict[str, int]:
        return {
            "rules": len(self.heads),
            "definite_rules": len(self.definite_rules),
            "watched_atoms": len(self.watchers),
            "negatively_watched_atoms": len(self.negative_watchers),
            "watch_entries": sum(len(v) for v in self.watchers.values()),
            "negative_watch_entries": sum(len(v) for v in self.negative_watchers.values()),
        }


def build_index(context: "GroundContext") -> RuleIndex:
    """Construct the :class:`RuleIndex` of a ground context.

    The positive watch lists reuse ``context.rules_by_positive_atom`` (which
    is already deduplicated per rule); the negative watch lists and counter
    seeds are derived here in one pass over the rules.
    """
    heads: list[Atom] = []
    positive_counts: list[int] = []
    negative_counts: list[int] = []
    negative_watchers: dict[Atom, list[int]] = {}
    definite: list[int] = []

    for index, rule in enumerate(context.rules):
        heads.append(rule.head)
        positive_counts.append(len(set(rule.positive_body)))
        distinct_negative = set(rule.negative_body)
        negative_counts.append(len(distinct_negative))
        if not distinct_negative:
            definite.append(index)
        for atom in distinct_negative:
            negative_watchers.setdefault(atom, []).append(index)

    return RuleIndex(
        heads=tuple(heads),
        positive_counts=tuple(positive_counts),
        negative_counts=tuple(negative_counts),
        watchers=context.rules_by_positive_atom,
        negative_watchers={atom: tuple(ids) for atom, ids in negative_watchers.items()},
        definite_rules=tuple(definite),
    )


def get_index(context: "GroundContext") -> RuleIndex:
    """The context's rule index, built on first use and cached.

    Contexts are frozen dataclasses, so the cache is attached with
    ``object.__setattr__``; the index is itself immutable, making the shared
    instance safe across every operator evaluated on the context.
    """
    cached = getattr(context, _INDEX_ATTRIBUTE, None)
    if cached is None:
        cached = build_index(context)
        object.__setattr__(context, _INDEX_ATTRIBUTE, cached)
    return cached
