"""Evaluation strategy dispatch: ``"seminaive"`` versus ``"naive"``.

The operators in :mod:`repro.core` and the semantics modules take a
``strategy`` keyword and resolve it here.  Two engines implement the same
four primitives:

* ``step(context, positive, negative)``   — one ``C_P(I⁺, Ĩ)`` application;
* ``consequence(context, negative)``      — the least fixpoint ``S_P(Ĩ)``;
* ``closure(context, seed, active)``      — least set containing *seed*
  closed under the rules flagged *active* (negative conditions are encoded
  in the flags by the caller);
* ``supported(context, interpretation)``  — the externally supported atoms
  whose complement is the greatest unfounded set ``U_P(I)``.

:class:`SeminaiveEngine` is the indexed, counter-based implementation from
:mod:`repro.evaluation.seminaive` and is the default everywhere.
:class:`NaiveEngine` evaluates each primitive by literally re-scanning the
ground rules, exactly as the paper's definitions read; it is kept as the
differential-testing oracle, mirroring the existing ``naive_ground`` /
``relevant_ground`` split in the grounder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Iterable, Sequence

# Canonical definitions live in repro.config (the one validation point for
# every evaluation option); re-exported here for the historical import path.
from ..config import DEFAULT_STRATEGY, EVALUATION_STRATEGIES, validate_strategy
from ..datalog.atoms import Atom
from ..fixpoint.lattice import NegativeSet
from .seminaive import (
    active_rules_for_negative,
    seminaive_closure,
    seminaive_consequence,
    seminaive_step,
    supported_atoms,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.context import GroundContext
    from ..fixpoint.interpretations import PartialInterpretation

__all__ = [
    "EVALUATION_STRATEGIES",
    "DEFAULT_STRATEGY",
    "validate_strategy",
    "get_engine",
    "SeminaiveEngine",
    "NaiveEngine",
]

class SeminaiveEngine:
    """Indexed, delta-driven evaluation (the default)."""

    name = "seminaive"

    def step(
        self,
        context: "GroundContext",
        positive: AbstractSet[Atom],
        negative: NegativeSet,
    ) -> frozenset[Atom]:
        return seminaive_step(context, positive, negative)

    def consequence(self, context: "GroundContext", negative: NegativeSet) -> frozenset[Atom]:
        return seminaive_consequence(context, negative)

    def closure(
        self,
        context: "GroundContext",
        seed: Iterable[Atom],
        active: Sequence[int],
    ) -> frozenset[Atom]:
        return seminaive_closure(context, seed, active)

    def supported(
        self, context: "GroundContext", interpretation: "PartialInterpretation"
    ) -> frozenset[Atom]:
        return supported_atoms(context, interpretation)


class NaiveEngine:
    """Scan-everything evaluation, exactly as the definitions read."""

    name = "naive"

    def step(
        self,
        context: "GroundContext",
        positive: AbstractSet[Atom],
        negative: NegativeSet,
    ) -> frozenset[Atom]:
        derived: set[Atom] = set(context.facts)
        for rule in context.rules:
            if all(atom in positive for atom in rule.positive_body) and all(
                atom in negative for atom in rule.negative_body
            ):
                derived.add(rule.head)
        return frozenset(derived)

    def consequence(self, context: "GroundContext", negative: NegativeSet) -> frozenset[Atom]:
        current: frozenset[Atom] = frozenset()
        while True:
            following = self.step(context, current, negative)
            if following == current:
                return current
            current = following

    def closure(
        self,
        context: "GroundContext",
        seed: Iterable[Atom],
        active: Sequence[int],
    ) -> frozenset[Atom]:
        derived: set[Atom] = set(seed)
        changed = True
        while changed:
            changed = False
            for index, rule in enumerate(context.rules):
                if not active[index] or rule.head in derived:
                    continue
                if all(atom in derived for atom in rule.positive_body):
                    derived.add(rule.head)
                    changed = True
        return frozenset(derived)

    def supported(
        self, context: "GroundContext", interpretation: "PartialInterpretation"
    ) -> frozenset[Atom]:
        usable: list[int] = []
        for index, rule in enumerate(context.rules):
            killed = any(
                interpretation.is_false(atom) for atom in rule.positive_body
            ) or any(interpretation.is_true(atom) for atom in rule.negative_body)
            if not killed:
                usable.append(index)
        supported: set[Atom] = set(context.facts)
        changed = True
        while changed:
            changed = False
            for index in usable:
                rule = context.rules[index]
                if rule.head in supported:
                    continue
                if all(atom in supported for atom in rule.positive_body):
                    supported.add(rule.head)
                    changed = True
        return frozenset(supported)


_ENGINES = {
    "seminaive": SeminaiveEngine(),
    "naive": NaiveEngine(),
}


def get_engine(strategy: str = DEFAULT_STRATEGY):
    """The engine implementing *strategy* (shared stateless instances)."""
    return _ENGINES[validate_strategy(strategy)]
