"""repro — a reproduction of Van Gelder's alternating fixpoint (PODS 1989).

The package implements the alternating fixpoint characterisation of the
well-founded semantics for logic programs with negation, together with the
substrates it rests on (a Datalog engine with grounding and analysis) and
the semantics it is compared against (stable models, stratified, Fitting,
inflationary).

Quickstart
----------
>>> from repro import parse_program, alternating_fixpoint
>>> program = parse_program('''
...     move(a, b).  move(b, a).  move(b, c).
...     wins(X) :- move(X, Y), not wins(Y).
... ''')
>>> result = alternating_fixpoint(program)
>>> sorted(str(a) for a in result.true_atoms() if a.predicate == "wins")
['wins(b)']

For a long-lived, updatable database use a :class:`KnowledgeBase` — facts
are asserted and retracted against a live session and the solved model
stays warm across updates.  On *ground* rule sets (propositional or
pre-grounded programs) under the well-founded defaults, maintenance is
incremental: only the dependency-graph components downstream of a change
are re-solved.  Non-ground rules, as below, transparently re-solve in
full with identical results:

>>> from repro import KnowledgeBase
>>> kb = KnowledgeBase("wins(X) :- move(X, Y), not wins(Y).")
>>> kb.load({"move": [("a", "b"), ("b", "a"), ("b", "c")]})
3
>>> sorted(kb.query("wins"))
[('b',)]
"""

from .datalog import (
    Atom,
    Database,
    Literal,
    Program,
    ProgramBuilder,
    Rule,
    atom,
    neg,
    parse_program,
    parse_rule,
    pos,
)
from .core import (
    AlternatingFixpointResult,
    ModularResult,
    afp_model,
    alternating_fixpoint,
    modular_well_founded,
    stable_models,
    well_founded_model,
)
from .config import EngineConfig
from .engine import Solution, answers, ask, solve
from .evaluation import DEFAULT_STRATEGY, EVALUATION_STRATEGIES
from .fixpoint import PartialInterpretation, TruthValue
from .resilience import Budget, CancelToken
from .session import KnowledgeBase, ResultSet, UpdateStats
from .storage import FactStore, MemoryStore, SqliteStore, open_store

__version__ = "1.4.0"

__all__ = [
    "Atom",
    "Database",
    "Literal",
    "Program",
    "ProgramBuilder",
    "Rule",
    "atom",
    "neg",
    "parse_program",
    "parse_rule",
    "pos",
    "AlternatingFixpointResult",
    "ModularResult",
    "afp_model",
    "alternating_fixpoint",
    "modular_well_founded",
    "stable_models",
    "well_founded_model",
    "EngineConfig",
    "Budget",
    "CancelToken",
    "KnowledgeBase",
    "ResultSet",
    "UpdateStats",
    "Solution",
    "answers",
    "ask",
    "solve",
    "DEFAULT_STRATEGY",
    "EVALUATION_STRATEGIES",
    "PartialInterpretation",
    "TruthValue",
    "FactStore",
    "MemoryStore",
    "SqliteStore",
    "open_store",
    "__version__",
]
