"""Plain-text report rendering.

The examples, the CLI, and the benchmark harness all need to show the same
few artefacts — a Table-I style iteration trace, a three-valued model, a
game solution, a cross-semantics comparison — as readable fixed-width
tables.  Centralising the formatting here keeps those front-ends small and
the output consistent.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .core.alternating import AlternatingFixpointResult
from .datalog.atoms import Atom
from .fixpoint.interpretations import PartialInterpretation
from .semantics.comparison import SemanticsComparison

__all__ = [
    "format_table",
    "render_trace",
    "render_model",
    "render_comparison",
    "render_game",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header rule."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    output = [line(list(headers)), line(["-" * w for w in widths])]
    output.extend(line(row) for row in materialised)
    return "\n".join(output)


def _atoms_text(atoms: Iterable[Atom], predicate: Optional[str] = None, negate: bool = False) -> str:
    wanted = sorted(
        str(a) for a in atoms if predicate is None or a.predicate == predicate
    )
    if negate:
        wanted = [f"not {text}" for text in wanted]
    return "{" + ", ".join(wanted) + "}"


def render_trace(result: AlternatingFixpointResult, predicate: Optional[str] = None) -> str:
    """Render the alternating-fixpoint iteration as the paper's Table I.

    ``predicate`` restricts the display to one relation (handy for win–move
    games where the EDB atoms would drown the interesting part).
    """
    rows = []
    for stage in result.stages:
        rows.append(
            (
                stage.index,
                "under" if stage.is_underestimate else "over",
                _atoms_text(stage.negative.atoms, predicate, negate=True),
                _atoms_text(stage.positive, predicate),
            )
        )
    return format_table(("k", "kind", "Ĩ_k", "S_P(Ĩ_k)"), rows)


def render_model(
    interpretation: PartialInterpretation,
    base: Optional[Iterable[Atom]] = None,
    predicate: Optional[str] = None,
) -> str:
    """Render a partial interpretation as three labelled rows."""
    rows = [
        ("true", _atoms_text(interpretation.true_atoms, predicate)),
        ("false", _atoms_text(interpretation.false_atoms, predicate)),
    ]
    if base is not None:
        undefined = interpretation.undefined_atoms(frozenset(base))
        rows.append(("undefined", _atoms_text(undefined, predicate)))
    return format_table(("verdict", "atoms"), rows)


def render_comparison(comparison: SemanticsComparison, atoms: Sequence[Atom]) -> str:
    """Render a per-atom verdict table across all semantics."""
    columns = [
        ("well_founded", "WFS"),
        ("alternating_fixpoint", "AFP"),
        ("fitting", "Fitting"),
        ("stratified", "Stratified"),
        ("inflationary", "IFP"),
        ("stable", "Stable"),
    ]
    rows = []
    for atom in atoms:
        verdicts = comparison.verdicts_for(atom)
        rows.append([str(atom)] + [verdicts[key] for key, _ in columns])
    return format_table(["atom"] + [label for _, label in columns], rows)


def render_game(solution) -> str:
    """Render a :class:`repro.games.winmove.GameSolution`."""
    rows = [
        ("won", ", ".join(sorted(map(str, solution.won)))),
        ("lost", ", ".join(sorted(map(str, solution.lost)))),
        ("drawn", ", ".join(sorted(map(str, solution.drawn)))),
    ]
    return format_table(("status", "positions"), rows)
