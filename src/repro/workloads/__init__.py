"""Program and graph workload generators for tests and benchmarks."""

from .generators import (
    complement_of_transitive_closure_program,
    layered_program,
    random_negative_loop_program,
    random_nonground_program,
    random_propositional_program,
    reachability_program,
    same_generation_program,
    transitive_closure_program,
    two_player_choice_program,
    well_founded_nodes_program,
)

__all__ = [
    "complement_of_transitive_closure_program",
    "layered_program",
    "random_negative_loop_program",
    "random_nonground_program",
    "random_propositional_program",
    "reachability_program",
    "same_generation_program",
    "transitive_closure_program",
    "two_player_choice_program",
    "well_founded_nodes_program",
]
