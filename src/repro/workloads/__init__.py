"""Program and graph workload generators for tests and benchmarks."""

from .generators import (
    access_policy_program,
    complement_of_transitive_closure_program,
    layered_program,
    random_negative_loop_program,
    random_nonground_program,
    random_propositional_program,
    reachability_program,
    same_generation_program,
    social_graph_program,
    transitive_closure_program,
    two_player_choice_program,
    well_founded_nodes_program,
)
from .streams import (
    StreamOp,
    access_policy_stream,
    churn_stream,
    social_graph_stream,
)

__all__ = [
    "StreamOp",
    "access_policy_program",
    "access_policy_stream",
    "churn_stream",
    "complement_of_transitive_closure_program",
    "layered_program",
    "random_negative_loop_program",
    "random_nonground_program",
    "random_propositional_program",
    "reachability_program",
    "same_generation_program",
    "social_graph_program",
    "social_graph_stream",
    "transitive_closure_program",
    "two_player_choice_program",
    "well_founded_nodes_program",
]
