"""Workload generators: programs for benchmarks and property-based tests.

Four families matter for reproducing the paper and scaling it up:

* *graph programs* — transitive closure, same-generation, its complement,
  reachability, sources/sinks, and the well-founded-nodes program of
  Example 8.2; together with the win–move game these are the non-ground
  workloads the grounding benchmarks sweep over EDB graphs;
* *win–move games* — provided by :mod:`repro.games`;
* *random ground programs* — propositional programs with controlled rule
  counts, body sizes and negation density, used by the property-based tests
  (Theorem 7.8 equivalence, stable-model containment, monotonicity of
  ``A_P``) and by the scaling benchmarks;
* *random non-ground programs* — safe-by-construction normal programs with
  variables, used by the grounder differential tests (indexed semi-naive
  grounding versus the scan oracle versus ``naive_ground``).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.builder import ProgramBuilder
from ..datalog.rules import Program, Rule

__all__ = [
    "transitive_closure_program",
    "complement_of_transitive_closure_program",
    "reachability_program",
    "same_generation_program",
    "well_founded_nodes_program",
    "layered_program",
    "random_propositional_program",
    "random_negative_loop_program",
    "random_nonground_program",
    "social_graph_program",
    "access_policy_program",
    "two_player_choice_program",
]

Edge = tuple[object, object]


def _graph_facts(builder: ProgramBuilder, edges: Iterable[Edge], relation: str = "edge") -> list[object]:
    nodes: list[object] = []
    seen: set[object] = set()
    for source, target in edges:
        builder.fact(relation, source, target)
        for node in (source, target):
            if node not in seen:
                seen.add(node)
                nodes.append(node)
    for node in nodes:
        builder.fact("node", node)
    return nodes


def transitive_closure_program(edges: Iterable[Edge]) -> Program:
    """The standard transitive-closure rules over the given edge facts."""
    builder = ProgramBuilder()
    _graph_facts(builder, edges)
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Y")])
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Z"), ("tc", "Z", "Y")])
    return builder.build()


def complement_of_transitive_closure_program(edges: Iterable[Edge]) -> Program:
    """Example 2.2 / Section 8.5: ``ntc`` as the negation of ``tc``.

    Stratified, so the stratified / well-founded / stable semantics all
    compute the true complement; the inflationary semantics famously does
    not (benchmark E4).
    """
    builder = ProgramBuilder()
    _graph_facts(builder, edges)
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Y")])
    builder.rule(("tc", "X", "Y"), [("edge", "X", "Z"), ("tc", "Z", "Y")])
    builder.rule(("ntc", "X", "Y"), [("node", "X"), ("node", "Y"), ("not", "tc", "X", "Y")])
    return builder.build()


def reachability_program(edges: Iterable[Edge], sources: Sequence[object]) -> Program:
    """Reachability from a set of source nodes."""
    builder = ProgramBuilder()
    _graph_facts(builder, edges)
    for source in sources:
        builder.fact("source", source)
    builder.rule(("reach", "X"), [("source", "X")])
    builder.rule(("reach", "Y"), [("reach", "X"), ("edge", "X", "Y")])
    return builder.build()


def same_generation_program(parent_edges: Iterable[Edge]) -> Program:
    """The classic same-generation program over a parenthood relation.

    ``sg(X, Y)`` holds when ``X`` and ``Y`` are the same number of
    generations below some common view of the family forest::

        sg(X, X) :- node(X).
        sg(X, Y) :- parent(P, X), parent(Q, Y), sg(P, Q).

    The recursive rule's three-way join (two ``parent`` probes around a
    recursive ``sg`` delta) is the standard stress test for grounder join
    ordering and argument indexes.
    """
    builder = ProgramBuilder()
    _graph_facts(builder, parent_edges, relation="parent")
    builder.rule(("sg", "X", "X"), [("node", "X")])
    builder.rule(
        ("sg", "X", "Y"),
        [("parent", "P", "X"), ("parent", "Q", "Y"), ("sg", "P", "Q")],
    )
    return builder.build()


def well_founded_nodes_program(edges: Iterable[Edge]) -> Program:
    """Example 8.2 in its normal-program form.

    ``w(X)`` holds when node ``X`` has no infinite descending chain of
    ``e``-edges *into* it; ``u`` is the auxiliary "unfounded" relation the
    paper extracts from the negative existential subformula::

        w(X) :- node(X), not u(X).
        u(X) :- e(Y, X), not w(Y).
    """
    builder = ProgramBuilder()
    _graph_facts(builder, edges, relation="e")
    builder.rule(("w", "X"), [("node", "X"), ("not", "u", "X")])
    builder.rule(("u", "X"), [("e", "Y", "X"), ("not", "w", "Y")])
    return builder.build()


def layered_program(layers: int, layer_size: int) -> Program:
    """Stacked negation clusters connected by positive arcs — the
    adversarial workload for *monolithic* alternating-fixpoint evaluation.

    Each layer ``ℓ`` is gated by ``base(ℓ)`` (a fact for layer 0, derived
    from the layer below otherwise) and contains:

    * a **negation chain** ``chain(ℓ, i) ← base(ℓ) ∧ ¬chain(ℓ, i+1)`` of
      *layer_size* atoms: atom-level *acyclic*, yet the monolithic
      alternation needs ``Θ(layer_size)`` global stages to settle it one
      rung per alternation — while every rung is a singleton SCC the
      component-wise evaluator resolves in O(1);
    * an **undefined triangle** ``undef(ℓ, k) ← base(ℓ) ∧
      ¬undef(ℓ, k+1 mod 3)``: negation through recursion, all three atoms
      undefined — the per-component alternating fixpoint fires here;
    * two **observers** of the triangle, ``frontier(ℓ) ← undef(ℓ, 0)``
      and ``shadow(ℓ) ← base(ℓ) ∧ ¬undef(ℓ, 0)``: undefined through a
      literal resting on an unresolved component below — the stratified
      double-closure method fires here;
    * the **positive bridge** to the next layer,
      ``bridge(ℓ) ← chain(ℓ, layer_size−2)`` and
      ``base(ℓ+1) ← bridge(ℓ)`` (``chain(ℓ, layer_size−2)`` is true
      whenever the gate is, since the chain's top rung is false).

    The program is ground; monolithic evaluation costs
    ``Θ(layer_size × layers·layer_size)`` while component-wise evaluation
    is near-linear in the program size.
    """
    layers = max(1, layers)
    size = max(2, layer_size)
    builder = ProgramBuilder()
    for layer in range(layers):
        if layer == 0:
            builder.fact("base", 0)
        else:
            builder.rule(("base", layer), [("bridge", layer - 1)])
        for i in range(size - 1):
            builder.rule(
                ("chain", layer, i),
                [("base", layer), ("not", "chain", layer, i + 1)],
            )
        builder.rule(("bridge", layer), [("chain", layer, size - 2)])
        for k in range(3):
            builder.rule(
                ("undef", layer, k),
                [("base", layer), ("not", "undef", layer, (k + 1) % 3)],
            )
        builder.rule(("frontier", layer), [("undef", layer, 0)])
        builder.rule(("shadow", layer), [("base", layer), ("not", "undef", layer, 0)])
    return builder.build()


def random_propositional_program(
    atoms: int,
    rules: int,
    seed: int = 0,
    max_body: int = 3,
    negation_probability: float = 0.4,
    fact_probability: float = 0.15,
) -> Program:
    """A random ground propositional program.

    Atom names are ``p0 .. p{atoms-1}``.  Each rule picks a random head and
    up to ``max_body`` random body atoms, each negated with the given
    probability; a slice of the rules become facts.  Deterministic per seed.
    """
    generator = random.Random(seed)
    names = [f"p{i}" for i in range(max(1, atoms))]
    produced: list[Rule] = []
    for _ in range(rules):
        head = Atom(generator.choice(names), ())
        if generator.random() < fact_probability:
            produced.append(Rule(head))
            continue
        body_size = generator.randint(1, max(1, max_body))
        body: list[Literal] = []
        for _ in range(body_size):
            atom = Atom(generator.choice(names), ())
            positive = generator.random() >= negation_probability
            body.append(Literal(atom, positive))
        produced.append(Rule(head, tuple(body)))
    return Program(produced)


def random_nonground_program(
    constants: int = 4,
    edb_relations: int = 2,
    idb_relations: int = 2,
    facts: int = 10,
    rules: int = 6,
    seed: int = 0,
    max_body: int = 3,
    negation_probability: float = 0.25,
) -> Program:
    """A random *non-ground* normal program, safe by construction.

    EDB relations ``e0..`` (arity 1–2) receive random facts over constants
    ``c0..``; each of the *rules* IDB rules draws a random positive body
    over EDB and IDB relations with variable-or-constant arguments, then —
    with the given probability — one negative literal and finally a head
    whose arguments are restricted to positively bound variables and
    constants, so every generated rule is range-restricted.  Deterministic
    per seed; with ``negation_probability=0`` the result is definite.  The
    small constant pool keeps ``naive_ground`` tractable, which is what the
    grounder differential tests need.
    """
    generator = random.Random(seed)
    builder = ProgramBuilder()
    constant_pool = [f"c{i}" for i in range(max(1, constants))]
    edb = [(f"e{i}", generator.choice((1, 2))) for i in range(max(1, edb_relations))]
    idb = [(f"r{i}", generator.choice((1, 2))) for i in range(max(1, idb_relations))]
    variable_pool = ["X", "Y", "Z"]

    for _ in range(max(1, facts)):
        name, arity = generator.choice(edb)
        builder.fact(name, *(generator.choice(constant_pool) for _ in range(arity)))

    def bound_or_constant(bound: list[str]) -> str:
        if bound and generator.random() < 0.8:
            return generator.choice(bound)
        return generator.choice(constant_pool)

    for _ in range(max(1, rules)):
        head_name, head_arity = generator.choice(idb)
        body: list[tuple] = []
        bound_variables: list[str] = []
        for _ in range(generator.randint(1, max(1, max_body))):
            name, arity = generator.choice(edb + idb)
            args = []
            for _ in range(arity):
                if generator.random() < 0.8:
                    variable = generator.choice(variable_pool)
                    args.append(variable)
                    bound_variables.append(variable)
                else:
                    args.append(generator.choice(constant_pool))
            body.append((name, *args))
        if bound_variables and generator.random() < negation_probability:
            name, arity = generator.choice(edb + idb)
            body.append(
                ("not", name, *(bound_or_constant(bound_variables) for _ in range(arity)))
            )
        head_args = (bound_or_constant(bound_variables) for _ in range(head_arity))
        builder.rule((head_name, *head_args), body)
    return builder.build()


def random_negative_loop_program(pairs: int, seed: int = 0) -> Program:
    """A program made of ``a_i :- not b_i.  b_i :- not a_i.`` choice pairs.

    Every pair doubles the number of stable models (2^pairs total) while the
    well-founded model leaves all of them undefined — the worst case for
    stable-model enumeration and the flattest case for the alternating
    fixpoint, used by benchmark E8.
    """
    generator = random.Random(seed)
    builder = ProgramBuilder()
    order = list(range(pairs))
    generator.shuffle(order)
    for index in order:
        builder.proposition(f"a{index}", f"-b{index}")
        builder.proposition(f"b{index}", f"-a{index}")
    return builder.build()


def social_graph_program(
    people: int, extra_edges: int = 0, back_edges: int = 0, seed: int = 0
) -> Program:
    """A ground social-graph reachability workload for streaming churn.

    *people* nodes ``0 .. people-1`` form a follow backbone
    ``follows(i, i+1)`` **doubled** by a parallel ``endorses(i, i+1)``
    relation, so every backbone hop has two independent supports —
    retracting one backbone edge is the redundant-support churn that
    atom-level counting maintenance absorbs in O(1) while component-level
    invalidation re-solves the whole downstream closure.  *extra_edges*
    seeded random **forward** ``follows`` edges (more redundancy, graph
    stays acyclic) and *back_edges* seeded short backward edges (each
    closes a small local cycle, so recursive components exist but their
    delete-and-rederive cones stay bounded) are layered on top.  The
    derived relations::

        reach(p)      :- seed(p).                    % seed(0) is a fact
        reach(v)      :- reach(u), follows(u, v).    % per follow edge
        reach(v)      :- reach(u), endorses(u, v).   % per endorse edge
        influencer(p) :- reach(p), not muted(p).     % non-recursive ¬
        isolated(p)   :- person(p), not reach(p).

    Everything is pre-ground per edge/person, so the program qualifies
    for incremental maintenance; acyclic ``reach`` atoms are counting
    singletons, the back-edge loops are DRed components, and
    ``influencer`` / ``isolated`` form a wide counting frontier.
    Deterministic per seed.
    """
    people = max(2, people)
    generator = random.Random(seed)
    builder = ProgramBuilder()
    builder.fact("seed", 0)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()

    def add_edge(source: int, target: int) -> None:
        if source != target and (source, target) not in seen:
            seen.add((source, target))
            builder.fact("follows", source, target)
            edges.append((source, target))

    for person in range(people):
        builder.fact("person", person)
        if person + 1 < people:
            for relation in ("follows", "endorses"):
                builder.fact(relation, person, person + 1)
            edges.append((person, person + 1))
            seen.add((person, person + 1))
    for _ in range(max(0, extra_edges)):
        source = generator.randrange(people - 1)
        add_edge(source, generator.randrange(source + 1, people))
    for _ in range(max(0, back_edges)):
        source = generator.randrange(1, people)
        add_edge(source, max(0, source - generator.randint(1, 4)))
    for person in range(people):
        builder.rule(("reach", person), [("seed", person)])
        builder.rule(
            ("influencer", person),
            [("reach", person), ("not", "muted", person)],
        )
        builder.rule(
            ("isolated", person),
            [("person", person), ("not", "reach", person)],
        )
    for source, target in edges:
        builder.rule(
            ("reach", target), [("reach", source), ("follows", source, target)]
        )
        if target == source + 1:
            builder.rule(
                ("reach", target),
                [("reach", source), ("endorses", source, target)],
            )
    return builder.build()


def access_policy_program(
    users: int, groups: int = 4, resources: int = 8, seed: int = 0
) -> Program:
    """A ground access-control policy workload for streaming churn.

    Users belong to seeded random groups; groups hold grants on
    resources; access composes membership with grants minus explicit
    denials, with an admin override::

        allow(u, r)  :- member(u, g), grants(g, r).   % per (u, g, r)
        access(u, r) :- allow(u, r), not denied(u, r).
        access(u, r) :- admin(u), resource(r).
        flagged(u)   :- admin(u), not trusted(u).

    Entirely non-recursive once ground — every derived atom is a
    counting singleton, the pure counter-maintenance regime (group
    membership and denial churn each touch O(affected rules) counters).
    Deterministic per seed.
    """
    users = max(1, users)
    groups = max(1, groups)
    resources = max(1, resources)
    generator = random.Random(seed)
    builder = ProgramBuilder()
    membership: dict[int, list[int]] = {}
    grants: dict[int, list[int]] = {}
    for group in range(groups):
        granted = sorted(
            generator.sample(range(resources), generator.randint(1, resources))
        )
        grants[group] = granted
        for resource in granted:
            builder.fact("grants", group, resource)
    for resource in range(resources):
        builder.fact("resource", resource)
    for user in range(users):
        joined = sorted(
            generator.sample(range(groups), generator.randint(1, min(2, groups)))
        )
        membership[user] = joined
        for group in joined:
            builder.fact("member", user, group)
        if generator.random() < 0.05:
            builder.fact("admin", user)
        if generator.random() < 0.5:
            builder.fact("trusted", user)
    for user in range(users):
        builder.rule(("flagged", user), [("admin", user), ("not", "trusted", user)])
        for resource in range(resources):
            builder.rule(
                ("access", user, resource),
                [("allow", user, resource), ("not", "denied", user, resource)],
            )
            builder.rule(
                ("access", user, resource),
                [("admin", user), ("resource", resource)],
            )
        for group in range(groups):
            for resource in grants[group]:
                builder.rule(
                    ("allow", user, resource),
                    [("member", user, group), ("grants", group, resource)],
                )
    return builder.build()


def two_player_choice_program(pairs: int, winners: int = 1) -> Program:
    """Choice pairs plus a few atoms forced true through double negation.

    Gives programs whose well-founded model is partial but not empty, with
    a predictable split of true / false / undefined atoms — handy for
    calibrating the figure-2 style convergence benchmark.
    """
    builder = ProgramBuilder()
    for index in range(pairs):
        builder.proposition(f"a{index}", f"-b{index}")
        builder.proposition(f"b{index}", f"-a{index}")
    for index in range(winners):
        builder.proposition(f"win{index}", f"-lose{index}")
        builder.proposition(f"lose{index}", f"-dead{index}")
        builder.fact(f"dead{index}")
    return builder.build()
