"""Seeded churn streams over the streaming workload generators.

A *stream* is a deterministic sequence of :class:`StreamOp` assert /
retract operations against a generated program's EDB — the input the
streaming benchmark replays against a live session (and, in coalesced
form, against the query service).  :func:`churn_stream` is the generic
engine: it walks a pool of candidate atoms with a seeded RNG, tracking
the simulated EDB so every emitted operation is a *real* mutation
(retract only what is present, assert only what is absent) — the same
property the stores' change notifications have.

The two wrappers pair a generator with its natural churn surface:

* :func:`social_graph_stream` — churn over the follow backbone (every
  hop keeps a parallel ``endorses`` support, so backbone churn is the
  redundant-support case atom-level maintenance absorbs in O(1)) and
  over ``muted`` flags (pure counting churn on the ``influencer``
  frontier);
* :func:`access_policy_stream` — churn over ``denied`` tuples, group
  ``member`` ships and ``trusted`` flags: every derived atom is a
  counting singleton, so each operation touches O(affected rules)
  counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..datalog.atoms import Atom, Constant
from ..datalog.rules import Program
from .generators import access_policy_program, social_graph_program

__all__ = [
    "StreamOp",
    "churn_stream",
    "social_graph_stream",
    "access_policy_stream",
]


@dataclass(frozen=True)
class StreamOp:
    """One streamed EDB mutation: ``kind`` is ``"assert"`` or
    ``"retract"``, applied to the ground ``atom``."""

    kind: str
    atom: Atom


def _ground(predicate: str, *values: object) -> Atom:
    return Atom(predicate, tuple(Constant(value) for value in values))


def churn_stream(
    pool: Sequence[Atom],
    present: set[Atom],
    steps: int,
    seed: int = 0,
) -> list[StreamOp]:
    """*steps* seeded churn operations over *pool*.

    *present* names the pool atoms currently in the EDB; each step picks
    a pool atom uniformly and flips it — retract if present, assert
    otherwise — updating the simulated state, so replaying the stream
    from the same starting EDB applies every operation as a genuine
    mutation.  Deterministic per seed; *present* is left at the
    simulated final state (callers may pass a copy to keep the original).
    """
    generator = random.Random(seed)
    operations: list[StreamOp] = []
    candidates = list(pool)
    for _ in range(max(0, steps)):
        atom = generator.choice(candidates)
        if atom in present:
            present.discard(atom)
            operations.append(StreamOp("retract", atom))
        else:
            present.add(atom)
            operations.append(StreamOp("assert", atom))
    return operations


def social_graph_stream(
    people: int,
    extra_edges: int = 0,
    back_edges: int = 0,
    steps: int = 100,
    seed: int = 0,
) -> tuple[Program, list[StreamOp]]:
    """A :func:`social_graph_program` plus a churn stream over its follow
    backbone and ``muted`` flags.  Deterministic per seed."""
    people = max(2, people)
    program = social_graph_program(people, extra_edges, back_edges, seed=seed)
    pool: list[Atom] = []
    present: set[Atom] = set()
    for person in range(people - 1):
        edge = _ground("follows", person, person + 1)
        pool.append(edge)
        present.add(edge)  # backbone edges start asserted
    for person in range(people):
        pool.append(_ground("muted", person))  # flags start absent
    return program, churn_stream(pool, present, steps, seed=seed)


def access_policy_stream(
    users: int,
    groups: int = 4,
    resources: int = 8,
    steps: int = 100,
    seed: int = 0,
) -> tuple[Program, list[StreamOp]]:
    """An :func:`access_policy_program` plus a churn stream over denials,
    memberships and trust flags.  Deterministic per seed."""
    program = access_policy_program(users, groups, resources, seed=seed)
    facts = {rule.head for rule in program.facts()}
    generator = random.Random(seed)
    pool: list[Atom] = []
    for user in range(max(1, users)):
        pool.append(_ground("trusted", user))
        pool.append(_ground("member", user, generator.randrange(max(1, groups))))
        for _ in range(2):
            pool.append(
                _ground("denied", user, generator.randrange(max(1, resources)))
            )
    # Deduplicate while keeping the seeded order stable.
    pool = list(dict.fromkeys(pool))
    present = {atom for atom in pool if atom in facts}
    return program, churn_stream(pool, present, steps, seed=seed)
