"""The concurrency engine of the query service.

:class:`QueryService` turns a single-threaded
:class:`~repro.session.KnowledgeBase` into something many threads can hit
at once, by splitting the session's surface along its natural grain:

* **Reads are snapshot-isolated.**  The service keeps one *published*
  :class:`~repro.session.SessionSnapshot` — an immutable (solution,
  pinned-store-view, epoch) triple — and every read request serves
  entirely from it.  Publishing is a single reference assignment, so
  readers need no lock: a request observes exactly one epoch from its
  first byte to its last, no matter how many writes land meanwhile.
* **Writes are serialized.**  All mutations funnel through a bounded
  admission queue into one writer thread, which applies them against the
  knowledge base under a store savepoint, refreshes the model, publishes
  the next snapshot, and only then acknowledges.  A failure anywhere —
  an injected storage fault, a budget deadline, a refusal to solve —
  rolls the savepoint back, so the knowledge base (and the published
  snapshot) stay at the last good epoch and readers never notice.
  With ``EngineConfig(refresh="coalesce")`` the writer additionally
  drains a window of already-queued requests per iteration and applies
  them under **one** savepoint and **one** model refresh (one delta
  maintenance pass), acknowledging each request with the shared epoch —
  under churn this amortises the refresh across the backlog.  A window
  that fails falls back to applying its requests individually, so one
  poisoned request cannot fail its neighbours.
* **Load is shed, not queued without bound.**  When the write queue is
  full (or the concurrent-reader gate is exhausted) the request is
  rejected immediately with :class:`AdmissionRejected`, which the HTTP
  layer maps to ``503 + Retry-After``.  Every request runs under a
  per-request :class:`~repro.resilience.Budget` deadline; tripping it maps
  to the budget error payload (HTTP 504), cancellation to 499.

The service reuses the shared retry helper
(:func:`repro.resilience.retry.retry_call`) on the writer path: a
transient storage failure (``database is locked``, a scripted
once-off :class:`~repro.resilience.InjectedFault`) is retried with
backoff-plus-jitter before the request is failed.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.parser import parse_atom
from ..exceptions import (
    BudgetError,
    NotGroundError,
    ReproError,
    StorageError,
    StoreCorrupt,
)
from ..fixpoint.interpretations import TruthValue
from ..obs.recorder import Recorder
from ..resilience.budget import Budget, CancelToken, metered
from ..resilience.retry import RetryPolicy, retry_call
from ..session.knowledge_base import KnowledgeBase, SessionSnapshot

__all__ = [
    "AdmissionRejected",
    "QueryService",
    "ServiceClosed",
    "WriteOutcome",
]

#: Default bound of the write admission queue.
DEFAULT_QUEUE_SIZE = 64
#: Default bound on concurrently admitted read requests.
DEFAULT_MAX_READERS = 64
#: Upper bound on requests coalesced into one refresh window (also capped
#: by the queue size) — keeps per-window latency and rollback scope small.
MAX_COALESCE_WINDOW = 32
#: Hint (seconds) sent as ``Retry-After`` with shed requests.
RETRY_AFTER_HINT = 1


class AdmissionRejected(ReproError):
    """The service shed this request: the write queue (or the reader gate)
    is full.  Carries the ``Retry-After`` hint the HTTP layer forwards."""

    def __init__(self, message: str, retry_after: int = RETRY_AFTER_HINT):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceClosed(ReproError):
    """The service is draining or stopped and accepts no new requests."""


@dataclass
class WriteOutcome:
    """Acknowledgement of one applied write.

    ``changed`` counts the mutations that actually altered the EDB (an
    assert of a present fact is applied-but-unchanged); ``epoch`` is the
    model version the write's refresh published — every read stamped with
    that epoch (or later) observes the write.
    """

    applied: int
    changed: int
    epoch: int


class _WriteRequest:
    """One queued mutation: the operations, the requester's budget, and
    the completion rendezvous between handler and writer threads."""

    __slots__ = ("operations", "budget", "done", "outcome", "error", "abandoned")

    def __init__(
        self, operations: Sequence[tuple[str, Atom]], budget: Optional[Budget]
    ) -> None:
        self.operations = operations
        self.budget = budget
        self.done = threading.Event()
        self.outcome: Optional[WriteOutcome] = None
        self.error: Optional[BaseException] = None
        self.abandoned = False

    def finish(self, outcome: Optional[WriteOutcome], error: Optional[BaseException]) -> None:
        self.outcome = outcome
        self.error = error
        self.done.set()


#: Sentinel that tells the writer thread to exit after draining the queue.
_SHUTDOWN = object()


def _transient_storage_error(error: BaseException) -> bool:
    """The writer's retry classification: storage-level failures are
    presumed transient (lock contention, scripted faults) **except**
    corruption; everything else — budget aborts, domain errors — is not
    contention and propagates immediately."""
    return isinstance(error, StorageError) and not isinstance(error, StoreCorrupt)


class QueryService:
    """Many concurrent readers, one serialized writer, over a live
    :class:`~repro.session.KnowledgeBase`.

    The service owns the knowledge base once :meth:`start` runs: all
    mutations must go through :meth:`submit` (the writer thread is the
    only thread that touches the session), while reads go through the
    published snapshot (:meth:`snapshot`, :meth:`query`, :meth:`ask`,
    :meth:`explain`).  ``recorder`` defaults to the knowledge base's own
    recorder, so per-request ``service.*`` counters and spans land in the
    same trace as the solves they cause.

    Parameters
    ----------
    kb:
        The session to serve.  Not thread-safe by itself — hand it over
        and do not touch it while the service runs.
    queue_size:
        Bound of the write admission queue; a full queue sheds with
        :class:`AdmissionRejected`.
    max_readers:
        Bound on concurrently admitted reads (each read holds a gate slot
        only while it renders its response).
    default_timeout / max_timeout:
        Per-request wall-clock budget (seconds) applied when the request
        does not name one, and the cap a request may ask for.
    retry_policy:
        Backoff schedule for transient writer-side storage failures.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        max_readers: int = DEFAULT_MAX_READERS,
        default_timeout: Optional[float] = None,
        max_timeout: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size!r}")
        if max_readers < 1:
            raise ValueError(f"max_readers must be >= 1, got {max_readers!r}")
        self._kb = kb
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self.queue_size = queue_size
        self._read_gate = threading.BoundedSemaphore(max_readers)
        self.max_readers = max_readers
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self._retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._recorder = recorder if recorder is not None else kb.recorder
        # Batched refresh: with the session configured refresh="coalesce",
        # the writer drains up to a window of queued requests into one
        # savepoint + one refresh per iteration.
        self._coalesce = kb.config.refresh == "coalesce"
        self._coalesce_window = min(queue_size, MAX_COALESCE_WINDOW)
        self._snapshot: Optional[SessionSnapshot] = None
        self._writer: Optional[threading.Thread] = None
        # Serializes the closed-check-then-enqueue in submit() against
        # stop() flipping ``_closed`` and enqueueing the shutdown
        # sentinel: without it a request could land *after* the sentinel
        # and never be dequeued, blocking its submitter forever.
        self._admission_lock = threading.Lock()
        self._closed = False
        self._started = False
        self._start_time: Optional[float] = None
        self._last_write_error: Optional[str] = None
        # Service-level tallies (lock-guarded: bumped from many threads).
        self._counter_lock = threading.Lock()
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "QueryService":
        """Solve the initial model, publish epoch 1, start the writer."""
        if self._started:
            return self
        self._snapshot = self._kb.snapshot()
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-service-writer", daemon=True
        )
        self._writer.start()
        self._started = True
        self._start_time = time.monotonic()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the writer down.

        ``drain=True`` (the default, and what SIGTERM does) lets the
        writer finish every already-admitted write before exiting, so an
        acknowledged 200 is never silently lost; ``drain=False`` fails the
        queued writes with :class:`ServiceClosed` instead.  Idempotent.
        The knowledge base (and its store) remain the caller's to close —
        after the writer has exited, doing so is safe again.
        """
        with self._admission_lock:
            already_stopped = not self._started or self._closed
            self._closed = True
        if already_stopped:
            return
        if not drain:
            # Fail whatever is still queued; the writer then only sees the
            # sentinel.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _WriteRequest):
                    item.finish(None, ServiceClosed("service stopped before apply"))
        self._queue.put(_SHUTDOWN)
        if self._writer is not None:
            self._writer.join()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def recorder(self) -> Recorder:
        """The recorder per-request spans and ``service.*`` counters land
        in (the knowledge base's own, unless one was passed)."""
        return self._recorder

    @property
    def running(self) -> bool:
        return (
            self._started
            and not self._closed
            and self._writer is not None
            and self._writer.is_alive()
        )

    # ------------------------------------------------------------------ #
    # Reads — everything below serves from the published snapshot
    # ------------------------------------------------------------------ #
    def snapshot(self) -> SessionSnapshot:
        """The currently published epoch's read view.

        Grab it once per request: the reference may be swapped at any
        moment, but the object it points at never mutates.
        """
        snapshot = self._snapshot
        if snapshot is None:
            raise ServiceClosed("service not started")
        return snapshot

    def admit_read(self) -> "_ReadTicket":
        """Admission-control gate for one read request (context manager).

        Non-blocking: when ``max_readers`` requests are already being
        served the request is shed with :class:`AdmissionRejected` rather
        than queued behind them.
        """
        if self._closed:
            raise ServiceClosed("service is shutting down")
        if not self._read_gate.acquire(blocking=False):
            self.count("service.shed_reads")
            raise AdmissionRejected(
                f"read capacity exhausted ({self.max_readers} in flight)"
            )
        return _ReadTicket(self._read_gate)

    def budget_for(self, timeout: Optional[float]) -> Optional[Budget]:
        """The per-request budget: the requested deadline clamped to
        ``max_timeout``, falling back to ``default_timeout``, with a fresh
        :class:`CancelToken` so an abandoned request can be cancelled."""
        seconds = self.default_timeout if timeout is None else timeout
        if seconds is None:
            return None
        seconds = min(float(seconds), self.max_timeout)
        return Budget(max_seconds=seconds, token=CancelToken())

    def query(
        self,
        predicate: str,
        pattern: Optional[Sequence[object]] = None,
        *,
        truth: str = "true",
        page: int = 1,
        per_page: int = 50,
        max_page_size: int = 100,
        budget: Optional[Budget] = None,
    ) -> dict:
        """Paginated, filtered rows of one relation at the published epoch.

        ``truth`` selects the ``"true"`` or ``"undefined"`` stratum of the
        three-valued model.  Rows are deterministically ordered, so two
        pages fetched under the same epoch never overlap or skip.
        """
        if truth not in ("true", "undefined"):
            raise ReproError(f"truth must be 'true' or 'undefined', got {truth!r}")
        page = max(1, int(page))
        per_page = max(1, min(int(per_page), max_page_size))
        snapshot = self.snapshot()
        with metered(budget) as meter:
            rows = snapshot.rows(
                predicate,
                pattern,
                TruthValue.UNDEFINED if truth == "undefined" else TruthValue.TRUE,
            )
            meter.check("service.query")
        total = len(rows)
        start = (page - 1) * per_page
        self.count("service.queries")
        return {
            "predicate": predicate,
            "truth": truth,
            "rows": rows[start : start + per_page],
            "pagination": {
                "page": page,
                "per_page": per_page,
                "total": total,
                "pages": max(1, -(-total // per_page)),
            },
            "epoch": snapshot.epoch,
            "semantics": snapshot.semantics,
        }

    def ask(self, text: str, *, budget: Optional[Budget] = None) -> dict:
        """Three-valued verdict of a ground conjunctive query at the
        published epoch (variables: use :meth:`answers`)."""
        snapshot = self.snapshot()
        with metered(budget) as meter:
            verdict = snapshot.ask(text)
            meter.check("service.ask")
        self.count("service.asks")
        return {"query": text, "verdict": verdict.value, "epoch": snapshot.epoch}

    def answers(
        self,
        text: str,
        *,
        page: int = 1,
        per_page: int = 50,
        max_page_size: int = 100,
        budget: Optional[Budget] = None,
    ) -> dict:
        """Paginated substitutions satisfying a conjunctive query with
        variables, at the published epoch."""
        page = max(1, int(page))
        per_page = max(1, min(int(per_page), max_page_size))
        snapshot = self.snapshot()
        with metered(budget) as meter:
            bindings = sorted(
                (answer.as_dict() for answer in snapshot.answers(text)),
                key=repr,
            )
            meter.check("service.answers")
        total = len(bindings)
        start = (page - 1) * per_page
        self.count("service.asks")
        return {
            "query": text,
            "answers": bindings[start : start + per_page],
            "pagination": {
                "page": page,
                "per_page": per_page,
                "total": total,
                "pages": max(1, -(-total // per_page)),
            },
            "epoch": snapshot.epoch,
        }

    def explain(self, atom_text: str, *, budget: Optional[Budget] = None) -> dict:
        """Justification of one atom's verdict at the published epoch."""
        atom = parse_atom(atom_text)
        snapshot = self.snapshot()
        with metered(budget) as meter:
            meter.check("service.explain")
            explanation = snapshot.explain(atom)
        self.count("service.explains")
        return {
            "atom": str(atom),
            "verdict": snapshot.value_of(atom).value,
            "explanation": explanation.render().splitlines(),
            "epoch": snapshot.epoch,
        }

    def stats(self) -> dict:
        """Service-level statistics: the published epoch's shape plus the
        admission/writer counters.  Served entirely from the snapshot and
        the service's own tallies — never from the live session, which
        belongs to the writer thread."""
        snapshot = self.snapshot()
        with self._counter_lock:
            counters = dict(sorted(self._counters.items()))
        return {
            "epoch": snapshot.epoch,
            "semantics": snapshot.semantics,
            "facts": snapshot.fact_count,
            "store_rows": len(snapshot.store_view),
            "relations": len(snapshot.store_view.signatures()),
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "max_readers": self.max_readers,
            "uptime_s": (
                round(time.monotonic() - self._start_time, 3)
                if self._start_time is not None
                else 0.0
            ),
            "counters": counters,
        }

    def health(self) -> tuple[bool, dict]:
        """Liveness: a snapshot is published and the writer thread is
        running.  Returns ``(healthy, report)``.

        The store probe reads the *published snapshot's* pinned view —
        never the live store, which the writer thread mutates
        concurrently; probing it from handler threads produced spurious
        503s under write load (``dictionary changed size during
        iteration``), exactly what a liveness probe must not do.
        """
        report: dict[str, object] = {}
        healthy = True
        snapshot = self._snapshot
        if snapshot is None:
            healthy = False
            report["store"] = "error: no snapshot published"
        else:
            report["store"] = "ok"
            report["store_rows"] = len(snapshot.store_view)
        writer_ok = self._writer is not None and self._writer.is_alive()
        report["writer"] = "alive" if writer_ok else "stopped"
        if not self._closed and not writer_ok:
            healthy = False
        if self._last_write_error is not None:
            report["last_write_error"] = self._last_write_error
        report["status"] = "ok" if healthy else "unhealthy"
        return healthy, report

    def readiness(self) -> tuple[bool, dict]:
        """Readiness: a snapshot is published, the service accepts work,
        and the refresh backlog has room.  Returns ``(ready, report)``."""
        snapshot = self._snapshot
        backlog = self._queue.qsize()
        ready = (
            self._started
            and not self._closed
            and snapshot is not None
            and self._writer is not None
            and self._writer.is_alive()
            and backlog < self.queue_size
        )
        report = {
            "status": "ready" if ready else "not ready",
            "epoch": 0 if snapshot is None else snapshot.epoch,
            "backlog": backlog,
            "capacity": self.queue_size,
            "draining": self._closed,
        }
        return ready, report

    # ------------------------------------------------------------------ #
    # Writes — admission, the writer thread, rollback
    # ------------------------------------------------------------------ #
    def submit(
        self,
        operations: Sequence[tuple[str, Atom]],
        *,
        budget: Optional[Budget] = None,
    ) -> WriteOutcome:
        """Submit mutations and wait for the writer to apply them.

        ``operations`` is a sequence of ``("assert" | "retract", atom)``
        pairs, applied atomically: either every operation lands in the
        published model, or the whole request rolls back.  A full queue
        sheds immediately with :class:`AdmissionRejected`; a budget
        deadline that trips while queued or mid-apply cancels the request
        and raises the budget error.
        """
        for kind, atom in operations:
            if kind not in ("assert", "retract"):
                raise ReproError(f"unknown operation {kind!r}")
            if not atom.is_ground:
                raise NotGroundError(f"EDB fact {atom} is not ground")
        request = _WriteRequest(tuple(operations), budget)
        # Check-then-enqueue under the admission lock: once stop() has
        # set ``_closed`` (same lock) the sentinel is the queue's last
        # element and nothing may be enqueued behind it.
        with self._admission_lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.count("service.shed_writes")
                raise AdmissionRejected(
                    f"write queue full ({self.queue_size} pending)"
                ) from None
        self.count("service.writes")

        deadline = None
        if budget is not None and budget.max_seconds is not None:
            deadline = time.monotonic() + budget.max_seconds
        timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
        if not request.done.wait(timeout):
            # The deadline expired while the request was queued or being
            # applied.  Cancel cooperatively — the writer rolls back at its
            # next budget checkpoint — and report the budget abort.
            request.abandoned = True
            if budget is not None and budget.token is not None:
                budget.token.cancel()
            self.count("service.budget_aborts")
            raise BudgetError(
                f"write did not complete within {budget.max_seconds:g}s "
                f"(queue depth {self._queue.qsize()})",
                phase="service.write",
                elapsed=budget.max_seconds,
            )
        if request.error is not None:
            if isinstance(request.error, BudgetError):
                self.count("service.budget_aborts")
            raise request.error
        assert request.outcome is not None
        return request.outcome

    def assert_fact(self, atom: Atom, *, budget: Optional[Budget] = None) -> WriteOutcome:
        return self.submit((("assert", atom),), budget=budget)

    def retract_fact(self, atom: Atom, *, budget: Optional[Budget] = None) -> WriteOutcome:
        return self.submit((("retract", atom),), budget=budget)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump one ``service.*`` tally (thread-safe) and mirror it into
        the recorder's counters."""
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + amount
        if self._recorder.enabled:
            self._recorder.count(name, amount)

    # -- writer internals ------------------------------------------------ #
    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            shutdown = item is _SHUTDOWN
            window: list[_WriteRequest] = []
            if not shutdown:
                window.append(item)
                # Coalescing: opportunistically drain whatever else is
                # already queued — never blocking — so one savepoint and
                # one refresh cover the whole backlog.  A sentinel popped
                # mid-drain is honoured *after* the window (and never
                # re-queued): the admission lock guarantees nothing was
                # enqueued behind it.
                while self._coalesce and len(window) < self._coalesce_window:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is _SHUTDOWN:
                        shutdown = True
                        break
                    window.append(extra)
            live: list[_WriteRequest] = []
            for request in window:
                if request.abandoned:
                    # The submitter gave up while we were busy; skip the
                    # work entirely rather than applying a write nobody
                    # awaits.
                    request.finish(None, ServiceClosed("request abandoned"))
                else:
                    live.append(request)
            if len(live) == 1:
                self._apply_and_finish(live[0])
            elif live:
                self._apply_window(live)
            if shutdown:
                # Backstop: the admission lock means nothing should sit
                # behind the sentinel, but fail rather than strand any
                # straggler so its submitter is always woken.
                while True:
                    try:
                        leftover = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(leftover, _WriteRequest):
                        leftover.finish(
                            None, ServiceClosed("service stopped before apply")
                        )
                break

    def _apply_and_finish(self, request: _WriteRequest) -> None:
        try:
            outcome = self._apply(request)
        except BaseException as error:  # noqa: BLE001 - must not kill the writer
            self.count("service.write_failures")
            self._last_write_error = f"{type(error).__name__}: {error}"
            request.finish(None, error)
        else:
            self.count("service.writes_applied")
            request.finish(outcome, None)

    def _apply_window(self, requests: list[_WriteRequest]) -> None:
        """Apply a coalesced window atomically: one savepoint, every
        request's operations, one refresh, one published snapshot; every
        request is acknowledged with the shared epoch.

        Any failure rolls the whole window back and re-applies the
        requests individually through the single-request path — the
        healthy ones still land, and only the poisoned one fails, with
        the same rollback semantics it would have had without coalescing.
        """
        store = self._kb.store
        token = store.savepoint()
        try:
            with self._recorder.span(
                "service.apply_window",
                requests=len(requests),
                operations=sum(len(r.operations) for r in requests),
            ):
                changed_counts: list[int] = []
                for request in requests:
                    changed = 0
                    for kind, atom in request.operations:
                        if kind == "assert":
                            changed += bool(self._kb.assert_fact(atom))
                        else:
                            changed += bool(self._kb.retract_fact(atom))
                    changed_counts.append(changed)
                # The session refreshes lazily, so this is the window's
                # single maintenance pass over every queued mutation.
                snapshot = self._kb.snapshot()
        except BaseException:  # noqa: BLE001 - fall back to per-request apply
            store.rollback_to(token)
            self.count("service.coalesce_fallbacks")
            for request in requests:
                self._apply_and_finish(request)
            return
        store.release(token)
        self._snapshot = snapshot
        self.count("service.coalesced_windows")
        self.count("service.coalesced_requests", len(requests))
        for request, changed in zip(requests, changed_counts):
            self.count("service.writes_applied")
            request.finish(
                WriteOutcome(
                    applied=len(request.operations),
                    changed=changed,
                    epoch=snapshot.epoch,
                ),
                None,
            )

    def _apply(self, request: _WriteRequest) -> WriteOutcome:
        """Apply one write request: mutate under a savepoint, refresh,
        publish the new snapshot — or roll everything back.

        Transient storage faults retry the whole savepoint-wrapped unit
        under the shared backoff policy; each retry starts from the last
        good state because the failed attempt's savepoint was rolled back.
        """

        def _on_retry(attempt: int, error: BaseException) -> None:
            self.count("service.write_retries")

        def _attempt() -> WriteOutcome:
            store = self._kb.store
            token = store.savepoint()
            try:
                with self._recorder.span("service.apply", operations=len(request.operations)):
                    with metered(request.budget) as meter:
                        changed = 0
                        for kind, atom in request.operations:
                            if kind == "assert":
                                changed += bool(self._kb.assert_fact(atom))
                            else:
                                changed += bool(self._kb.retract_fact(atom))
                            meter.tick("service.apply", stride=32)
                        meter.check("service.apply")
                        # The refresh inherits this request's ambient meter,
                        # so the deadline covers mutation + re-solve end to
                        # end; a trip rolls the savepoint back below.
                        snapshot = self._kb.snapshot()
            except BaseException:
                store.rollback_to(token)
                raise
            store.release(token)
            # Publish: one reference assignment — readers pick the new
            # epoch up on their next request; in-flight reads finish on
            # the old snapshot, whose pins the GC releases once the last
            # reader drops it.
            self._snapshot = snapshot
            return WriteOutcome(
                applied=len(request.operations), changed=changed, epoch=snapshot.epoch
            )

        return retry_call(
            _attempt,
            retryable=_transient_storage_error,
            policy=self._retry_policy,
            on_retry=_on_retry,
        )


class _ReadTicket:
    """Context manager releasing one reader-gate slot."""

    __slots__ = ("_gate",)

    def __init__(self, gate: threading.BoundedSemaphore) -> None:
        self._gate = gate

    def __enter__(self) -> "_ReadTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._gate.release()
