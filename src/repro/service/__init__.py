"""Concurrency-safe query service over a :class:`~repro.session.KnowledgeBase`.

The ROADMAP's top open item made concrete: serve well-founded-model
queries to many concurrent clients while a single serialized writer keeps
mutating the store.  Two layers:

* :mod:`repro.service.core` — :class:`QueryService`, the framework-free
  engine: snapshot-isolated reads off an atomically published
  :class:`~repro.session.SessionSnapshot`, a bounded write-admission
  queue feeding one writer thread (shed with :class:`AdmissionRejected`
  when full), per-request :class:`~repro.resilience.Budget` deadlines,
  and savepoint-rollback on writer faults so readers keep serving the
  last good epoch;
* :mod:`repro.service.http` — the stdlib ``http.server`` JSON API
  (``repro serve``): paginated/filtered endpoints, uniform error
  payloads, ``503 + Retry-After`` shedding, ``/healthz``/``/readyz``,
  and SIGTERM draining in-flight requests before the store closes.
"""

from .core import AdmissionRejected, QueryService, ServiceClosed, WriteOutcome
from .http import ServiceHTTPServer, run_server

__all__ = [
    "AdmissionRejected",
    "QueryService",
    "ServiceClosed",
    "ServiceHTTPServer",
    "WriteOutcome",
    "run_server",
]
