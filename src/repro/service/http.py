"""Stdlib HTTP façade over :class:`~repro.service.QueryService`.

A deliberately framework-free JSON API (``http.server`` only — the
container constraint) following the paginated/filtered CRUD idiom:
capped ``page``/``per_page`` parameters, positional filter parameters,
and one uniform error payload shape for every failure::

    {"error": {"code": "<machine-readable>", "message": "...", "status": 503}}

Endpoints
---------
======  ======================  ==================================================
GET     ``/query/<predicate>``  paginated rows; ``page``, ``per_page``,
                                ``truth=true|undefined``, ``timeout``, and
                                positional filters ``a0=..&a1=..`` (JSON-decoded,
                                so ``a0=1`` matches the integer)
GET     ``/ask?q=...``          ground query → verdict; with variables →
                                paginated answer substitutions
GET     ``/explain?atom=...``   justification of one atom's verdict
POST    ``/assert``             body ``{"fact": "edge(1, 2)"}``
POST    ``/retract``            body ``{"fact": "edge(1, 2)"}``
POST    ``/batch``              body ``{"operations": [{"op": "assert",
                                "fact": "..."}, ...]}`` — atomic
GET     ``/stats``              service + snapshot statistics
GET     ``/healthz``            liveness (store answers, writer alive)
GET     ``/readyz``             readiness (snapshot published, backlog < cap)
======  ======================  ==================================================

Status mapping: shed requests → ``503`` with a ``Retry-After`` header;
budget deadline → ``504`` with the budget payload (``phase``,
``elapsed_s``); cooperative cancellation → ``499``; malformed input →
``400``; unknown routes → ``404``.  Every success payload carries the
``epoch`` it was served at, so clients (and the consistency-checking
load test) can correlate responses with model versions.

:func:`run_server` is the CLI entry point: it installs SIGTERM/SIGINT
handlers that *drain* — stop accepting, finish in-flight requests, let
the writer apply everything admitted, close the store — then exit 0.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..datalog.parser import parse_atom
from ..exceptions import (
    BudgetError,
    BudgetExceeded,
    Cancelled,
    ParseError,
    ReproError,
    StoreCorrupt,
)
from ..session.knowledge_base import KnowledgeBase
from .core import AdmissionRejected, QueryService, ServiceClosed

__all__ = ["ServiceHTTPServer", "ServiceRequestHandler", "run_server"]


def _json_default(value: object) -> object:
    """Terms that are not JSON-native (compound terms, atoms) serialise as
    their textual form."""
    return str(value)


def _decode_filter(raw: str) -> object:
    """Filter parameters arrive as strings; JSON-decode scalars so
    ``a0=1`` matches the integer ``1`` while ``a0=node`` stays a string."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


class ServiceHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; shutdown *joins* them all
    (``block_on_close``), which is what makes SIGTERM a drain rather than
    an abort."""

    daemon_threads = False
    block_on_close = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer
    # Connection timeout (socketserver applies the *handler's* timeout to
    # the socket).  With keep-alive, an idle client would otherwise park
    # its handler thread in ``rfile.readline()`` forever — and the
    # ``block_on_close`` drain joins handler threads, so SIGTERM would
    # hang until every pooled client hung up.  On timeout,
    # ``handle_one_request`` treats the connection as closed.
    timeout = 5

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    def _send_json(
        self, status: int, payload: dict, *, headers: Optional[dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload, default=_json_default).encode("utf-8")
        # 499 has no registered reason phrase; supply ours.
        if status == 499:
            self.send_response_only(499, "Client Closed Request")
            self.send_header("Server", self.version_string())
            self.send_header("Date", self.date_time_string())
        else:
            self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(
        self,
        status: int,
        code: str,
        message: str,
        *,
        headers: Optional[dict[str, str]] = None,
        **extra: object,
    ) -> None:
        error: dict[str, object] = {"code": code, "message": message, "status": status}
        error.update(extra)
        self._send_json(status, {"error": error}, headers=headers)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging would swamp the load test; counters cover it

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        params = {key: values[-1] for key, values in parse_qs(url.query).items()}
        service.count("service.requests")
        with service.recorder.span("service.request", method=method, route=route):
            try:
                self._route(service, method, route, params)
            except AdmissionRejected as error:
                self._send_error_payload(
                    503,
                    "admission_rejected",
                    str(error),
                    headers={"Retry-After": str(error.retry_after)},
                )
            except ServiceClosed as error:
                self._send_error_payload(
                    503, "shutting_down", str(error), headers={"Retry-After": "1"}
                )
            except Cancelled as error:
                self._send_error_payload(
                    499,
                    "cancelled",
                    str(error),
                    phase=error.phase,
                    elapsed_s=error.elapsed,
                )
            except (BudgetExceeded, BudgetError) as error:
                self._send_error_payload(
                    504,
                    "budget_exceeded",
                    str(error),
                    phase=getattr(error, "phase", None),
                    elapsed_s=getattr(error, "elapsed", None),
                )
            except StoreCorrupt as error:
                self._send_error_payload(503, "store_corrupt", str(error))
            except (ParseError, ReproError) as error:
                self._send_error_payload(400, type(error).__name__, str(error))
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass  # client went away mid-response
            except Exception as error:  # noqa: BLE001 - last-resort 500
                self._send_error_payload(500, "internal_error", str(error))

    def _route(
        self, service: QueryService, method: str, route: str, params: dict[str, str]
    ) -> None:
        if method == "GET":
            if route == "/healthz":
                healthy, report = service.health()
                self._send_json(200 if healthy else 503, report)
                return
            if route == "/readyz":
                ready, report = service.readiness()
                self._send_json(200 if ready else 503, report)
                return
            if route == "/stats":
                with service.admit_read():
                    self._send_json(200, service.stats())
                return
            if route.startswith("/query/"):
                self._handle_query(service, route[len("/query/") :], params)
                return
            if route == "/ask":
                self._handle_ask(service, params)
                return
            if route == "/explain":
                self._handle_explain(service, params)
                return
        elif method == "POST":
            if route in ("/assert", "/retract"):
                self._handle_single_write(service, route[1:], params)
                return
            if route == "/batch":
                self._handle_batch(service, params)
                return
        self._send_error_payload(404, "not_found", f"no route {method} {route}")

    # ------------------------------------------------------------------ #
    # Read endpoints
    # ------------------------------------------------------------------ #
    def _timeout_param(self, params: dict[str, str]) -> Optional[float]:
        return _coerce_timeout(params.get("timeout"))

    def _handle_query(
        self, service: QueryService, predicate: str, params: dict[str, str]
    ) -> None:
        if not predicate or "/" in predicate:
            raise ReproError(f"bad predicate {predicate!r}")
        positions = sorted(
            (int(key[1:]), raw)
            for key, raw in params.items()
            if key.startswith("a") and key[1:].isdigit()
        )
        pattern: Optional[list[object]] = None
        if positions:
            width = positions[-1][0] + 1
            pattern = [None] * width
            for index, raw in positions:
                pattern[index] = _decode_filter(raw)
        budget = service.budget_for(self._timeout_param(params))
        with service.admit_read():
            self._send_json(
                200,
                service.query(
                    predicate,
                    pattern,
                    truth=params.get("truth", "true"),
                    page=_int_param(params, "page", 1),
                    per_page=_int_param(params, "per_page", 50),
                    budget=budget,
                ),
            )

    def _handle_ask(self, service: QueryService, params: dict[str, str]) -> None:
        text = params.get("q")
        if not text:
            raise ReproError("ask needs a ?q= query parameter")
        from ..engine.query import query_has_variables

        budget = service.budget_for(self._timeout_param(params))
        with service.admit_read():
            if query_has_variables(text):
                self._send_json(
                    200,
                    service.answers(
                        text,
                        page=_int_param(params, "page", 1),
                        per_page=_int_param(params, "per_page", 50),
                        budget=budget,
                    ),
                )
            else:
                self._send_json(200, service.ask(text, budget=budget))

    def _handle_explain(self, service: QueryService, params: dict[str, str]) -> None:
        atom = params.get("atom")
        if not atom:
            raise ReproError("explain needs an ?atom= query parameter")
        budget = service.budget_for(self._timeout_param(params))
        with service.admit_read():
            self._send_json(200, service.explain(atom, budget=budget))

    # ------------------------------------------------------------------ #
    # Write endpoints
    # ------------------------------------------------------------------ #
    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ReproError("request body must be a JSON object")
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise ReproError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    def _handle_single_write(
        self, service: QueryService, kind: str, params: dict[str, str]
    ) -> None:
        body = self._read_body()
        fact = body.get("fact")
        if not isinstance(fact, str):
            raise ReproError(f'{kind} body needs a "fact" string')
        atom = parse_atom(fact)
        timeout = self._timeout_param(params)
        if timeout is None:
            timeout = _coerce_timeout(body.get("timeout"))
        outcome = service.submit(((kind, atom),), budget=service.budget_for(timeout))
        self._send_json(
            200,
            {
                "op": kind,
                "fact": str(atom),
                "changed": bool(outcome.changed),
                "epoch": outcome.epoch,
            },
        )

    def _handle_batch(self, service: QueryService, params: dict[str, str]) -> None:
        body = self._read_body()
        raw_operations = body.get("operations")
        if not isinstance(raw_operations, list) or not raw_operations:
            raise ReproError('batch body needs a non-empty "operations" array')
        operations = []
        for entry in raw_operations:
            if not isinstance(entry, dict):
                raise ReproError(f"batch operation must be an object, got {entry!r}")
            kind = entry.get("op")
            fact = entry.get("fact")
            if kind not in ("assert", "retract") or not isinstance(fact, str):
                raise ReproError(
                    'each batch operation needs {"op": "assert"|"retract", "fact": "..."}'
                )
            operations.append((kind, parse_atom(fact)))
        timeout = self._timeout_param(params)
        if timeout is None:
            timeout = _coerce_timeout(body.get("timeout"))
        outcome = service.submit(operations, budget=service.budget_for(timeout))
        self._send_json(
            200,
            {
                "applied": outcome.applied,
                "changed": outcome.changed,
                "epoch": outcome.epoch,
            },
        )


def _coerce_timeout(raw: object) -> Optional[float]:
    """Validate a timeout from the query string or a JSON body: numeric
    and strictly positive, mapped to 400 otherwise."""
    if raw is None:
        return None
    if isinstance(raw, bool):
        raise ReproError(f"timeout must be a number, got {raw!r}")
    try:
        value = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ReproError(f"timeout must be a number, got {raw!r}") from None
    if value <= 0:
        raise ReproError(f"timeout must be positive, got {raw!r}")
    return value


def _int_param(params: dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ReproError(f"{name} must be an integer, got {raw!r}") from None


def run_server(
    kb: KnowledgeBase,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    queue_size: int = 64,
    max_readers: int = 64,
    request_timeout: Optional[float] = None,
    out=None,
    ready_event: Optional[threading.Event] = None,
) -> int:
    """Serve *kb* over HTTP until SIGTERM/SIGINT, then drain and exit 0.

    The server loop runs in a worker thread; the calling thread parks on
    an event that the signal handlers set.  Shutdown order matters and is
    the graceful-drain contract: stop accepting connections and join the
    in-flight handler threads (``server.shutdown()`` +
    ``server_close()``, which blocks on ``block_on_close``), let the
    writer apply every admitted write (``service.stop(drain=True)``), and
    only then return so the caller can close the store.
    """
    out = out if out is not None else sys.stdout
    service = QueryService(
        kb,
        queue_size=queue_size,
        max_readers=max_readers,
        default_timeout=request_timeout,
    ).start()
    server = ServiceHTTPServer((host, port), service)
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    worker = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    worker.start()
    actual_host, actual_port = server.server_address[:2]
    print(f"serving on http://{actual_host}:{actual_port}", file=out, flush=True)
    if ready_event is not None:
        ready_event.set()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("draining...", file=out, flush=True)
        server.shutdown()  # stop accepting; serve_forever returns
        worker.join()
        server.server_close()  # join in-flight handler threads
        service.stop(drain=True)  # writer applies everything admitted
        print("drained, shut down cleanly", file=out, flush=True)
    return 0
