"""Compiled ground-program kernel: interned-int IR with flat-array evaluation.

The kernel compiles a frozen :class:`~repro.core.context.GroundContext`
into dense integers once (:mod:`repro.kernel.intern`,
:mod:`repro.kernel.compile`) and evaluates the well-founded model with
counter propagation over flat arrays (:mod:`repro.kernel.eval`).  Select it
with ``engine="kernel"`` on :class:`~repro.config.EngineConfig`,
:func:`~repro.engine.solver.solve` or the CLI; the object-level engines
remain the differential oracles.
"""

from .compile import CompiledProgram, compile_context, get_kernel
from .eval import (
    ComponentKernel,
    KernelResult,
    evaluate_compiled,
    kernel_model,
    kernel_well_founded,
)
from .intern import AtomTable

__all__ = [
    "AtomTable",
    "CompiledProgram",
    "compile_context",
    "get_kernel",
    "ComponentKernel",
    "KernelResult",
    "evaluate_compiled",
    "kernel_model",
    "kernel_well_founded",
]
