"""Lower a :class:`~repro.core.context.GroundContext` to the flat int IR.

The compiled form replaces every object-level structure the well-founded
hot loop touches with a contiguous ``array('i')``:

* rule bodies become CSR segments (``pos_off``/``pos_atoms`` and
  ``neg_off``/``neg_atoms``, one *deduplicated* id list per rule, so the
  Dowling–Gallier counters seeded from segment lengths are exact);
* the head index becomes a CSR map ``head_off``/``head_rules`` from atom id
  to the rules deriving it;
* the SCC condensation of the atom dependency graph is computed directly
  over the int adjacency (iterative Tarjan, callees-first emission) and
  stored as ``comp_of`` plus the CSR partition ``comp_off``/``comp_atoms``.

Compilation is cached on the (frozen) context via :func:`get_kernel` — the
same idiom as :func:`repro.evaluation.indexes.get_index` — so a session
that evaluates one grounding many times (the incremental engine, the query
service, repeated CLI runs over one context) pays the compile exactly once.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import current_meter
from .intern import AtomTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.context import GroundContext

__all__ = ["CompiledProgram", "compile_context", "get_kernel"]

_KERNEL_ATTRIBUTE = "_compiled_kernel"


@dataclass(frozen=True)
class CompiledProgram:
    """One ground program as dense integers and flat arrays.

    All offsets follow the CSR convention: segment ``i`` of a
    ``(xxx_off, xxx)`` pair is ``xxx[xxx_off[i]:xxx_off[i + 1]]``, and the
    offset array has one trailing entry, so lengths never need storing.
    Components are numbered callees-first: every body atom of a rule lives
    in the same or a lower-numbered component than its head.
    """

    table: AtomTable
    n_atoms: int
    n_rules: int
    # Rules
    heads: array
    pos_off: array
    pos_atoms: array
    neg_off: array
    neg_atoms: array
    # Atom -> rules deriving it
    head_off: array
    head_rules: array
    # EDB facts of the compiled context
    fact_ids: array
    # Condensation
    n_components: int
    comp_of: array
    comp_off: array
    comp_atoms: array
    # Atoms that occur in the body of one of their own rules (singleton
    # components with a genuine self-loop take the general solve path).
    self_dep: bytes = field(repr=False, default=b"")

    def hot(self) -> Tuple[List[int], ...]:
        """The IR's index arrays as plain lists, built once and cached.

        CPython boxes a fresh ``int`` on every ``array('i')`` access; the
        evaluator's inner loops index these structures millions of times,
        so each compiled program lazily materialises a list form (whose
        elements are shared, already-boxed ints) next to the canonical
        packed arrays.  Returns ``(heads, pos_off, pos_atoms, neg_off,
        neg_atoms, head_off, head_rules, comp_off, comp_atoms, comp_of)``.
        """
        cached = getattr(self, "_hot", None)
        if cached is None:
            cached = tuple(
                list(buf)
                for buf in (
                    self.heads,
                    self.pos_off,
                    self.pos_atoms,
                    self.neg_off,
                    self.neg_atoms,
                    self.head_off,
                    self.head_rules,
                    self.comp_off,
                    self.comp_atoms,
                    self.comp_of,
                )
            )
            object.__setattr__(self, "_hot", cached)
        return cached

    def nbytes(self) -> int:
        """Bytes held by the flat arrays (the IR proper, excluding the
        shared Atom objects behind the intern table and the lazily built
        :meth:`hot` decode cache)."""
        total = len(self.self_dep)
        for buf in (
            self.heads,
            self.pos_off,
            self.pos_atoms,
            self.neg_off,
            self.neg_atoms,
            self.head_off,
            self.head_rules,
            self.fact_ids,
            self.comp_of,
            self.comp_off,
            self.comp_atoms,
        ):
            total += buf.buffer_info()[1] * buf.itemsize
        return total

    def statistics(self) -> Dict[str, int]:
        return {
            "atoms": self.n_atoms,
            "rules": self.n_rules,
            "components": self.n_components,
            "body_entries": len(self.pos_atoms) + len(self.neg_atoms),
            "bytes": self.nbytes(),
        }


def compile_context(
    context: "GroundContext", recorder: Recorder = NULL_RECORDER
) -> CompiledProgram:
    """Compile *context* to a :class:`CompiledProgram` (uncached)."""
    meter = current_meter()
    table = AtomTable.from_atoms(context.base)
    ids = table.ids
    n_atoms = len(table)
    meter.check("compile")

    rules = context.rules
    n_rules = len(rules)
    heads_list: List[int] = []
    pos_off_list: List[int] = [0]
    pos_list: List[int] = []
    neg_off_list: List[int] = [0]
    neg_list: List[int] = []
    self_dep = bytearray(n_atoms)
    for rule in rules:
        head_id = ids[rule.head]
        heads_list.append(head_id)
        positive = rule.positive_body
        if positive:
            distinct = {ids[atom] for atom in positive}
            if head_id in distinct:
                self_dep[head_id] = 1
            pos_list.extend(sorted(distinct))
        pos_off_list.append(len(pos_list))
        negative = rule.negative_body
        if negative:
            distinct = {ids[atom] for atom in negative}
            if head_id in distinct:
                self_dep[head_id] = 1
            neg_list.extend(sorted(distinct))
        neg_off_list.append(len(neg_list))
    meter.check("compile")

    # Head index as CSR via a counting pass.
    head_counts = [0] * (n_atoms + 1)
    for head_id in heads_list:
        head_counts[head_id + 1] += 1
    for i in range(1, n_atoms + 1):
        head_counts[i] += head_counts[i - 1]
    head_off = array("i", head_counts)
    head_rules_list = [0] * n_rules
    cursor = list(head_off[:-1])
    for rule_id, head_id in enumerate(heads_list):
        head_rules_list[cursor[head_id]] = rule_id
        cursor[head_id] += 1
    meter.check("compile")

    comp_of, comp_off_list, comp_atoms_list = _condense(
        n_atoms,
        heads_list,
        pos_off_list,
        pos_list,
        neg_off_list,
        neg_list,
    )
    meter.check("compile")

    compiled = CompiledProgram(
        table=table,
        n_atoms=n_atoms,
        n_rules=n_rules,
        heads=array("i", heads_list),
        pos_off=array("i", pos_off_list),
        pos_atoms=array("i", pos_list),
        neg_off=array("i", neg_off_list),
        neg_atoms=array("i", neg_list),
        head_off=head_off,
        head_rules=array("i", head_rules_list),
        fact_ids=array("i", sorted(ids[atom] for atom in context.facts)),
        n_components=len(comp_off_list) - 1,
        comp_of=array("i", comp_of),
        comp_off=array("i", comp_off_list),
        comp_atoms=array("i", comp_atoms_list),
        self_dep=bytes(self_dep),
    )
    if recorder.enabled:
        recorder.count("kernel.atoms", compiled.n_atoms)
        recorder.count("kernel.rules", compiled.n_rules)
        recorder.count("kernel.bytes", compiled.nbytes())
    return compiled


def get_kernel(
    context: "GroundContext", recorder: Recorder = NULL_RECORDER
) -> CompiledProgram:
    """The compiled kernel of *context*, built once and cached on it.

    Contexts are frozen and shared across operators, so the cache turns a
    long session over one grounding into compile-once / evaluate-many.
    """
    cached = getattr(context, _KERNEL_ATTRIBUTE, None)
    if cached is None:
        cached = compile_context(context, recorder=recorder)
        object.__setattr__(context, _KERNEL_ATTRIBUTE, cached)
    return cached


# --------------------------------------------------------------------- #
# Int-level condensation
# --------------------------------------------------------------------- #
def _condense(
    n_atoms: int,
    heads: List[int],
    pos_off: List[int],
    pos_atoms: List[int],
    neg_off: List[int],
    neg_atoms: List[int],
) -> Tuple[List[int], List[int], List[int]]:
    """SCC-condense the atom dependency graph, callees first.

    Builds the head → body adjacency (both polarities, deduplicated) as a
    CSR over ints and runs an iterative Tarjan.  Tarjan emits a component
    only after every component reachable from it, so the emission order is
    already the callees-first topological order the evaluator consumes.
    Returns ``(comp_of, comp_off, comp_atoms)``.
    """
    # Dependency adjacency: one sorted, deduplicated successor list per
    # atom (head depends on each body atom of each of its rules).
    succ_sets: List[set] = [None] * n_atoms  # type: ignore[list-item]
    for rule_id, head_id in enumerate(heads):
        bucket = succ_sets[head_id]
        if bucket is None:
            bucket = succ_sets[head_id] = set()
        bucket.update(pos_atoms[pos_off[rule_id] : pos_off[rule_id + 1]])
        bucket.update(neg_atoms[neg_off[rule_id] : neg_off[rule_id + 1]])
    adj_off = [0] * (n_atoms + 1)
    adj: List[int] = []
    for atom_id in range(n_atoms):
        bucket = succ_sets[atom_id]
        if bucket:
            adj.extend(sorted(bucket))
        adj_off[atom_id + 1] = len(adj)

    comp_of = [-1] * n_atoms
    comp_atoms: List[int] = []
    comp_off = [0]
    index_of = [-1] * n_atoms
    lowlink = [0] * n_atoms
    on_stack = bytearray(n_atoms)
    scc_stack: List[int] = []
    counter = 0

    for root in range(n_atoms):
        if index_of[root] != -1:
            continue
        # (node, next successor position) — an explicit DFS frame stack.
        work: List[List[int]] = [[root, adj_off[root]]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = 1
        while work:
            frame = work[-1]
            node = frame[0]
            position = frame[1]
            if position < adj_off[node + 1]:
                frame[1] = position + 1
                successor = adj[position]
                if index_of[successor] == -1:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    scc_stack.append(successor)
                    on_stack[successor] = 1
                    work.append([successor, adj_off[successor]])
                elif on_stack[successor]:
                    if index_of[successor] < lowlink[node]:
                        lowlink[node] = index_of[successor]
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                comp_index = len(comp_off) - 1
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = comp_index
                    comp_atoms.append(member)
                    if member == node:
                        break
                comp_off.append(len(comp_atoms))
    return comp_of, comp_off, comp_atoms
