"""Flat-array evaluation of a compiled ground program.

One ``bytearray`` truth vector (``0`` unknown, ``1`` true, ``2`` false)
carries the entire partial model; components are solved in the compiled
callees-first order with the same cheapest-sound-method dispatch as
:mod:`repro.core.modular`, but over ints:

* singleton components resolve in one pass over their rules' CSR segments
  (no closure machinery, no set construction);
* ``horn`` / ``stratified`` components run Dowling–Gallier counter
  propagation over int watch lists — one closure, or two when some body
  literal rests on an atom left undefined below (the envelope pass);
* ``alternating`` components run the per-component alternating fixpoint
  with the ``S_P`` stages as int-set transforms.  The object engine's
  designated undefined atom (``u ← ¬u``) is replaced by its phase
  portrait: ``u`` belongs to ``Ĩ_k`` exactly for odd ``k``, so
  undefined-marker rules are enabled in odd (overestimate) stages and
  disabled in even (underestimate) stages — same fixpoint, no extra atom.
  Unfounded atoms fall out as the complement of the final envelope, via
  the same counter decrements.

The object-level modular engine stays the differential oracle: the
Hypothesis suite asserts byte-identical models across ``kernel``,
``modular`` and ``monolithic`` for every semantics family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..config import EngineConfig, merge_entry_config
from ..core.context import GroundContext, build_context
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..exceptions import EvaluationError
from ..fixpoint.interpretations import PartialInterpretation
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import current_meter, metered
from .compile import CompiledProgram, get_kernel

__all__ = [
    "KernelResult",
    "ComponentKernel",
    "evaluate_compiled",
    "kernel_well_founded",
    "kernel_model",
]

_UNKNOWN, _TRUE, _FALSE = 0, 1, 2
_MAX_STAGES = 10_000_000
#: Budget checkpoints are batched: one meter step per this many components
#: keeps deadline enforcement responsive without a call in the hot loop.
_METER_STRIDE = 128

_METHODS = ("horn", "stratified", "alternating")


@dataclass(frozen=True)
class KernelResult:
    """The assembled model plus the kernel's aggregate evaluation log.

    The kernel tracks per-method component counts and total stage /
    decrement counters instead of per-component reports — keeping the hot
    loop free of per-component object construction is half the speedup.
    """

    context: GroundContext
    model: PartialInterpretation
    compiled: CompiledProgram
    methods: Mapping[str, int]
    stages: int
    decrements: int

    @property
    def component_count(self) -> int:
        return self.compiled.n_components

    @property
    def is_total(self) -> bool:
        return self.model.is_total_over(self.context.base)

    def method_counts(self) -> Dict[str, int]:
        return dict(self.methods)

    def statistics(self) -> Dict[str, object]:
        return {
            "components": self.compiled.n_components,
            "methods": self.method_counts(),
            "stages": self.stages,
            **{f"kernel_{k}": v for k, v in self.compiled.statistics().items()},
            **self.context.statistics(),
        }


# --------------------------------------------------------------------- #
# Core evaluation
# --------------------------------------------------------------------- #
def evaluate_compiled(
    compiled: CompiledProgram,
    fact_ids: Optional[Iterable[int]] = None,
    tracing: bool = False,
) -> Tuple[bytearray, List[int], int, int]:
    """Evaluate every component of *compiled* bottom-up.

    Returns ``(truth, method_counts, stages, decrements)`` where *truth* is
    the dense truth vector and *method_counts* the per-method component
    tallies in :data:`_METHODS` order.  *fact_ids* overrides the compiled
    context's EDB (the incremental engine refreshes facts without
    recompiling); ``decrements`` is only tallied when *tracing* is set, the
    same contract as the object engine's ``dg.decrements``.
    """
    n_atoms = compiled.n_atoms
    truth = bytearray(n_atoms)
    is_fact = bytearray(n_atoms)
    for atom_id in compiled.fact_ids if fact_ids is None else fact_ids:
        is_fact[atom_id] = 1

    (
        heads,
        pos_off,
        pos_atoms,
        neg_off,
        neg_atoms,
        head_off,
        head_rules,
        comp_off,
        comp_atoms,
        comp_of,
    ) = compiled.hot()
    self_dep = compiled.self_dep

    method_counts = [0, 0, 0]
    stages_total = 0
    decrements = 0
    meter = current_meter()

    for comp_index in range(compiled.n_components):
        if not comp_index % _METER_STRIDE:
            meter.step("component")
        start = comp_off[comp_index]
        end = comp_off[comp_index + 1]

        # ---- singleton fast path ------------------------------------- #
        if end - start == 1:
            head = comp_atoms[start]
            if not self_dep[head]:
                satisfied = is_fact[head]
                possible = False
                marker_seen = False
                for slot in range(head_off[head], head_off[head + 1]):
                    rule = head_rules[slot]
                    killed = False
                    marker = False
                    for cursor in range(pos_off[rule], pos_off[rule + 1]):
                        value = truth[pos_atoms[cursor]]
                        if value == 1:
                            continue
                        if value == 2:
                            killed = True
                            break
                        marker = True
                    if killed:
                        continue
                    for cursor in range(neg_off[rule], neg_off[rule + 1]):
                        value = truth[neg_atoms[cursor]]
                        if value == 2:
                            continue
                        if value == 1:
                            killed = True
                            break
                        marker = True
                    if killed:
                        continue
                    if marker:
                        marker_seen = True
                        possible = True
                    else:
                        satisfied = True
                if satisfied:
                    truth[head] = 1
                elif not possible:
                    truth[head] = 2
                if marker_seen:
                    method_counts[1] += 1
                    stages_total += 2
                else:
                    method_counts[0] += 1
                    stages_total += 1
                continue

        # ---- general path: partial evaluation + dispatch -------------- #
        members = comp_atoms[start:end]
        local_rules, has_negation, any_marker = _partial_evaluate(
            members,
            comp_index,
            comp_of,
            truth,
            heads,
            pos_off,
            pos_atoms,
            neg_off,
            neg_atoms,
            head_off,
            head_rules,
        )
        local_facts = [atom_id for atom_id in members if is_fact[atom_id]]

        if has_negation:
            comp_set = set(members)
            comp_true, comp_false, stages, spent = _alternating_ints(
                comp_set, local_rules, local_facts, tracing
            )
            decrements += spent
            method_counts[2] += 1
            stages_total += stages
        else:
            definite, spent = _closure_ints(local_rules, local_facts, False, tracing)
            decrements += spent
            if any_marker:
                envelope, spent = _closure_ints(local_rules, local_facts, True, tracing)
                decrements += spent
                method_counts[1] += 1
                stages_total += 2
            else:
                envelope = definite
                method_counts[0] += 1
                stages_total += 1
            comp_true = definite
            comp_false = [atom_id for atom_id in members if atom_id not in envelope]

        for atom_id in comp_true:
            truth[atom_id] = 1
        for atom_id in comp_false:
            truth[atom_id] = 2

    return truth, method_counts, stages_total, decrements


def _partial_evaluate(
    members,
    comp_index: int,
    comp_of,
    truth: bytearray,
    heads,
    pos_off,
    pos_atoms,
    neg_off,
    neg_atoms,
    head_off,
    head_rules,
) -> Tuple[List[Tuple[int, List[int], List[int], bool]], bool, bool]:
    """Residual local rules of one component against the solved context.

    Mirrors the object engine's partial evaluation exactly: body atoms of
    lower components are dropped when satisfied, kill the rule when
    falsified, and raise the undefined marker when left undefined below.
    """
    local_rules: List[Tuple[int, List[int], List[int], bool]] = []
    has_negation = False
    any_marker = False
    for head in members:
        for slot in range(head_off[head], head_off[head + 1]):
            rule = head_rules[slot]
            killed = False
            marker = False
            pos_internal: List[int] = []
            neg_internal: List[int] = []
            for cursor in range(pos_off[rule], pos_off[rule + 1]):
                body = pos_atoms[cursor]
                if comp_of[body] == comp_index:
                    pos_internal.append(body)
                    continue
                value = truth[body]
                if value == 1:
                    continue
                if value == 2:
                    killed = True
                    break
                marker = True
            if killed:
                continue
            for cursor in range(neg_off[rule], neg_off[rule + 1]):
                body = neg_atoms[cursor]
                if comp_of[body] == comp_index:
                    neg_internal.append(body)
                    continue
                value = truth[body]
                if value == 2:
                    continue
                if value == 1:
                    killed = True
                    break
                marker = True
            if killed:
                continue
            if neg_internal:
                has_negation = True
            if marker:
                any_marker = True
            local_rules.append((head, pos_internal, neg_internal, marker))
    return local_rules, has_negation, any_marker


def _closure_ints(
    local_rules: List[Tuple[int, List[int], List[int], bool]],
    seed: Iterable[int],
    fire_markers: bool,
    tracing: bool,
) -> Tuple[Set[int], int]:
    """Dowling–Gallier counter propagation over one component's residual
    definite rules (negative-free by dispatch), as int sets."""
    rule_heads: List[int] = []
    counters: List[int] = []
    watchers: Dict[int, List[int]] = {}
    derived: Set[int] = set()
    frontier: List[int] = []
    for head, positive, _negative, marker in local_rules:
        if marker and not fire_markers:
            continue
        if not positive:
            if head not in derived:
                derived.add(head)
                frontier.append(head)
            continue
        rule_id = len(rule_heads)
        rule_heads.append(head)
        counters.append(len(positive))
        for body in positive:
            watchers.setdefault(body, []).append(rule_id)
    for atom_id in seed:
        if atom_id not in derived:
            derived.add(atom_id)
            frontier.append(atom_id)
    while frontier:
        atom_id = frontier.pop()
        for rule_id in watchers.get(atom_id, ()):
            counters[rule_id] -= 1
            if not counters[rule_id]:
                head = rule_heads[rule_id]
                if head not in derived:
                    derived.add(head)
                    frontier.append(head)
    spent = 0
    if tracing:
        spent = sum(len(watchers.get(atom_id, ())) for atom_id in derived)
    return derived, spent


def _alternating_ints(
    comp_set: Set[int],
    local_rules: List[Tuple[int, List[int], List[int], bool]],
    local_facts: List[int],
    tracing: bool,
) -> Tuple[Set[int], Set[int], int, int]:
    """Per-component alternating fixpoint over int sets.

    ``S_P`` with respect to an assumed-false set keeps a rule when its
    internal negative body is entirely assumed false; undefined-marker
    rules are additionally gated on the stage parity (see the module
    docstring — this is the compiled form of the ``u ← ¬u`` construction).
    Termination compares consecutive even (underestimate) stages.
    """
    decrements = 0
    # The watch lists and counter seeds are shared across every S_P stage
    # (the compiled analogue of the object engine sharing one RuleIndex
    # across a component's stages); each stage re-seeds the counters and
    # gates rules with a per-stage `enabled` vector instead of rebuilding
    # the index.
    n_rules = len(local_rules)
    rule_heads = [rule[0] for rule in local_rules]
    base_counters = [len(rule[1]) for rule in local_rules]
    watchers: Dict[int, List[int]] = {}
    for rule_id, (_head, positive, _negative, _marker) in enumerate(local_rules):
        for body in positive:
            watchers.setdefault(body, []).append(rule_id)

    def stability(assumed_false: Set[int], markers_on: bool) -> Set[int]:
        nonlocal decrements
        counters = base_counters.copy()
        enabled = bytearray(n_rules)
        derived: Set[int] = set(local_facts)
        frontier: List[int] = list(derived)
        for rule_id, (head, positive, negative, marker) in enumerate(local_rules):
            if marker and not markers_on:
                continue
            usable = True
            for body in negative:
                if body not in assumed_false:
                    usable = False
                    break
            if not usable:
                continue
            if positive:
                enabled[rule_id] = 1
            elif head not in derived:
                derived.add(head)
                frontier.append(head)
        while frontier:
            atom_id = frontier.pop()
            for rule_id in watchers.get(atom_id, ()):
                if not enabled[rule_id]:
                    continue
                counters[rule_id] -= 1
                if not counters[rule_id]:
                    head = rule_heads[rule_id]
                    if head not in derived:
                        derived.add(head)
                        frontier.append(head)
        if tracing:
            for atom_id in derived:
                for rule_id in watchers.get(atom_id, ()):
                    if enabled[rule_id]:
                        decrements += 1
        return derived

    assumed_false: Set[int] = set()
    positive = stability(assumed_false, False)
    previous_even = assumed_false
    index = 0
    while True:
        index += 1
        if index > _MAX_STAGES:
            raise EvaluationError("kernel alternating fixpoint did not converge")
        assumed_false = comp_set - positive
        positive = stability(assumed_false, index % 2 == 1)
        if not index % 2:
            if len(assumed_false) == len(previous_even) and assumed_false == previous_even:
                break
            previous_even = assumed_false
    return positive, assumed_false, index, decrements


# --------------------------------------------------------------------- #
# Batch entry point
# --------------------------------------------------------------------- #
def kernel_well_founded(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    full_base: bool = False,
    extra_atoms: Iterable[Atom] = (),
    strategy: str | None = None,
    config: Optional[EngineConfig] = None,
    grounder: str | None = None,
    recorder: Recorder | None = None,
) -> KernelResult:
    """The well-founded partial model via the compiled kernel.

    Accepts a :class:`~repro.datalog.rules.Program` (grounded first) or a
    pre-built :class:`GroundContext`; the compiled IR is cached on the
    context, so repeated evaluation of one grounding pays the compile once.
    *strategy* is accepted for interface parity with the object engines but
    unused — the kernel has exactly one (semi-naive, counter-driven)
    evaluation scheme.

    A tracing *recorder* captures a ``compile`` span (with the
    ``kernel.atoms`` / ``kernel.rules`` / ``kernel.bytes`` counters on a
    fresh build), an ``evaluate`` span with the aggregate method split, the
    ``kernel.decrements`` / ``kernel.stages`` counters, and an ``assemble``
    span around the model decode.
    """
    _strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits, grounder=grounder
    )
    recorder = recorder if recorder is not None else NULL_RECORDER
    with metered(budget):
        if isinstance(program, GroundContext):
            context = program
        else:
            context = build_context(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                grounder=grounder,
                recorder=recorder,
            )

        with recorder.span("compile", method="kernel") as compile_span:
            compiled = get_kernel(context, recorder=recorder)
        if recorder.enabled:
            compile_span.annotate(**compiled.statistics())

        tracing = recorder.enabled
        with recorder.span("evaluate", method="kernel") as evaluate_span:
            truth, method_counts, stages, decrements = evaluate_compiled(
                compiled, tracing=tracing
            )

        with recorder.span("assemble") as assemble_span:
            atoms = compiled.table.atoms
            true_atoms: Set[Atom] = set()
            false_atoms: Set[Atom] = set()
            for atom_id, value in enumerate(truth):
                if value == 1:
                    true_atoms.add(atoms[atom_id])
                elif value:
                    false_atoms.add(atoms[atom_id])
            model = PartialInterpretation(true_atoms, false_atoms)

    methods = {
        name: count for name, count in zip(_METHODS, method_counts) if count
    }
    if tracing:
        evaluate_span.annotate(
            components=compiled.n_components, stages=stages, **methods
        )
        assemble_span.annotate(true=len(true_atoms), false=len(false_atoms))
        recorder.count("kernel.decrements", decrements)
        recorder.count("kernel.stages", stages)
        recorder.count("components.total", compiled.n_components)
        for name, count in methods.items():
            recorder.count(f"components.{name}", count)
    return KernelResult(
        context=context,
        model=model,
        compiled=compiled,
        methods=methods,
        stages=stages,
        decrements=decrements,
    )


def kernel_model(program: Program | GroundContext, **kwargs) -> PartialInterpretation:
    """Convenience wrapper returning just the well-founded partial model."""
    return kernel_well_founded(program, **kwargs).model


# --------------------------------------------------------------------- #
# Component-at-a-time state (incremental maintenance)
# --------------------------------------------------------------------- #
class ComponentKernel:
    """Long-lived kernel state for component-at-a-time evaluation.

    The :class:`~repro.session.incremental.IncrementalEngine` owns one of
    these per session (compiled from the rule-only context) and keeps its
    ``is_fact`` vector in sync with the EDB; each
    :func:`repro.core.modular.solve_component` call then runs over the
    persistent int truth vector instead of the object-level sets.  The
    engine re-solves affected components in ascending condensation order,
    so the truth entries a component reads (its own and lower components')
    are always current even while higher components still hold stale codes.
    """

    __slots__ = ("compiled", "truth", "is_fact", "_ids")

    def __init__(self, compiled: CompiledProgram):
        self.compiled = compiled
        self.truth = bytearray(compiled.n_atoms)
        self.is_fact = bytearray(compiled.n_atoms)
        self._ids = compiled.table.ids

    # ---- EDB synchronisation ----------------------------------------- #
    def reset(self) -> None:
        """Forget every verdict (a full re-solve is about to run)."""
        self.truth = bytearray(self.compiled.n_atoms)

    def set_facts(self, facts: Iterable[Atom]) -> None:
        """Replace the fact vector wholesale (atoms outside the compiled
        universe — floating facts — are ignored; the engine handles them)."""
        vector = bytearray(self.compiled.n_atoms)
        ids = self._ids
        for atom in facts:
            atom_id = ids.get(atom)
            if atom_id is not None:
                vector[atom_id] = 1
        self.is_fact = vector

    def update_fact(self, atom: Atom, present: bool) -> None:
        atom_id = self._ids.get(atom)
        if atom_id is not None:
            self.is_fact[atom_id] = 1 if present else 0

    def set_truth(self, atom: Atom, code: int) -> None:
        """Write one verdict (``0`` unknown, ``1`` true, ``2`` false) into
        the persistent truth vector.  Atom-level delta maintenance uses
        this to keep the vector current for verdicts it derives outside
        :meth:`solve_component`; atoms outside the compiled universe are
        ignored."""
        atom_id = self._ids.get(atom)
        if atom_id is not None:
            self.truth[atom_id] = code

    # ---- Component solving ------------------------------------------- #
    def solve_component(
        self, component: Iterable[Atom], tracing: bool = False
    ) -> Optional[Tuple[Set[Atom], Set[Atom], str, int, int, int]]:
        """Solve one component over the persistent truth vector.

        Returns ``(true, false, method, rules, stages, decrements)`` with
        the atom sets decoded back to objects, or ``None`` when some
        component atom is unknown to the compiled table (the caller falls
        back to the object path).  The component's own truth entries are
        reset first, so re-solving after an EDB change is self-contained.
        """
        ids = self._ids
        members: List[int] = []
        for atom in component:
            atom_id = ids.get(atom)
            if atom_id is None:
                return None
            members.append(atom_id)

        truth = self.truth
        for atom_id in members:
            truth[atom_id] = 0

        true_ids, false_ids, method, rule_count, stages, decrements = _solve_members(
            self.compiled, truth, self.is_fact, members, tracing
        )
        for atom_id in true_ids:
            truth[atom_id] = 1
        for atom_id in false_ids:
            truth[atom_id] = 2

        atoms = self.compiled.table.atoms
        return (
            {atoms[i] for i in true_ids},
            {atoms[i] for i in false_ids},
            method,
            rule_count,
            stages,
            decrements,
        )


def _solve_members(
    compiled: CompiledProgram,
    truth: bytearray,
    is_fact: bytearray,
    members: List[int],
    tracing: bool,
) -> Tuple[Iterable[int], Iterable[int], str, int, int, int]:
    """Solve one component (given as member ids) against *truth*.

    Shared by :class:`ComponentKernel`; the batch evaluator inlines the
    same logic (the singleton path especially) to keep its loop flat.
    Returns ``(true_ids, false_ids, method, rules, stages, decrements)``
    without writing the truth vector.
    """
    (
        heads,
        pos_off,
        pos_atoms,
        neg_off,
        neg_atoms,
        head_off,
        head_rules,
        _comp_off,
        _comp_atoms,
        comp_of,
    ) = compiled.hot()

    if len(members) == 1 and not compiled.self_dep[members[0]]:
        head = members[0]
        satisfied = is_fact[head]
        possible = False
        marker_seen = False
        rule_count = head_off[head + 1] - head_off[head]
        for slot in range(head_off[head], head_off[head + 1]):
            rule = head_rules[slot]
            killed = False
            marker = False
            for cursor in range(pos_off[rule], pos_off[rule + 1]):
                value = truth[pos_atoms[cursor]]
                if value == 1:
                    continue
                if value == 2:
                    killed = True
                    break
                marker = True
            if killed:
                continue
            for cursor in range(neg_off[rule], neg_off[rule + 1]):
                value = truth[neg_atoms[cursor]]
                if value == 2:
                    continue
                if value == 1:
                    killed = True
                    break
                marker = True
            if killed:
                continue
            if marker:
                marker_seen = True
                possible = True
            else:
                satisfied = True
        method = "stratified" if marker_seen else "horn"
        stages = 2 if marker_seen else 1
        if satisfied:
            return (members, (), method, rule_count, stages, 0)
        if possible:
            return ((), (), method, rule_count, stages, 0)
        return ((), members, method, rule_count, stages, 0)

    comp_index = comp_of[members[0]]
    local_rules, has_negation, any_marker = _partial_evaluate(
        members,
        comp_index,
        comp_of,
        truth,
        heads,
        pos_off,
        pos_atoms,
        neg_off,
        neg_atoms,
        head_off,
        head_rules,
    )
    local_facts = [atom_id for atom_id in members if is_fact[atom_id]]
    if has_negation:
        comp_true, comp_false, stages, decrements = _alternating_ints(
            set(members), local_rules, local_facts, tracing
        )
        return (comp_true, comp_false, "alternating", len(local_rules), stages, decrements)
    definite, decrements = _closure_ints(local_rules, local_facts, False, tracing)
    if any_marker:
        envelope, spent = _closure_ints(local_rules, local_facts, True, tracing)
        decrements += spent
        method = "stratified"
        stages = 2
    else:
        envelope = definite
        method = "horn"
        stages = 1
    comp_false = [atom_id for atom_id in members if atom_id not in envelope]
    return (definite, comp_false, method, len(local_rules), stages, decrements)
