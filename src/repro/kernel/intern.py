"""Dense integer interning of ground atoms (the kernel's symbol table).

Every hot structure of the compiled kernel — rule bodies, watch lists,
truth vectors — is indexed by a dense integer atom id.  :class:`AtomTable`
owns the two-way mapping: ``atoms[i]`` is the :class:`~repro.datalog.atoms.Atom`
with id ``i`` and ``ids[atom]`` its id.  Ids are assigned grouped by
predicate (and sorted within a predicate by textual form), so every
predicate owns one contiguous ``[lo, hi)`` id range — the property the
per-predicate truth-vector slices and the planned persisted intern tables
(ROADMAP, bulk-scale storage) rely on.

The table is append-only: :meth:`intern` never re-numbers, so ids handed
out to a compiled program stay valid for the table's lifetime.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..datalog.atoms import Atom

__all__ = ["AtomTable"]


class AtomTable:
    """Two-way dense id↔atom map with contiguous per-predicate id ranges."""

    __slots__ = ("atoms", "ids", "_ranges")

    def __init__(self) -> None:
        self.atoms: List[Atom] = []
        self.ids: Dict[Atom, int] = {}
        # predicate -> (lo, hi) over ids; maintained only for the grouped
        # bulk load, best-effort extended by later intern() calls.
        self._ranges: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_atoms(cls, universe: Iterable[Atom]) -> "AtomTable":
        """Intern *universe* grouped by predicate, sorted within each group.

        The deterministic order makes compiled programs reproducible for a
        given ground context (ids are stable across runs), and the grouping
        yields the contiguous per-predicate ranges.
        """
        table = cls()
        atoms = table.atoms
        ids = table.ids
        ranges = table._ranges
        for atom in sorted(universe, key=_atom_key):
            if atom in ids:
                continue
            ids[atom] = len(atoms)
            atoms.append(atom)
        for index, atom in enumerate(atoms):
            predicate = atom.predicate
            if predicate not in ranges:
                ranges[predicate] = (index, index + 1)
            else:
                start, _ = ranges[predicate]
                ranges[predicate] = (start, index + 1)
        return table

    def intern(self, atom: Atom) -> int:
        """Id of *atom*, assigning the next dense id on first sight."""
        existing = self.ids.get(atom)
        if existing is not None:
            return existing
        new_id = len(self.atoms)
        self.ids[atom] = new_id
        self.atoms.append(atom)
        # A late intern lands outside its predicate's contiguous block; the
        # range is widened only when the new id extends it directly.
        span = self._ranges.get(atom.predicate)
        if span is None:
            self._ranges[atom.predicate] = (new_id, new_id + 1)
        elif span[1] == new_id:
            self._ranges[atom.predicate] = (span[0], new_id + 1)
        return new_id

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def id_of(self, atom: Atom) -> Optional[int]:
        """Id of *atom*, or ``None`` if it was never interned."""
        return self.ids.get(atom)

    def atom_of(self, atom_id: int) -> Atom:
        return self.atoms[atom_id]

    def predicate_range(self, predicate: str) -> Optional[Tuple[int, int]]:
        """The ``[lo, hi)`` id range of *predicate*, or ``None``."""
        return self._ranges.get(predicate)

    def predicate_ranges(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._ranges)

    def decode(self, atom_ids: Iterable[int]) -> List[Atom]:
        atoms = self.atoms
        return [atoms[i] for i in atom_ids]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.ids

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def nbytes(self) -> int:
        """Approximate bookkeeping footprint of the table itself (the list
        and dict slots; the Atom objects are shared with the context, not
        owned here)."""
        import sys

        return sys.getsizeof(self.atoms) + sys.getsizeof(self.ids)


def _atom_key(atom: Atom) -> Tuple[str, int, Tuple[str, ...]]:
    return (atom.predicate, len(atom.args), tuple(str(arg) for arg in atom.args))
