"""Deterministic graph generators used as benchmark workloads.

The paper's examples are all graph-shaped (move graphs, edge relations for
transitive closure, well-founded chains), so the benchmark harness sweeps
over parametric graph families.  All generators take an explicit ``seed``
where randomness is involved so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

__all__ = [
    "chain_edges",
    "cycle_edges",
    "complete_dag_edges",
    "binary_tree_edges",
    "grid_edges",
    "random_digraph_edges",
    "random_game_edges",
    "lollipop_edges",
]

Edge = tuple[object, object]


def chain_edges(length: int, prefix: str = "n") -> list[Edge]:
    """A simple path ``n0 -> n1 -> ... -> n(length)``."""
    return [(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(length)]


def cycle_edges(length: int, prefix: str = "n") -> list[Edge]:
    """A directed cycle of the given length (length >= 1)."""
    if length < 1:
        return []
    return [
        (f"{prefix}{i}", f"{prefix}{(i + 1) % length}") for i in range(length)
    ]


def lollipop_edges(cycle_length: int, tail_length: int, prefix: str = "n") -> list[Edge]:
    """A cycle with a path hanging off it — the shape of Figure 4(b)."""
    edges = cycle_edges(cycle_length, prefix)
    if tail_length <= 0:
        return edges
    edges.append((f"{prefix}0", f"{prefix}t0"))
    edges.extend(
        (f"{prefix}t{i}", f"{prefix}t{i + 1}") for i in range(tail_length - 1)
    )
    return edges


def complete_dag_edges(nodes: int, prefix: str = "n") -> list[Edge]:
    """All edges ``i -> j`` with ``i < j`` (a transitively closed DAG)."""
    return [
        (f"{prefix}{i}", f"{prefix}{j}")
        for i in range(nodes)
        for j in range(i + 1, nodes)
    ]


def binary_tree_edges(depth: int, prefix: str = "n") -> list[Edge]:
    """Edges of a complete binary tree of the given depth, parent -> child."""
    edges: list[Edge] = []
    total = 2 ** depth - 1
    for index in range(total):
        for child in (2 * index + 1, 2 * index + 2):
            if child < 2 ** (depth + 1) - 1:
                edges.append((f"{prefix}{index}", f"{prefix}{child}"))
    return edges


def grid_edges(rows: int, columns: int, prefix: str = "n") -> list[Edge]:
    """Edges of a directed grid: right and down moves only."""
    edges: list[Edge] = []
    for row in range(rows):
        for column in range(columns):
            node = f"{prefix}{row}_{column}"
            if column + 1 < columns:
                edges.append((node, f"{prefix}{row}_{column + 1}"))
            if row + 1 < rows:
                edges.append((node, f"{prefix}{row + 1}_{column}"))
    return edges


def random_digraph_edges(
    nodes: int,
    edge_probability: float,
    seed: int = 0,
    prefix: str = "n",
    allow_self_loops: bool = False,
) -> list[Edge]:
    """A G(n, p) random directed graph with a fixed seed."""
    generator = random.Random(seed)
    edges: list[Edge] = []
    for source in range(nodes):
        for target in range(nodes):
            if source == target and not allow_self_loops:
                continue
            if generator.random() < edge_probability:
                edges.append((f"{prefix}{source}", f"{prefix}{target}"))
    return edges


def random_game_edges(
    nodes: int,
    out_degree: int,
    seed: int = 0,
    prefix: str = "n",
) -> list[Edge]:
    """A random game graph: each non-sink node gets up to ``out_degree``
    outgoing moves; roughly a quarter of the nodes are forced to be sinks so
    the games have interesting won/lost/drawn mixtures."""
    generator = random.Random(seed)
    edges: list[Edge] = []
    sink_count = max(1, nodes // 4)
    sinks = set(generator.sample(range(nodes), sink_count))
    for source in range(nodes):
        if source in sinks:
            continue
        degree = generator.randint(1, max(1, out_degree))
        targets = generator.sample(range(nodes), min(degree, nodes))
        for target in targets:
            if target != source:
                edges.append((f"{prefix}{source}", f"{prefix}{target}"))
    return edges


def nodes_of(edges: Iterable[Edge]) -> list[object]:
    """The distinct endpoints of an edge list, in first-seen order."""
    result: list[object] = []
    seen: set[object] = set()
    for source, target in edges:
        for node in (source, target):
            if node not in seen:
                seen.add(node)
                result.append(node)
    return result
