"""Win–move games (Example 5.2 of the paper).

The single rule ::

    wins(X) :- move(X, Y), not wins(Y).

describes a game in which a player wins from position ``X`` when some move
leads to a position from which the opponent loses.  The paper uses it as
the canonical unstratifiable program: on acyclic move graphs the AFP model
is total, on cyclic graphs positions caught in a draw cycle are left
undefined, and Kolaitis's expressiveness separation of stratified programs
is built on the same game.

The module provides the game program, the three move graphs of Figure 4,
and a solver that maps each position to ``"won"`` / ``"lost"`` /
``"drawn"`` according to the well-founded model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.alternating import AlternatingFixpointResult, alternating_fixpoint
from ..datalog.atoms import Atom
from ..datalog.builder import ProgramBuilder
from ..datalog.rules import Program
from ..datalog.terms import Constant

__all__ = [
    "WIN_RULE",
    "win_move_program",
    "figure4a_edges",
    "figure4b_edges",
    "figure4c_edges",
    "GameSolution",
    "solve_game",
]

#: The win–move rule exactly as in Example 5.2.
WIN_RULE = "wins(X) :- move(X, Y), not wins(Y)."


def win_move_program(edges: Iterable[tuple[object, object]]) -> Program:
    """Build the win–move program over the given move graph."""
    builder = ProgramBuilder()
    for source, target in edges:
        builder.fact("move", source, target)
    builder.rule(("wins", "X"), [("move", "X", "Y"), ("not", "wins", "Y")])
    return builder.build()


def figure4a_edges() -> list[tuple[str, str]]:
    """An acyclic move graph with the outcome pattern of Figure 4(a).

    The paper reports the total AFP model ``wins{b, e, g}`` true and
    ``wins{a, c, d, f, h, i}`` false; this graph realises exactly that
    pattern (sinks ``c, d, f, h, i``; winners ``b, e, g`` each move to a
    sink; ``a`` moves only to winners and therefore loses).
    """
    return [
        ("a", "b"),
        ("a", "e"),
        ("a", "g"),
        ("b", "c"),
        ("b", "d"),
        ("e", "f"),
        ("g", "h"),
        ("g", "i"),
    ]


def figure4b_edges() -> list[tuple[str, str]]:
    """Figure 4(b): a cycle with a tail — the AFP model is partial.

    ``a`` and ``b`` chase each other around a 2-cycle (drawn), ``b`` can also
    move to ``c`` which moves to the sink ``d``: ``wins(c)`` is true and
    ``wins(d)`` false.
    """
    return [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")]


def figure4c_edges() -> list[tuple[str, str]]:
    """Figure 4(c): a cycle, yet the AFP model is total.

    ``a`` and ``b`` form a 2-cycle but ``b`` can escape to the sink ``c``:
    ``wins(b)`` is true, ``wins(a)`` and ``wins(c)`` are false, nothing is
    drawn — and the total AFP model is the unique stable model.
    """
    return [("a", "b"), ("b", "a"), ("b", "c")]


@dataclass(frozen=True)
class GameSolution:
    """Game-theoretic reading of the well-founded model of a win–move game."""

    result: AlternatingFixpointResult
    won: frozenset[object]
    lost: frozenset[object]
    drawn: frozenset[object]

    def status_of(self, position: object) -> str:
        if position in self.won:
            return "won"
        if position in self.lost:
            return "lost"
        if position in self.drawn:
            return "drawn"
        return "unknown"

    def as_mapping(self) -> dict[object, str]:
        mapping = {position: "won" for position in self.won}
        mapping.update({position: "lost" for position in self.lost})
        mapping.update({position: "drawn" for position in self.drawn})
        return mapping


def solve_game(edges: Iterable[tuple[object, object]]) -> GameSolution:
    """Solve a win–move game with the alternating fixpoint.

    Positions whose ``wins`` atom is true are won, false are lost, undefined
    are drawn (they lie on cycles from which neither player can force a
    win).
    """
    edge_list = list(edges)
    program = win_move_program(edge_list)
    positions: list[object] = []
    seen: set[object] = set()
    for source, target in edge_list:
        for node in (source, target):
            if node not in seen:
                seen.add(node)
                positions.append(node)
    # Ask for a verdict on every position, even isolated sinks whose wins
    # atom would otherwise not occur in the ground program.
    extra = [Atom("wins", (Constant(node),)) for node in positions]
    result = alternating_fixpoint(program, extra_atoms=extra)

    won: set[object] = set()
    lost: set[object] = set()
    drawn: set[object] = set()
    for node in positions:
        atom = Atom("wins", (Constant(node),))
        verdict = result.value_of(atom)
        if verdict == "true":
            won.add(node)
        elif verdict == "false":
            lost.add(node)
        else:
            drawn.add(node)
    return GameSolution(result, frozenset(won), frozenset(lost), frozenset(drawn))
