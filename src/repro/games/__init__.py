"""Win–move games (Example 5.2) and graph workload generators."""

from .graphs import (
    binary_tree_edges,
    chain_edges,
    complete_dag_edges,
    cycle_edges,
    grid_edges,
    lollipop_edges,
    nodes_of,
    random_digraph_edges,
    random_game_edges,
)
from .winmove import (
    WIN_RULE,
    GameSolution,
    figure4a_edges,
    figure4b_edges,
    figure4c_edges,
    solve_game,
    win_move_program,
)

__all__ = [
    "binary_tree_edges",
    "chain_edges",
    "complete_dag_edges",
    "cycle_edges",
    "grid_edges",
    "lollipop_edges",
    "nodes_of",
    "random_digraph_edges",
    "random_game_edges",
    "WIN_RULE",
    "GameSolution",
    "figure4a_edges",
    "figure4b_edges",
    "figure4c_edges",
    "solve_game",
    "win_move_program",
]
