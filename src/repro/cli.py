"""Command-line interface.

``python -m repro <command> ...`` exposes the library to shell users:

* ``solve FILE``      — compute a model under a chosen semantics and print
  it (or write JSON with ``--json OUT``);
* ``trace FILE``      — print the alternating-fixpoint iteration table
  (the Table I view) for the program;
* ``query FILE Q``    — answer a conjunctive query against the computed
  model;
* ``stable FILE``     — enumerate stable models;
* ``classify FILE``   — report the program's syntactic class (stratified,
  locally stratified, strict, ...);
* ``explain FILE A``  — justify why atom ``A`` is true / false / undefined
  in the well-founded model;
* ``compare FILE``    — show per-atom verdicts under every semantics;
* ``bench FILE``      — time the grounding phase (indexed hash-join
  grounder versus the scan oracle, for non-ground programs) and the naive
  versus semi-naive evaluation strategies on the program's well-founded
  model.

Commands that evaluate fixpoints accept ``--strategy seminaive|naive``
(semi-naive indexed evaluation is the default; naive re-scans every ground
rule and exists as the differential-testing oracle).

Programs are rule files in the textual syntax (see README); EDB relations
can be loaded from CSV with repeated ``--facts relation=path.csv`` options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import classify
from .core import alternating_fixpoint, stable_models
from .core.explain import Explainer
from .datalog import Database, parse_atom
from .datalog.io import load_facts_csv, load_program, save_interpretation_json
from .datalog.rules import Program
from .engine import answers, ask, solve
from .engine.solver import SUPPORTED_SEMANTICS
from .evaluation import DEFAULT_STRATEGY, EVALUATION_STRATEGIES
from .exceptions import ReproError
from .fixpoint.interpretations import TruthValue
from .reporting import render_comparison, render_model, render_trace
from .semantics import compare_semantics

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Well-founded / alternating-fixpoint reasoning for logic programs with negation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("program", help="path to a rule file")
        sub.add_argument(
            "--facts",
            action="append",
            default=[],
            metavar="RELATION=CSV",
            help="load an EDB relation from a CSV file (repeatable)",
        )

    def add_strategy_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--strategy",
            choices=EVALUATION_STRATEGIES,
            default=DEFAULT_STRATEGY,
            help="fixpoint evaluation strategy (default: %(default)s)",
        )

    solve_parser = subparsers.add_parser("solve", help="compute a model and print it")
    add_program_arguments(solve_parser)
    solve_parser.add_argument(
        "--semantics", choices=SUPPORTED_SEMANTICS, default="auto", help="semantics to use"
    )
    add_strategy_argument(solve_parser)
    solve_parser.add_argument("--predicate", help="restrict the printed model to one relation")
    solve_parser.add_argument("--json", metavar="OUT", help="also write the model as JSON")

    trace_parser = subparsers.add_parser("trace", help="print the alternating-fixpoint iteration table")
    add_program_arguments(trace_parser)
    add_strategy_argument(trace_parser)
    trace_parser.add_argument("--predicate", help="restrict the table to one relation")

    query_parser = subparsers.add_parser("query", help="answer a conjunctive query")
    add_program_arguments(query_parser)
    query_parser.add_argument("query", help='e.g. "wins(X), not wins(Y)" or a ground query')
    query_parser.add_argument(
        "--semantics", choices=SUPPORTED_SEMANTICS, default="auto", help="semantics to use"
    )
    add_strategy_argument(query_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="time naive vs semi-naive evaluation on the program"
    )
    add_program_arguments(bench_parser)
    bench_parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per strategy (best is kept)"
    )

    stable_parser = subparsers.add_parser("stable", help="enumerate stable models")
    add_program_arguments(stable_parser)
    stable_parser.add_argument("--limit", type=int, default=None, help="stop after N models")

    classify_parser = subparsers.add_parser("classify", help="report the program's syntactic class")
    add_program_arguments(classify_parser)

    explain_parser = subparsers.add_parser("explain", help="justify an atom's well-founded verdict")
    add_program_arguments(explain_parser)
    explain_parser.add_argument("atom", help="ground atom, e.g. wins(c)")

    compare_parser = subparsers.add_parser("compare", help="verdicts under every semantics")
    add_program_arguments(compare_parser)
    compare_parser.add_argument(
        "--atoms", nargs="*", default=None, help="atoms to report (default: all IDB atoms)"
    )
    compare_parser.add_argument(
        "--no-stable", action="store_true", help="skip stable-model enumeration"
    )

    return parser


def _load(arguments) -> Program:
    program = load_program(arguments.program)
    if arguments.facts:
        database = Database()
        for entry in arguments.facts:
            if "=" not in entry:
                raise ReproError(f"--facts expects RELATION=CSV, got {entry!r}")
            relation, path = entry.split("=", 1)
            load_facts_csv(path, relation.strip(), database)
        program = database.attach(program)
    return program


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_solve(arguments, out) -> int:
    program = _load(arguments)
    solution = solve(program, semantics=arguments.semantics, strategy=arguments.strategy)
    print(f"semantics: {solution.semantics}", file=out)
    print(render_model(solution.interpretation, solution.base, arguments.predicate), file=out)
    if arguments.json:
        save_interpretation_json(
            solution.interpretation,
            arguments.json,
            base=solution.base,
            metadata={"semantics": solution.semantics},
        )
        print(f"model written to {arguments.json}", file=out)
    return 0


def _cmd_trace(arguments, out) -> int:
    program = _load(arguments)
    result = alternating_fixpoint(program, strategy=arguments.strategy)
    print(render_trace(result, arguments.predicate), file=out)
    print(f"\nconverged after {result.iterations} applications of the stability transform", file=out)
    print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
    return 0


def _cmd_query(arguments, out) -> int:
    program = _load(arguments)
    solution = solve(program, semantics=arguments.semantics, strategy=arguments.strategy)
    text = arguments.query
    has_variables = any(piece and piece[0].isupper() for piece in _argument_tokens(text))
    if has_variables:
        results = list(answers(solution, text))
        if not results:
            print("no answers", file=out)
        for answer in results:
            bindings = ", ".join(f"{k} = {v}" for k, v in sorted(answer.as_dict().items()))
            print(bindings, file=out)
        return 0
    verdict = ask(solution, text)
    print(verdict.value, file=out)
    return 0 if verdict is TruthValue.TRUE else 0


def _argument_tokens(query: str):
    token = ""
    for char in query:
        if char.isalnum() or char == "_":
            token += char
        else:
            if token:
                yield token
            token = ""
    if token:
        yield token


def _cmd_stable(arguments, out) -> int:
    program = _load(arguments)
    models = stable_models(program, limit=arguments.limit)
    if not models:
        print("no stable model", file=out)
        return 1
    for index, model in enumerate(models, start=1):
        atoms = ", ".join(sorted(str(a) for a in model.true_atoms))
        print(f"stable model {index}: {{{atoms}}}", file=out)
    return 0


def _cmd_classify(arguments, out) -> int:
    program = _load(arguments)
    classification = classify(program)
    for key, value in classification.summary().items():
        print(f"{key:24s} {value}", file=out)
    return 0


def _cmd_explain(arguments, out) -> int:
    program = _load(arguments)
    explainer = Explainer.for_program(program)
    atom = parse_atom(arguments.atom)
    print(explainer.explain(atom).render(), file=out)
    return 0


def _cmd_compare(arguments, out) -> int:
    program = _load(arguments)
    comparison = compare_semantics(program, enumerate_stable=not arguments.no_stable)
    if arguments.atoms:
        atoms = [parse_atom(text) for text in arguments.atoms]
    else:
        idb = program.idb_predicates()
        context_base = alternating_fixpoint(program).context.base
        atoms = sorted((a for a in context_base if a.predicate in idb), key=str)
    print(render_comparison(comparison, atoms), file=out)
    print(
        f"\nTheorem 7.8 (AFP == WFS) holds: {'yes' if comparison.agreement_afp_wfs() else 'NO'}",
        file=out,
    )
    return 0


def _cmd_bench(arguments, out) -> int:
    import time

    from .core import build_context
    from .datalog.grounding import GROUNDING_MATCHERS, relevant_ground

    program = _load(arguments)
    repeat = max(1, arguments.repeat)

    # Grounding phase: indexed semi-naive hash joins vs the scan oracle.
    if not program.is_ground:
        grounding_timings: dict[str, float] = {}
        grounded_rule_sets: dict[str, frozenset] = {}
        indexed_grounding = None
        for matcher in GROUNDING_MATCHERS:
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                grounded = relevant_ground(program, matcher=matcher)
                best = min(best, time.perf_counter() - start)
            grounding_timings[matcher] = best
            grounded_rule_sets[matcher] = frozenset(grounded.rules)
            if matcher == "indexed":
                indexed_grounding = grounded
        grounders_agree = len(set(grounded_rule_sets.values())) == 1
        print("grounding phase (relevant_ground):", file=out)
        for matcher in GROUNDING_MATCHERS:
            print(
                f"  {matcher:10s} {grounding_timings[matcher] * 1000:10.3f} ms  (best of {repeat})",
                file=out,
            )
        if grounding_timings["indexed"] > 0:
            speedup = grounding_timings["scan"] / grounding_timings["indexed"]
            print(f"  speedup    {speedup:10.2f}x", file=out)
        print(f"  ground programs agree: {'yes' if grounders_agree else 'NO'}", file=out)
        if not grounders_agree:
            return 1
        # Already ground, so build_context is a pass-through — no third
        # grounding pass.
        program = indexed_grounding

    context = build_context(program)

    timings: dict[str, float] = {}
    results: dict[str, object] = {}
    for strategy in EVALUATION_STRATEGIES:
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            result = alternating_fixpoint(context, strategy=strategy)
            best = min(best, time.perf_counter() - start)
        timings[strategy] = best
        results[strategy] = (result.true_atoms(), result.false_atoms())

    agree = len(set(results.values())) == 1
    stats = context.statistics()
    print("evaluation phase (alternating fixpoint):", file=out)
    print(
        f"program: {stats['ground_rules']} ground rules, {stats['facts']} facts, "
        f"{stats['atoms']} atoms",
        file=out,
    )
    for strategy in EVALUATION_STRATEGIES:
        print(f"{strategy:10s} {timings[strategy] * 1000:10.3f} ms  (best of {repeat})", file=out)
    if timings["seminaive"] > 0:
        print(f"speedup    {timings['naive'] / timings['seminaive']:10.2f}x", file=out)
    print(f"models agree: {'yes' if agree else 'NO'}", file=out)
    return 0 if agree else 1


_COMMANDS = {
    "solve": _cmd_solve,
    "trace": _cmd_trace,
    "query": _cmd_query,
    "stable": _cmd_stable,
    "classify": _cmd_classify,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
