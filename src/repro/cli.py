"""Command-line interface.

``python -m repro <command> ...`` exposes the library to shell users:

* ``solve FILE``      — compute a model under a chosen semantics and print
  it (or write JSON with ``--json OUT``);
* ``repl [FILE]``     — interactive knowledge-base session: assert and
  retract facts against a live :class:`~repro.session.KnowledgeBase` and
  query the incrementally maintained model;
* ``serve [FILE]``    — long-running HTTP JSON API over a live
  :class:`~repro.session.KnowledgeBase`: snapshot-isolated concurrent
  reads, one serialized writer, bounded admission (see
  :mod:`repro.service`);
* ``trace FILE``      — print the alternating-fixpoint iteration table
  (the Table I view) for the program;
* ``query FILE Q``    — answer a conjunctive query against the computed
  model;
* ``stable FILE``     — enumerate stable models;
* ``classify FILE``   — report the program's syntactic class (stratified,
  locally stratified, strict, ...);
* ``explain FILE A``  — justify why atom ``A`` is true / false / undefined
  in the well-founded model;
* ``compare FILE``    — show per-atom verdicts under every semantics;
* ``bench FILE``      — time the grounding phase (indexed hash-join
  grounder versus the scan oracle, for non-ground programs), the naive
  versus semi-naive evaluation strategies, and the modular versus
  monolithic well-founded engines on the program, with per-component
  statistics for the modular run;
* ``profile [FILE]``  — run one traced solve (``repro.obs``) and print
  the hierarchical span tree, counter totals and phase coverage; with
  ``--workload layered:12x200`` a generated workload replaces the file.

``solve``, ``query``, ``bench`` and ``profile`` accept
``--trace-out PATH`` to dump the recorded spans and counters as JSONL
(see :mod:`repro.obs.export` for the schema).

Commands that evaluate fixpoints share one set of configuration options —
``--strategy``, ``--engine``, ``--grounder`` (and ``--semantics`` where a
semantics choice makes sense; ``--store memory|sqlite:PATH`` where EDB
facts are consumed, so ``solve``/``query``/``explain`` can read a
persistent fact base and ``repl`` can mutate one durably) — which are
folded into a single validated :class:`~repro.config.EngineConfig`; every
command therefore rejects an unknown value with the same error message
listing the accepted ones.
``trace`` defaults to the monolithic engine because the Table I view *is*
the global stage sequence (it prints per-component statistics instead when
asked for the modular engine).

Programs are rule files in the textual syntax (see README); EDB relations
can be loaded from CSV with repeated ``--facts relation=path.csv`` options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import classify
from .config import (
    DEFAULT_ENGINE,
    EVALUATION_ENGINES,
    EVALUATION_STRATEGIES,
    SUPPORTED_GROUNDERS,
    SUPPORTED_SEMANTICS,
    EngineConfig,
)
from .core import alternating_fixpoint, modular_well_founded, stable_models
from .datalog import Database, parse_atom
from .datalog.io import load_facts_csv, load_program, save_interpretation_json
from .datalog.rules import Program
from .engine import answers, ask, solve
from .engine.query import query_has_variables
from .evaluation import DEFAULT_STRATEGY
from .exceptions import BudgetError, ReproError
from .fixpoint.interpretations import TruthValue
from .obs import TraceRecorder, phase_coverage, render_counters, render_span_tree, write_trace_jsonl
from .resilience import Budget, metered
from .reporting import render_comparison, render_model, render_trace
from .semantics import compare_semantics
from .session import KnowledgeBase, run_repl

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Well-founded / alternating-fixpoint reasoning for logic programs with negation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser, optional: bool = False) -> None:
        if optional:
            sub.add_argument("program", nargs="?", help="path to a rule file")
        else:
            sub.add_argument("program", help="path to a rule file")
        sub.add_argument(
            "--facts",
            action="append",
            default=[],
            metavar="RELATION=CSV",
            help="load an EDB relation from a CSV file (repeatable)",
        )

    def add_config_arguments(
        sub: argparse.ArgumentParser,
        semantics: bool = False,
        strategy: bool = True,
        engine: bool = True,
        grounder: bool = True,
        store: bool = False,
        engine_default: str = DEFAULT_ENGINE,
    ) -> None:
        # Values are validated centrally by EngineConfig (not argparse
        # choices), so every command rejects bad input with the same
        # message listing the accepted values.  Each command only adds the
        # options it actually consults — a flag a command would ignore is
        # an argparse error, not a silent no-op.
        if semantics:
            sub.add_argument(
                "--semantics",
                default="auto",
                metavar="NAME",
                help=f"semantics to use: {', '.join(SUPPORTED_SEMANTICS)} (default: auto)",
            )
        if strategy:
            sub.add_argument(
                "--strategy",
                default=DEFAULT_STRATEGY,
                metavar="NAME",
                help=f"fixpoint evaluation strategy: {', '.join(EVALUATION_STRATEGIES)} "
                f"(default: {DEFAULT_STRATEGY})",
            )
        if engine:
            sub.add_argument(
                "--engine",
                default=engine_default,
                metavar="NAME",
                help=f"well-founded evaluation engine: {', '.join(EVALUATION_ENGINES)} "
                f"(default: {engine_default})",
            )
        if grounder:
            sub.add_argument(
                "--grounder",
                default="relevant",
                metavar="NAME",
                help=f"grounder: {', '.join(SUPPORTED_GROUNDERS)} (default: relevant)",
            )
        if store:
            sub.add_argument(
                "--store",
                default="memory",
                metavar="SPEC",
                help="fact-storage backend: 'memory' or 'sqlite:PATH' — with a "
                "SQLite store, EDB facts come from (and, in the repl, persist "
                "to) the database file (default: memory)",
            )
        sub.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget for the evaluation; exceeding it aborts "
            "with exit code 3 (default: unlimited)",
        )

    def add_trace_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace-out",
            metavar="PATH",
            default=None,
            help="record the run with repro.obs and write the span/counter trace as JSONL",
        )

    solve_parser = subparsers.add_parser("solve", help="compute a model and print it")
    add_program_arguments(solve_parser)
    add_config_arguments(solve_parser, semantics=True, store=True)
    solve_parser.add_argument("--predicate", help="restrict the printed model to one relation")
    solve_parser.add_argument("--json", metavar="OUT", help="also write the model as JSON")
    add_trace_argument(solve_parser)

    repl_parser = subparsers.add_parser(
        "repl", help="interactive knowledge-base session (assert/retract/query)"
    )
    add_program_arguments(repl_parser, optional=True)
    add_config_arguments(repl_parser, semantics=True, store=True)

    trace_parser = subparsers.add_parser("trace", help="print the alternating-fixpoint iteration table")
    add_program_arguments(trace_parser)
    # Table I *is* the global stage sequence, so the monolithic engine is
    # the default here; --engine modular switches to per-component stats.
    add_config_arguments(trace_parser, grounder=False, engine_default="monolithic")
    trace_parser.add_argument("--predicate", help="restrict the table to one relation")

    query_parser = subparsers.add_parser("query", help="answer a conjunctive query")
    add_program_arguments(query_parser)
    query_parser.add_argument("query", help='e.g. "wins(X), not wins(Y)" or a ground query')
    add_config_arguments(query_parser, semantics=True, store=True)
    add_trace_argument(query_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="time grounding, strategies and engines on the program"
    )
    add_program_arguments(bench_parser)
    # bench sweeps both strategies and both grounding matchers itself, so
    # only the engine of the strategy phase is selectable: naive vs
    # semi-naive S_P evaluation is only exercised globally by the
    # monolithic engine (the modular engine bypasses the strategy on
    # horn/stratified components); the engine phase below always compares
    # both engines regardless.
    add_config_arguments(
        bench_parser, strategy=False, grounder=False, engine_default="monolithic"
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per strategy (best is kept)"
    )
    add_trace_argument(bench_parser)

    profile_parser = subparsers.add_parser(
        "profile", help="run one traced solve and print its span tree and counters"
    )
    add_program_arguments(profile_parser, optional=True)
    add_config_arguments(profile_parser, semantics=True, store=True)
    profile_parser.add_argument(
        "--workload",
        metavar="SPEC",
        default=None,
        help="profile a generated workload instead of a file: layered:LxS "
        "(repro.workloads.layered_program), negloop:N, choice:N",
    )
    add_trace_argument(profile_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="serve the knowledge base as a concurrent JSON HTTP API"
    )
    add_program_arguments(serve_parser, optional=True)
    add_config_arguments(serve_parser, semantics=True, store=True)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port; 0 picks a free one (default: 8080)"
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        metavar="N",
        help="write admission queue bound; a full queue sheds with 503 (default: 64)",
    )
    serve_parser.add_argument(
        "--max-readers",
        type=int,
        default=64,
        metavar="N",
        help="concurrent read requests admitted before shedding (default: 64)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall-clock budget; tripping it returns the "
        "504 budget payload (default: unlimited)",
    )

    stable_parser = subparsers.add_parser("stable", help="enumerate stable models")
    add_program_arguments(stable_parser)
    # The enumerator prunes with the (engine-independent) alternating
    # fixpoint and grounds with the default grounder: only the strategy
    # is consulted.
    add_config_arguments(stable_parser, engine=False, grounder=False)
    stable_parser.add_argument("--limit", type=int, default=None, help="stop after N models")

    classify_parser = subparsers.add_parser("classify", help="report the program's syntactic class")
    add_program_arguments(classify_parser)

    explain_parser = subparsers.add_parser("explain", help="justify an atom's well-founded verdict")
    add_program_arguments(explain_parser)
    add_config_arguments(explain_parser, store=True)
    explain_parser.add_argument("atom", help="ground atom, e.g. wins(c)")

    compare_parser = subparsers.add_parser("compare", help="verdicts under every semantics")
    add_program_arguments(compare_parser)
    compare_parser.add_argument(
        "--atoms", nargs="*", default=None, help="atoms to report (default: all IDB atoms)"
    )
    compare_parser.add_argument(
        "--no-stable", action="store_true", help="skip stable-model enumeration"
    )

    return parser


def _config_from_args(arguments) -> EngineConfig:
    """Fold the command's options into one validated EngineConfig; bad
    values raise through EngineConfig with the shared message format."""
    timeout = getattr(arguments, "timeout", None)
    return EngineConfig(
        semantics=getattr(arguments, "semantics", "auto"),
        strategy=getattr(arguments, "strategy", DEFAULT_STRATEGY),
        engine=getattr(arguments, "engine", DEFAULT_ENGINE),
        grounder=getattr(arguments, "grounder", "relevant"),
        store=getattr(arguments, "store", "memory"),
        budget=Budget(max_seconds=timeout) if timeout is not None else None,
    )


def _load(arguments) -> Program:
    if arguments.program is None:
        program = Program()
    else:
        program = load_program(arguments.program)
    if arguments.facts:
        database = Database()
        for entry in arguments.facts:
            if "=" not in entry:
                raise ReproError(f"--facts expects RELATION=CSV, got {entry!r}")
            relation, path = entry.split("=", 1)
            load_facts_csv(path, relation.strip(), database)
        program = database.attach(program)
    return program


def _workload_program(spec: str) -> Program:
    """Build a generated workload from ``kind:params`` (e.g. ``layered:12x200``)."""
    from .workloads import generators

    kind, _, params = spec.partition(":")
    try:
        if kind == "layered":
            layers_text, _, size_text = params.partition("x")
            return generators.layered_program(int(layers_text), int(size_text))
        if kind == "negloop":
            return generators.random_negative_loop_program(int(params))
        if kind == "choice":
            return generators.two_player_choice_program(int(params))
    except ValueError as error:
        raise ReproError(f"bad --workload parameters in {spec!r}: {error}") from None
    raise ReproError(
        f"unknown workload {spec!r}; expected layered:LxS, negloop:N or choice:N"
    )


def _write_trace(recorder: TraceRecorder, path: str, out, **metadata: object) -> None:
    count = write_trace_jsonl(recorder, path, metadata=metadata)
    print(f"trace written to {path} ({count} records)", file=out)


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #
def _render_component_stats(result) -> str:
    """Per-component statistics of a modular well-founded run."""
    methods = result.method_counts()
    stages = result.stages_by_method()
    lines = [
        f"components: {result.component_count} "
        f"(largest {result.largest_component} atoms)",
    ]
    for method in ("horn", "stratified", "alternating"):
        if method not in methods:
            continue
        lines.append(
            f"  {method:12s} {methods[method]:6d} components, "
            f"{stages.get(method, 0)} stages"
        )
    sizes = sorted((report.size for report in result.components), reverse=True)
    preview = ", ".join(str(size) for size in sizes[:8])
    if len(sizes) > 8:
        preview += ", ..."
    lines.append(f"  sizes        [{preview}]")
    return "\n".join(lines)


def _cmd_solve(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    recorder = TraceRecorder() if arguments.trace_out else None
    solution = solve(program, config=config, recorder=recorder)
    print(f"semantics: {solution.semantics}", file=out)
    print(render_model(solution.interpretation, solution.base, arguments.predicate), file=out)
    if arguments.json:
        save_interpretation_json(
            solution.interpretation,
            arguments.json,
            base=solution.base,
            metadata={"semantics": solution.semantics},
        )
        print(f"model written to {arguments.json}", file=out)
    if recorder is not None:
        _write_trace(recorder, arguments.trace_out, out, command="solve", program=arguments.program)
    return 0


def _cmd_repl(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    kb = KnowledgeBase(program, config=config)
    interactive = sys.stdin.isatty()
    if interactive:
        print("repro interactive session — type 'help' for commands", file=out)
    return run_repl(kb, sys.stdin, out, prompt="repro> " if interactive else None)


def _cmd_trace(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    if config.engine == "modular":
        result = modular_well_founded(program, config=config)
        print(_render_component_stats(result), file=out)
        print(render_model(result.model, result.context.base, arguments.predicate), file=out)
        print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
        return 0
    if config.engine == "kernel":
        # The kernel keeps aggregate per-method tallies, not per-component
        # reports — render those instead of a synthetic Table I view.
        from .kernel import kernel_well_founded

        result = kernel_well_founded(program, config=config)
        methods = result.method_counts()
        print(f"components: {result.component_count} (compiled kernel)", file=out)
        for method in ("horn", "stratified", "alternating"):
            if method in methods:
                print(f"  {method:12s} {methods[method]:6d} components", file=out)
        print(f"  stages       {result.stages} total", file=out)
        print(render_model(result.model, result.context.base, arguments.predicate), file=out)
        print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
        return 0
    result = alternating_fixpoint(program, config=config)
    print(render_trace(result, arguments.predicate), file=out)
    print(f"\nconverged after {result.iterations} applications of the stability transform", file=out)
    print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
    return 0


def _cmd_query(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    recorder = TraceRecorder() if arguments.trace_out else None
    solution = solve(program, config=config, recorder=recorder)
    if recorder is not None:
        _write_trace(recorder, arguments.trace_out, out, command="query", program=arguments.program)
    text = arguments.query
    if query_has_variables(text):
        results = list(answers(solution, text))
        if not results:
            print("no answers", file=out)
        for answer in results:
            bindings = ", ".join(f"{k} = {v}" for k, v in sorted(answer.as_dict().items()))
            print(bindings, file=out)
        return 0
    verdict = ask(solution, text)
    print(verdict.value, file=out)
    # grep-style exit status so shell scripts can branch on the verdict
    return 0 if verdict is TruthValue.TRUE else 1


def _cmd_serve(arguments, out) -> int:
    # Imported here so the other subcommands do not pay the http.server
    # import; everything is stdlib either way.
    from .service.http import run_server

    config = _config_from_args(arguments)
    program = _load(arguments)
    kb = KnowledgeBase(program, config=config)
    try:
        return run_server(
            kb,
            arguments.host,
            arguments.port,
            queue_size=arguments.queue_size,
            max_readers=arguments.max_readers,
            request_timeout=arguments.request_timeout,
            out=out,
        )
    finally:
        kb.close()


def _cmd_stable(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    models = stable_models(program, limit=arguments.limit, config=config)
    if not models:
        print("no stable model", file=out)
        return 1
    for index, model in enumerate(models, start=1):
        atoms = ", ".join(sorted(str(a) for a in model.true_atoms))
        print(f"stable model {index}: {{{atoms}}}", file=out)
    return 0


def _cmd_classify(arguments, out) -> int:
    program = _load(arguments)
    classification = classify(program)
    for key, value in classification.summary().items():
        print(f"{key:24s} {value}", file=out)
    return 0


def _cmd_explain(arguments, out) -> int:
    config = _config_from_args(arguments)
    program = _load(arguments)
    kb = KnowledgeBase(program, config=config.replace(semantics="well-founded"))
    atom = parse_atom(arguments.atom)
    print(kb.explain(atom).render(), file=out)
    return 0


def _cmd_compare(arguments, out) -> int:
    program = _load(arguments)
    comparison = compare_semantics(program, enumerate_stable=not arguments.no_stable)
    if arguments.atoms:
        atoms = [parse_atom(text) for text in arguments.atoms]
    else:
        idb = program.idb_predicates()
        context_base = alternating_fixpoint(program).context.base
        atoms = sorted((a for a in context_base if a.predicate in idb), key=str)
    print(render_comparison(comparison, atoms), file=out)
    print(
        f"\nTheorem 7.8 (AFP == WFS) holds: {'yes' if comparison.agreement_afp_wfs() else 'NO'}",
        file=out,
    )
    return 0


def _cmd_bench(arguments, out) -> int:
    import time

    from .core import build_context
    from .datalog.grounding import GROUNDING_MATCHERS, relevant_ground

    config = _config_from_args(arguments)
    program = _load(arguments)
    repeat = max(1, arguments.repeat)

    # The bench drives relevant_ground / alternating_fixpoint directly
    # (no config plumbed through), so the budget is installed as the
    # ambient meter for every timed phase below.
    with metered(config.budget):

        # Grounding phase: indexed semi-naive hash joins vs the scan oracle.
        if not program.is_ground:
            grounding_timings: dict[str, float] = {}
            grounded_rule_sets: dict[str, frozenset] = {}
            indexed_grounding = None
            for matcher in GROUNDING_MATCHERS:
                best = float("inf")
                for _ in range(repeat):
                    start = time.perf_counter()
                    grounded = relevant_ground(program, matcher=matcher)
                    best = min(best, time.perf_counter() - start)
                grounding_timings[matcher] = best
                grounded_rule_sets[matcher] = frozenset(grounded.rules)
                if matcher == "indexed":
                    indexed_grounding = grounded
            grounders_agree = len(set(grounded_rule_sets.values())) == 1
            print("grounding phase (relevant_ground):", file=out)
            for matcher in GROUNDING_MATCHERS:
                print(
                    f"  {matcher:10s} {grounding_timings[matcher] * 1000:10.3f} ms  (best of {repeat})",
                    file=out,
                )
            if grounding_timings["indexed"] > 0:
                speedup = grounding_timings["scan"] / grounding_timings["indexed"]
                print(f"  speedup    {speedup:10.2f}x", file=out)
            print(f"  ground programs agree: {'yes' if grounders_agree else 'NO'}", file=out)
            if not grounders_agree:
                return 1
            # Already ground, so build_context is a pass-through — no third
            # grounding pass.
            program = indexed_grounding

        context = build_context(program)

        timings: dict[str, float] = {}
        results: dict[str, object] = {}
        for strategy in EVALUATION_STRATEGIES:
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                result = alternating_fixpoint(context, strategy=strategy, engine=config.engine)
                best = min(best, time.perf_counter() - start)
            timings[strategy] = best
            results[strategy] = (result.true_atoms(), result.false_atoms())

        agree = len(set(results.values())) == 1
        stats = context.statistics()
        print(f"evaluation phase (alternating fixpoint, {config.engine} engine):", file=out)
        print(
            f"program: {stats['ground_rules']} ground rules, {stats['facts']} facts, "
            f"{stats['atoms']} atoms",
            file=out,
        )
        for strategy in EVALUATION_STRATEGIES:
            print(f"{strategy:10s} {timings[strategy] * 1000:10.3f} ms  (best of {repeat})", file=out)
        if timings["seminaive"] > 0:
            print(f"speedup    {timings['naive'] / timings['seminaive']:10.2f}x", file=out)
        print(f"models agree: {'yes' if agree else 'NO'}", file=out)

        # Engine phase: component-wise modular evaluation and the compiled
        # kernel against the monolithic alternating fixpoint, all on the
        # default strategy.  The kernel's compile is timed separately —
        # the per-run kernel number is the (cached-IR) evaluation the
        # session and service layers actually pay per refresh.
        from .kernel import compile_context, kernel_well_founded

        engine_timings: dict[str, float] = {}
        modular_result = None
        kernel_result = None
        monolithic_result = None
        compile_start = time.perf_counter()
        compile_context(context)
        kernel_compile = time.perf_counter() - compile_start
        for engine in EVALUATION_ENGINES:
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                if engine == "modular":
                    modular_result = modular_well_founded(context)
                elif engine == "kernel":
                    kernel_result = kernel_well_founded(context)
                else:
                    monolithic_result = alternating_fixpoint(context, keep_stages=False)
                best = min(best, time.perf_counter() - start)
            engine_timings[engine] = best
        model_views = {
            "modular": (
                frozenset(modular_result.model.true_atoms),
                frozenset(modular_result.model.false_atoms),
            ),
            "monolithic": (
                frozenset(monolithic_result.positive_fixpoint),
                frozenset(monolithic_result.negative_fixpoint.atoms),
            ),
            "kernel": (
                frozenset(kernel_result.model.true_atoms),
                frozenset(kernel_result.model.false_atoms),
            ),
        }
        engines_agree = len(set(model_views.values())) == 1
        print("\nengine phase (well-founded model, kernel vs modular vs monolithic):", file=out)
        for engine in EVALUATION_ENGINES:
            note = "  (+ one-off compile below)" if engine == "kernel" else ""
            print(
                f"{engine:10s} {engine_timings[engine] * 1000:10.3f} ms  (best of {repeat}){note}",
                file=out,
            )
        print(f"{'compile':10s} {kernel_compile * 1000:10.3f} ms  (kernel IR, once per grounding)", file=out)
        if engine_timings["modular"] > 0:
            print(
                f"speedup    {engine_timings['monolithic'] / engine_timings['modular']:10.2f}x  (modular vs monolithic)",
                file=out,
            )
        if engine_timings["kernel"] > 0:
            print(
                f"speedup    {engine_timings['modular'] / engine_timings['kernel']:10.2f}x  (kernel vs modular)",
                file=out,
            )
        print(_render_component_stats(modular_result), file=out)
        kernel_stats = kernel_result.compiled.statistics()
        print(
            f"kernel IR: {kernel_stats['atoms']} atoms, {kernel_stats['rules']} rules, "
            f"{kernel_stats['components']} components, {kernel_stats['bytes']} bytes",
            file=out,
        )
        print(f"models agree: {'yes' if engines_agree else 'NO'}", file=out)
        if arguments.trace_out:
            # One extra traced modular run over the already-built context —
            # the timed runs above stay recorder-free.
            recorder = TraceRecorder()
            modular_well_founded(context, recorder=recorder)
            _write_trace(recorder, arguments.trace_out, out, command="bench", program=arguments.program)
        return 0 if agree and engines_agree else 1


def _cmd_profile(arguments, out) -> int:
    import time

    config = _config_from_args(arguments)
    if arguments.workload and arguments.program:
        raise ReproError("profile takes either a program file or --workload, not both")
    if arguments.workload:
        program = _workload_program(arguments.workload)
        source = arguments.workload
    elif arguments.program:
        program = _load(arguments)
        source = arguments.program
    else:
        raise ReproError("profile needs a program file or --workload SPEC")

    recorder = TraceRecorder()
    start = time.perf_counter()
    solution = solve(program, config=config, recorder=recorder)
    wall = time.perf_counter() - start

    print(f"workload: {source}", file=out)
    print(f"semantics: {solution.semantics}", file=out)
    print(file=out)
    print(render_span_tree(recorder), file=out)
    print(file=out)
    print(render_counters(recorder), file=out)
    root = recorder.find("solve")
    coverage = phase_coverage(recorder)
    if root is not None and coverage is not None:
        print(file=out)
        print(
            f"phase coverage: {coverage:.1%} of the {root.elapsed * 1000:.2f} ms 'solve' span "
            f"({wall * 1000:.2f} ms wall-clock) is inside a named phase",
            file=out,
        )
    if arguments.trace_out:
        _write_trace(recorder, arguments.trace_out, out, command="profile", workload=source)
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "repl": _cmd_repl,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "query": _cmd_query,
    "stable": _cmd_stable,
    "classify": _cmd_classify,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments, out)
    except BudgetError as error:
        # Uniform one-line diagnostic + dedicated exit code for resource
        # exhaustion, so scripts can tell "over budget" from "bad input".
        print(f"error: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
