"""Command-line interface.

``python -m repro <command> ...`` exposes the library to shell users:

* ``solve FILE``      — compute a model under a chosen semantics and print
  it (or write JSON with ``--json OUT``);
* ``trace FILE``      — print the alternating-fixpoint iteration table
  (the Table I view) for the program;
* ``query FILE Q``    — answer a conjunctive query against the computed
  model;
* ``stable FILE``     — enumerate stable models;
* ``classify FILE``   — report the program's syntactic class (stratified,
  locally stratified, strict, ...);
* ``explain FILE A``  — justify why atom ``A`` is true / false / undefined
  in the well-founded model;
* ``compare FILE``    — show per-atom verdicts under every semantics;
* ``bench FILE``      — time the grounding phase (indexed hash-join
  grounder versus the scan oracle, for non-ground programs), the naive
  versus semi-naive evaluation strategies, and the modular versus
  monolithic well-founded engines on the program, with per-component
  statistics for the modular run.

Commands that evaluate fixpoints accept ``--strategy seminaive|naive``
(semi-naive indexed evaluation is the default; naive re-scans every ground
rule and exists as the differential-testing oracle) and ``--engine
modular|monolithic`` (component-wise well-founded evaluation over the SCC
condensation of the atom dependency graph, versus the global alternating
fixpoint; ``trace`` defaults to monolithic because the Table I view *is*
the global stage sequence, and prints per-component statistics instead
when asked for the modular engine).

Programs are rule files in the textual syntax (see README); EDB relations
can be loaded from CSV with repeated ``--facts relation=path.csv`` options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import classify
from .core import (
    DEFAULT_ENGINE,
    EVALUATION_ENGINES,
    alternating_fixpoint,
    modular_well_founded,
    stable_models,
)
from .core.explain import Explainer
from .datalog import Database, parse_atom
from .datalog.io import load_facts_csv, load_program, save_interpretation_json
from .datalog.rules import Program
from .engine import answers, ask, solve
from .engine.solver import SUPPORTED_SEMANTICS
from .evaluation import DEFAULT_STRATEGY, EVALUATION_STRATEGIES
from .exceptions import ReproError
from .fixpoint.interpretations import TruthValue
from .reporting import render_comparison, render_model, render_trace
from .semantics import compare_semantics

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Well-founded / alternating-fixpoint reasoning for logic programs with negation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("program", help="path to a rule file")
        sub.add_argument(
            "--facts",
            action="append",
            default=[],
            metavar="RELATION=CSV",
            help="load an EDB relation from a CSV file (repeatable)",
        )

    def add_strategy_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--strategy",
            choices=EVALUATION_STRATEGIES,
            default=DEFAULT_STRATEGY,
            help="fixpoint evaluation strategy (default: %(default)s)",
        )

    def add_engine_argument(sub: argparse.ArgumentParser, default: str = DEFAULT_ENGINE) -> None:
        sub.add_argument(
            "--engine",
            choices=EVALUATION_ENGINES,
            default=default,
            help="well-founded evaluation engine (default: %(default)s)",
        )

    solve_parser = subparsers.add_parser("solve", help="compute a model and print it")
    add_program_arguments(solve_parser)
    solve_parser.add_argument(
        "--semantics", choices=SUPPORTED_SEMANTICS, default="auto", help="semantics to use"
    )
    add_strategy_argument(solve_parser)
    add_engine_argument(solve_parser)
    solve_parser.add_argument("--predicate", help="restrict the printed model to one relation")
    solve_parser.add_argument("--json", metavar="OUT", help="also write the model as JSON")

    trace_parser = subparsers.add_parser("trace", help="print the alternating-fixpoint iteration table")
    add_program_arguments(trace_parser)
    add_strategy_argument(trace_parser)
    # Table I *is* the global stage sequence, so the monolithic engine is
    # the default here; --engine modular switches to per-component stats.
    add_engine_argument(trace_parser, default="monolithic")
    trace_parser.add_argument("--predicate", help="restrict the table to one relation")

    query_parser = subparsers.add_parser("query", help="answer a conjunctive query")
    add_program_arguments(query_parser)
    query_parser.add_argument("query", help='e.g. "wins(X), not wins(Y)" or a ground query')
    query_parser.add_argument(
        "--semantics", choices=SUPPORTED_SEMANTICS, default="auto", help="semantics to use"
    )
    add_strategy_argument(query_parser)
    add_engine_argument(query_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="time grounding, strategies and engines on the program"
    )
    add_program_arguments(bench_parser)
    # The strategy phase times naive vs semi-naive S_P evaluation, which
    # only the monolithic engine exercises globally (the modular engine
    # bypasses the strategy on horn/stratified components); the engine
    # phase below always compares both engines regardless.
    add_engine_argument(bench_parser, default="monolithic")
    bench_parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per strategy (best is kept)"
    )

    stable_parser = subparsers.add_parser("stable", help="enumerate stable models")
    add_program_arguments(stable_parser)
    stable_parser.add_argument("--limit", type=int, default=None, help="stop after N models")

    classify_parser = subparsers.add_parser("classify", help="report the program's syntactic class")
    add_program_arguments(classify_parser)

    explain_parser = subparsers.add_parser("explain", help="justify an atom's well-founded verdict")
    add_program_arguments(explain_parser)
    explain_parser.add_argument("atom", help="ground atom, e.g. wins(c)")

    compare_parser = subparsers.add_parser("compare", help="verdicts under every semantics")
    add_program_arguments(compare_parser)
    compare_parser.add_argument(
        "--atoms", nargs="*", default=None, help="atoms to report (default: all IDB atoms)"
    )
    compare_parser.add_argument(
        "--no-stable", action="store_true", help="skip stable-model enumeration"
    )

    return parser


def _load(arguments) -> Program:
    program = load_program(arguments.program)
    if arguments.facts:
        database = Database()
        for entry in arguments.facts:
            if "=" not in entry:
                raise ReproError(f"--facts expects RELATION=CSV, got {entry!r}")
            relation, path = entry.split("=", 1)
            load_facts_csv(path, relation.strip(), database)
        program = database.attach(program)
    return program


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #
def _render_component_stats(result) -> str:
    """Per-component statistics of a modular well-founded run."""
    methods = result.method_counts()
    stages = result.stages_by_method()
    lines = [
        f"components: {result.component_count} "
        f"(largest {result.largest_component} atoms)",
    ]
    for method in ("horn", "stratified", "alternating"):
        if method not in methods:
            continue
        lines.append(
            f"  {method:12s} {methods[method]:6d} components, "
            f"{stages.get(method, 0)} stages"
        )
    sizes = sorted((report.size for report in result.components), reverse=True)
    preview = ", ".join(str(size) for size in sizes[:8])
    if len(sizes) > 8:
        preview += ", ..."
    lines.append(f"  sizes        [{preview}]")
    return "\n".join(lines)


def _cmd_solve(arguments, out) -> int:
    program = _load(arguments)
    solution = solve(
        program,
        semantics=arguments.semantics,
        strategy=arguments.strategy,
        engine=arguments.engine,
    )
    print(f"semantics: {solution.semantics}", file=out)
    print(render_model(solution.interpretation, solution.base, arguments.predicate), file=out)
    if arguments.json:
        save_interpretation_json(
            solution.interpretation,
            arguments.json,
            base=solution.base,
            metadata={"semantics": solution.semantics},
        )
        print(f"model written to {arguments.json}", file=out)
    return 0


def _cmd_trace(arguments, out) -> int:
    program = _load(arguments)
    if arguments.engine == "modular":
        result = modular_well_founded(program, strategy=arguments.strategy)
        print(_render_component_stats(result), file=out)
        print(render_model(result.model, result.context.base, arguments.predicate), file=out)
        print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
        return 0
    result = alternating_fixpoint(program, strategy=arguments.strategy)
    print(render_trace(result, arguments.predicate), file=out)
    print(f"\nconverged after {result.iterations} applications of the stability transform", file=out)
    print(f"total model: {'yes' if result.is_total else 'no'}", file=out)
    return 0


def _cmd_query(arguments, out) -> int:
    program = _load(arguments)
    solution = solve(
        program,
        semantics=arguments.semantics,
        strategy=arguments.strategy,
        engine=arguments.engine,
    )
    text = arguments.query
    has_variables = any(piece and piece[0].isupper() for piece in _argument_tokens(text))
    if has_variables:
        results = list(answers(solution, text))
        if not results:
            print("no answers", file=out)
        for answer in results:
            bindings = ", ".join(f"{k} = {v}" for k, v in sorted(answer.as_dict().items()))
            print(bindings, file=out)
        return 0
    verdict = ask(solution, text)
    print(verdict.value, file=out)
    return 0 if verdict is TruthValue.TRUE else 0


def _argument_tokens(query: str):
    token = ""
    for char in query:
        if char.isalnum() or char == "_":
            token += char
        else:
            if token:
                yield token
            token = ""
    if token:
        yield token


def _cmd_stable(arguments, out) -> int:
    program = _load(arguments)
    models = stable_models(program, limit=arguments.limit)
    if not models:
        print("no stable model", file=out)
        return 1
    for index, model in enumerate(models, start=1):
        atoms = ", ".join(sorted(str(a) for a in model.true_atoms))
        print(f"stable model {index}: {{{atoms}}}", file=out)
    return 0


def _cmd_classify(arguments, out) -> int:
    program = _load(arguments)
    classification = classify(program)
    for key, value in classification.summary().items():
        print(f"{key:24s} {value}", file=out)
    return 0


def _cmd_explain(arguments, out) -> int:
    program = _load(arguments)
    explainer = Explainer.for_program(program)
    atom = parse_atom(arguments.atom)
    print(explainer.explain(atom).render(), file=out)
    return 0


def _cmd_compare(arguments, out) -> int:
    program = _load(arguments)
    comparison = compare_semantics(program, enumerate_stable=not arguments.no_stable)
    if arguments.atoms:
        atoms = [parse_atom(text) for text in arguments.atoms]
    else:
        idb = program.idb_predicates()
        context_base = alternating_fixpoint(program).context.base
        atoms = sorted((a for a in context_base if a.predicate in idb), key=str)
    print(render_comparison(comparison, atoms), file=out)
    print(
        f"\nTheorem 7.8 (AFP == WFS) holds: {'yes' if comparison.agreement_afp_wfs() else 'NO'}",
        file=out,
    )
    return 0


def _cmd_bench(arguments, out) -> int:
    import time

    from .core import build_context
    from .datalog.grounding import GROUNDING_MATCHERS, relevant_ground

    program = _load(arguments)
    repeat = max(1, arguments.repeat)

    # Grounding phase: indexed semi-naive hash joins vs the scan oracle.
    if not program.is_ground:
        grounding_timings: dict[str, float] = {}
        grounded_rule_sets: dict[str, frozenset] = {}
        indexed_grounding = None
        for matcher in GROUNDING_MATCHERS:
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                grounded = relevant_ground(program, matcher=matcher)
                best = min(best, time.perf_counter() - start)
            grounding_timings[matcher] = best
            grounded_rule_sets[matcher] = frozenset(grounded.rules)
            if matcher == "indexed":
                indexed_grounding = grounded
        grounders_agree = len(set(grounded_rule_sets.values())) == 1
        print("grounding phase (relevant_ground):", file=out)
        for matcher in GROUNDING_MATCHERS:
            print(
                f"  {matcher:10s} {grounding_timings[matcher] * 1000:10.3f} ms  (best of {repeat})",
                file=out,
            )
        if grounding_timings["indexed"] > 0:
            speedup = grounding_timings["scan"] / grounding_timings["indexed"]
            print(f"  speedup    {speedup:10.2f}x", file=out)
        print(f"  ground programs agree: {'yes' if grounders_agree else 'NO'}", file=out)
        if not grounders_agree:
            return 1
        # Already ground, so build_context is a pass-through — no third
        # grounding pass.
        program = indexed_grounding

    context = build_context(program)

    timings: dict[str, float] = {}
    results: dict[str, object] = {}
    for strategy in EVALUATION_STRATEGIES:
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            result = alternating_fixpoint(context, strategy=strategy, engine=arguments.engine)
            best = min(best, time.perf_counter() - start)
        timings[strategy] = best
        results[strategy] = (result.true_atoms(), result.false_atoms())

    agree = len(set(results.values())) == 1
    stats = context.statistics()
    print(f"evaluation phase (alternating fixpoint, {arguments.engine} engine):", file=out)
    print(
        f"program: {stats['ground_rules']} ground rules, {stats['facts']} facts, "
        f"{stats['atoms']} atoms",
        file=out,
    )
    for strategy in EVALUATION_STRATEGIES:
        print(f"{strategy:10s} {timings[strategy] * 1000:10.3f} ms  (best of {repeat})", file=out)
    if timings["seminaive"] > 0:
        print(f"speedup    {timings['naive'] / timings['seminaive']:10.2f}x", file=out)
    print(f"models agree: {'yes' if agree else 'NO'}", file=out)

    # Engine phase: component-wise modular evaluation against the
    # monolithic alternating fixpoint, both on the default strategy.
    engine_timings: dict[str, float] = {}
    modular_result = None
    for engine in EVALUATION_ENGINES:
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            if engine == "modular":
                modular_result = modular_well_founded(context)
            else:
                monolithic_result = alternating_fixpoint(context, keep_stages=False)
            best = min(best, time.perf_counter() - start)
        engine_timings[engine] = best
    engines_agree = (
        modular_result.model.true_atoms == monolithic_result.positive_fixpoint
        and modular_result.model.false_atoms == frozenset(monolithic_result.negative_fixpoint.atoms)
    )
    print("\nengine phase (well-founded model, modular vs monolithic):", file=out)
    for engine in EVALUATION_ENGINES:
        print(f"{engine:10s} {engine_timings[engine] * 1000:10.3f} ms  (best of {repeat})", file=out)
    if engine_timings["modular"] > 0:
        print(
            f"speedup    {engine_timings['monolithic'] / engine_timings['modular']:10.2f}x",
            file=out,
        )
    print(_render_component_stats(modular_result), file=out)
    print(f"models agree: {'yes' if engines_agree else 'NO'}", file=out)
    return 0 if agree and engines_agree else 1


_COMMANDS = {
    "solve": _cmd_solve,
    "trace": _cmd_trace,
    "query": _cmd_query,
    "stable": _cmd_stable,
    "classify": _cmd_classify,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
