"""The durable, stdlib-``sqlite3`` :class:`FactStore` backend.

:class:`SqliteStore` stores one SQL table per ``(predicate, arity)``
relation (a catalogue table maps signatures to table names, so arbitrary
predicate names never reach SQL identifiers).  Each row carries a
monotonically increasing ``seq`` (``INTEGER PRIMARY KEY AUTOINCREMENT``,
never reused) — the delta-window sequence number of the
:class:`~repro.storage.FactStore` protocol — plus one encoded column per
argument position, with a uniqueness constraint over the argument columns
standing in for the hash-set semantics of the in-memory backend.

Bound-position probes (:meth:`candidate_rows`) become ``SELECT`` statements
over the argument columns and the ``seq`` window; a SQL index per probed
position pattern is created lazily, mirroring the lazily built hash
indexes of :class:`repro.datalog.joins.Relation`.  Savepoints map onto SQL
``SAVEPOINT`` / ``ROLLBACK TO`` / ``RELEASE``, with a Python-side journal
replayed on rollback so change listeners observe the inverse mutations.

Because facts live on disk, a :class:`~repro.session.KnowledgeBase`
opened over this backend (``KnowledgeBase.open("kb.db")``) survives
process exit, and EDBs larger than memory stream through the same probe
API the grounder uses for the in-memory backend.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Iterator, Optional

from ..datalog.atoms import Atom
from ..datalog.terms import Compound, Constant, Term
from ..exceptions import StorageError, StoreCorrupt
from ..resilience.retry import RetryExhausted, RetryPolicy, retry_call
from .base import FactStore

__all__ = ["SqliteStore"]

#: Base delay of the exponential lock-retry backoff (seconds); attempt *n*
#: sleeps roughly ``_RETRY_BASE_DELAY * 2**(n-1)`` (plus bounded jitter —
#: see :class:`repro.resilience.retry.RetryPolicy`).
_RETRY_BASE_DELAY = 0.002


def _is_busy(error: sqlite3.OperationalError) -> bool:
    """Whether *error* is the transient lock/busy contention SQLite raises
    when another connection holds a conflicting lock past ``busy_timeout``."""
    message = str(error).lower()
    return "locked" in message or "busy" in message


def _is_corruption(error: sqlite3.Error) -> bool:
    message = str(error).lower()
    return (
        "not a database" in message
        or "malformed" in message
        or "corrupt" in message
    )

_SCHEMA = """
CREATE TABLE IF NOT EXISTS repro_relations (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    predicate TEXT    NOT NULL,
    arity     INTEGER NOT NULL,
    UNIQUE (predicate, arity)
)
"""


# --------------------------------------------------------------------- #
# Term encoding: a deterministic, order-stable text form per column, so
# equality probes and SQL indexes work on the encoded values directly.
# --------------------------------------------------------------------- #
def encode_term(term: Term) -> str:
    """Encode a ground term as deterministic JSON text."""
    return json.dumps(_to_payload(term), separators=(",", ":"), ensure_ascii=False)


def decode_term(text: str) -> Term:
    """Invert :func:`encode_term`."""
    return _from_payload(json.loads(text))


def _to_payload(term: Term) -> list:
    if isinstance(term, Constant):
        value = term.value
        # Numbers are canonicalised so that payloads that compare equal in
        # Python (1 == True == 1.0) encode identically — otherwise the
        # SQLite backend would store as distinct rows what MemoryStore's
        # hash-set semantics treat as one fact.
        if isinstance(value, (bool, int, float)):
            if isinstance(value, float) and not value.is_integer():
                return ["f", value]
            return ["i", int(value)]
        if isinstance(value, str):
            return ["s", value]
        if value is None:
            return ["z"]
        raise StorageError(
            f"SqliteStore cannot serialise constant payload {value!r} "
            f"of type {type(value).__name__}"
        )
    if isinstance(term, Compound):
        if not term.is_ground:
            raise StorageError(f"cannot store non-ground term {term}")
        return ["c", term.functor, [_to_payload(arg) for arg in term.args]]
    raise StorageError(f"cannot store non-ground term {term}")


def _from_payload(payload: list) -> Term:
    tag = payload[0]
    if tag in ("i", "f", "s"):
        return Constant(payload[1])
    if tag == "z":
        return Constant(None)
    if tag == "c":
        return Compound(payload[1], tuple(_from_payload(arg) for arg in payload[2]))
    raise StorageError(f"malformed stored term payload {payload!r}")


class SqliteStore(FactStore):
    """Durable fact storage in a SQLite database file.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for a private in-process
        database (useful for tests and as a drop-in differential twin of
        :class:`~repro.storage.MemoryStore`).
    busy_timeout_ms:
        SQLite's own in-connection wait for conflicting locks
        (``PRAGMA busy_timeout``) — the first line of defence against
        "database is locked" under concurrent writers.
    max_retries:
        Bounded statement-level retries with exponential backoff after the
        busy timeout itself gives up; the count of performed retries is
        surfaced as ``stats()["retries"]``.  Exhausting the retries raises
        :class:`~repro.exceptions.StorageError`.

    Opening a file-backed store validates the on-disk state — a
    ``PRAGMA integrity_check`` plus a catalogue/table shape check — and
    raises :class:`~repro.exceptions.StoreCorrupt` on damage, so a corrupt
    database fails loudly at ``open()`` instead of mid-query.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        busy_timeout_ms: int = 5000,
        max_retries: int = 5,
    ):
        super().__init__()
        self.path = str(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.max_retries = int(max_retries)
        self._retry_policy = RetryPolicy(
            max_retries=self.max_retries, base_delay=_RETRY_BASE_DELAY
        )
        self._connection: Optional[sqlite3.Connection] = None
        # One connection shared across threads: the query service mutates
        # from a dedicated writer thread and probes snapshots from HTTP
        # handler threads.  check_same_thread=False permits the sharing;
        # the mutex serialises statement execution at the Python level so
        # catalogue caches, the probe counter and cursor materialisation
        # stay consistent regardless of the compiled SQLite thread mode.
        self._mutex = threading.RLock()
        try:
            # Autocommit mode: every statement is durable on its own, and
            # SAVEPOINT opens an explicit transaction scope when needed.
            # sqlite3.connect is lazy, so the schema bootstrap below is
            # where a corrupt or non-database file actually fails — the
            # whole sequence maps onto the library's error contract.
            self._connection = sqlite3.connect(
                self.path, isolation_level=None, check_same_thread=False
            )
            cursor = self._connection.cursor()
            cursor.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            if self.path != ":memory:":
                cursor.execute("PRAGMA journal_mode=WAL")
                cursor.execute("PRAGMA synchronous=NORMAL")
                self._verify_integrity(cursor)
            cursor.execute(_SCHEMA)
            # (predicate, arity) -> catalogue id; tables are facts_<id>.
            self._tables: dict[tuple[str, int], int] = {
                (predicate, arity): table_id
                for table_id, predicate, arity in cursor.execute(
                    "SELECT id, predicate, arity FROM repro_relations"
                )
            }
            if self.path != ":memory:":
                self._verify_schema(cursor)
        except sqlite3.Error as error:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
            if _is_corruption(error):
                raise StoreCorrupt(
                    f"SQLite store at {self.path!r} is corrupt: {error}"
                ) from error
            raise StorageError(
                f"cannot open SQLite store at {self.path!r}: {error}"
            ) from error
        except StoreCorrupt:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
            raise
        self._sql_indexes: set[tuple[int, tuple[int, ...]]] = set()
        self._journal: list[tuple[Atom, bool]] = []
        self._savepoints: list[tuple[str, int]] = []
        self._savepoint_counter = 0

    def _verify_integrity(self, cursor: sqlite3.Cursor) -> None:
        """Fail fast on a damaged database file (``integrity_check``)."""
        rows = cursor.execute("PRAGMA integrity_check").fetchall()
        findings = [row[0] for row in rows if row[0] != "ok"]
        if findings:
            raise StoreCorrupt(
                f"SQLite store at {self.path!r} failed integrity_check: "
                f"{'; '.join(str(f) for f in findings[:3])}"
            )

    def _verify_schema(self, cursor: sqlite3.Cursor) -> None:
        """Every catalogued relation must have its backing ``facts_<id>``
        table with the expected column shape (``seq`` + one encoded column
        per argument position, or ``seq`` + ``present`` for arity 0)."""
        for (predicate, arity), table_id in self._tables.items():
            info = cursor.execute(f"PRAGMA table_info(facts_{table_id})").fetchall()
            if not info:
                raise StoreCorrupt(
                    f"SQLite store at {self.path!r} is missing table "
                    f"facts_{table_id} for relation {predicate}/{arity}"
                )
            expected = arity + 1 if arity else 2
            if len(info) != expected:
                raise StoreCorrupt(
                    f"SQLite store at {self.path!r}: table facts_{table_id} for "
                    f"{predicate}/{arity} has {len(info)} columns, expected {expected}"
                )

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _cursor(self) -> sqlite3.Cursor:
        if self._connection is None:
            raise StorageError(f"SQLite store {self.path!r} is closed")
        return self._connection.cursor()

    def _execute(self, sql: str, parameters: tuple | list = ()) -> sqlite3.Cursor:
        """Execute one statement with bounded retry on transient lock
        contention.

        ``PRAGMA busy_timeout`` already makes SQLite wait in-line; this
        layer retries the statement itself (exponential backoff with
        jitter, via the shared :func:`repro.resilience.retry.retry_call`
        helper) for the cases the timeout cannot cover, counting each
        retry into :attr:`~repro.storage.base.FactStore.retries`.
        Non-busy errors propagate unchanged; exhausted retries raise a
        :class:`~repro.exceptions.StorageError` naming the retry budget.
        """

        def _attempt() -> sqlite3.Cursor:
            # The mutex covers one statement, not the backoff sleeps, so a
            # retrying writer never starves concurrent snapshot readers.
            with self._mutex:
                return self._cursor().execute(sql, parameters)

        def _transient(error: BaseException) -> bool:
            return isinstance(error, sqlite3.OperationalError) and _is_busy(error)

        def _count(attempt: int, error: BaseException) -> None:
            self.retries += 1

        try:
            return retry_call(
                _attempt,
                retryable=_transient,
                policy=self._retry_policy,
                on_retry=_count,
                reraise=False,
            )
        except RetryExhausted as exhausted:
            raise StorageError(
                f"SQLite store {self.path!r} stayed locked after "
                f"{exhausted.attempts} retries: {exhausted.last_error}"
            ) from exhausted.last_error

    def _query_all(self, sql: str, parameters: tuple | list = ()) -> list:
        """Execute one read statement and materialise its rows atomically.

        Execution *and* fetch happen under the store mutex, so a reader's
        result set can never interleave with (or be aborted by) a writer
        statement or savepoint rollback on the shared connection — each
        probe observes a point-in-time state.
        """
        with self._mutex:
            return self._execute(sql, parameters).fetchall()

    def _table(self, predicate: str, arity: int, create: bool = False) -> Optional[str]:
        table_id = self._tables.get((predicate, arity))
        if table_id is None:
            # The catalogue cache was loaded at open; under WAL another
            # connection on the same file may have created the relation
            # since.  Re-probe the on-disk catalogue before concluding the
            # relation does not exist, so reader stores follow writer
            # connections instead of serving an eternally empty relation.
            found = self._query_all(
                "SELECT id FROM repro_relations WHERE predicate = ? AND arity = ?",
                (predicate, arity),
            )
            if found:
                table_id = found[0][0]
                self._tables[(predicate, arity)] = table_id
                return f"facts_{table_id}"
            if not create:
                return None
            cursor = self._execute(
                "INSERT INTO repro_relations (predicate, arity) VALUES (?, ?)",
                (predicate, arity),
            )
            table_id = cursor.lastrowid
            columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
            unique = ", ".join(f"c{i}" for i in range(arity))
            if arity:
                self._execute(
                    f"CREATE TABLE facts_{table_id} "
                    f"(seq INTEGER PRIMARY KEY AUTOINCREMENT, {columns}, UNIQUE ({unique}))"
                )
            else:
                # Propositional relation: at most one (argument-less) row.
                self._execute(
                    f"CREATE TABLE facts_{table_id} "
                    f"(seq INTEGER PRIMARY KEY AUTOINCREMENT, present INTEGER UNIQUE)"
                )
            self._tables[(predicate, arity)] = table_id
        return f"facts_{table_id}"

    def _encode_row(self, atom: Atom) -> list[str]:
        return [encode_term(term) for term in atom.args]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_atom(self, atom: Atom) -> bool:
        self._check_ground(atom)
        table = self._table(atom.predicate, atom.arity, create=True)
        if atom.arity:
            columns = ", ".join(f"c{i}" for i in range(atom.arity))
            holes = ", ".join("?" for _ in range(atom.arity))
            cursor = self._execute(
                f"INSERT OR IGNORE INTO {table} ({columns}) VALUES ({holes})",
                self._encode_row(atom),
            )
        else:
            cursor = self._execute(f"INSERT OR IGNORE INTO {table} (present) VALUES (1)")
        if cursor.rowcount <= 0:
            return False
        if self._savepoints:
            self._journal.append((atom, True))
        self._notify(atom, True)
        return True

    def remove_atom(self, atom: Atom) -> bool:
        table = self._table(atom.predicate, atom.arity)
        if table is None:
            return False
        if atom.arity:
            where = " AND ".join(f"c{i} = ?" for i in range(atom.arity))
            cursor = self._execute(
                f"DELETE FROM {table} WHERE {where}", self._encode_row(atom)
            )
        else:
            cursor = self._execute(f"DELETE FROM {table}")
        if cursor.rowcount <= 0:
            return False
        if self._savepoints:
            self._journal.append((atom, False))
        self._notify(atom, False)
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains_atom(self, atom: Atom) -> bool:
        table = self._table(atom.predicate, atom.arity)
        if table is None:
            return False
        if atom.arity:
            where = " AND ".join(f"c{i} = ?" for i in range(atom.arity))
            rows = self._query_all(
                f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", self._encode_row(atom)
            )
        else:
            rows = self._query_all(f"SELECT 1 FROM {table} LIMIT 1")
        return bool(rows)

    def signatures(self) -> set[tuple[str, int]]:
        # Fold in relations other connections catalogued since open (the
        # cross-connection counterpart of the ``_table`` re-probe).
        for table_id, predicate, arity in self._query_all(
            "SELECT id, predicate, arity FROM repro_relations"
        ):
            self._tables.setdefault((predicate, arity), table_id)
        return {
            signature for signature in self._tables if self.count(*signature)
        }

    def tuples(self, predicate: str, arity: int) -> Iterator[tuple[Term, ...]]:
        table = self._table(predicate, arity)
        if table is None:
            return
        if arity:
            columns = ", ".join(f"c{i}" for i in range(arity))
            rows = self._query_all(f"SELECT {columns} FROM {table} ORDER BY seq")
            for row in rows:
                yield tuple(decode_term(text) for text in row)
        else:
            if self._query_all(f"SELECT 1 FROM {table} LIMIT 1"):
                yield ()

    def count(self, predicate: str, arity: int) -> int:
        table = self._table(predicate, arity)
        if table is None:
            return 0
        [(count,)] = self._query_all(f"SELECT COUNT(*) FROM {table}")
        return count

    # ------------------------------------------------------------------ #
    # Grounding support
    # ------------------------------------------------------------------ #
    def sequence_bound(self, predicate: str, arity: int) -> int:
        table = self._table(predicate, arity)
        if table is None:
            return 0
        [(bound,)] = self._query_all(f"SELECT COALESCE(MAX(seq), 0) FROM {table}")
        return bound  # AUTOINCREMENT seq starts at 1, so MAX is the bound + window hi.

    def _ensure_sql_index(self, table_id: int, arity: int, positions: tuple[int, ...]) -> None:
        if not positions or len(positions) == arity:
            return  # full scans and unique-constraint probes need no extra index
        key = (table_id, positions)
        if key in self._sql_indexes:
            return
        name = f"ix_{table_id}_" + "_".join(str(p) for p in positions)
        columns = ", ".join(f"c{p}" for p in positions)
        self._execute(f"CREATE INDEX IF NOT EXISTS {name} ON facts_{table_id} ({columns})")
        self._sql_indexes.add(key)

    def candidate_rows(
        self,
        predicate: str,
        arity: int,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        table_id = self._tables.get((predicate, arity))
        if table_id is None:
            return iter(())
        self.probes += 1
        self._ensure_sql_index(table_id, arity, positions)
        # The protocol's windows are 0-based exclusive bounds over sequence
        # numbers; AUTOINCREMENT seq is 1-based, so shift by one.
        conditions = ["seq > ?", "seq <= ?"]
        parameters: list[object] = [lo, hi]
        for position, term in zip(positions, key):
            conditions.append(f"c{position} = ?")
            parameters.append(encode_term(term))
        columns = ", ".join(["seq"] + [f"c{i}" for i in range(arity)])
        # Materialised atomically (_query_all): a lazily-stepped cursor
        # could otherwise be aborted by a concurrent writer's rollback on
        # the shared connection; decoding stays lazy.
        rows = self._query_all(
            f"SELECT {columns} FROM facts_{table_id} "
            f"WHERE {' AND '.join(conditions)} ORDER BY seq",
            parameters,
        )
        return (
            (row[0] - 1, tuple(decode_term(text) for text in row[1:])) for row in rows
        )

    # ------------------------------------------------------------------ #
    # Savepoints
    # ------------------------------------------------------------------ #
    def savepoint(self) -> object:
        self._savepoint_counter += 1
        name = f"repro_sp_{self._savepoint_counter}"
        self._execute(f"SAVEPOINT {name}")
        self._savepoints.append((name, len(self._journal)))
        return name

    def _pop_savepoint(self, token: object) -> int:
        if not self._savepoints or self._savepoints[-1][0] != token:
            raise StorageError(
                f"unknown savepoint token {token!r} (savepoints resolve innermost-first)"
            )
        return self._savepoints.pop()[1]

    def rollback_to(self, token: object) -> None:
        mark = self._pop_savepoint(token)
        self._execute(f"ROLLBACK TO {token}")
        self._execute(f"RELEASE {token}")
        # The rollback may have undone CREATE TABLE / CREATE INDEX issued
        # inside the savepoint: re-sync the catalogue caches from SQL truth.
        self._tables = {
            (predicate, arity): table_id
            for table_id, predicate, arity in self._execute(
                "SELECT id, predicate, arity FROM repro_relations"
            )
        }
        # Index creations inside the savepoint were undone too; clearing
        # the cache lets CREATE INDEX IF NOT EXISTS re-issue them cheaply.
        self._sql_indexes.clear()
        # Replay the journal inverse so listeners track the store.
        while len(self._journal) > mark:
            atom, added = self._journal.pop()
            self._notify(atom, not added)
        if not self._savepoints:
            self._journal.clear()

    def release(self, token: object) -> None:
        self._pop_savepoint(token)
        self._execute(f"RELEASE {token}")
        if not self._savepoints:
            self._journal.clear()

    def index_count(self) -> int:
        return len(self._sql_indexes)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.commit()
            self._connection.close()
            self._connection = None

    @property
    def closed(self) -> bool:
        return self._connection is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"{len(self)} facts"
        return f"SqliteStore({self.path!r}, {state})"
