"""Pluggable fact storage: one :class:`FactStore` protocol, two backends.

The protocol (:mod:`repro.storage.base`) is what the grounder probes, what
:class:`repro.datalog.database.Database` fronts, and what a
:class:`repro.session.KnowledgeBase` mutates; the backends are
:class:`MemoryStore` (hash-indexed, in-process, the default) and
:class:`SqliteStore` (durable, stdlib ``sqlite3``).

Stores are named by *spec strings* — ``"memory"`` or ``"sqlite:PATH"`` —
which is the value the ``store`` dimension of
:class:`repro.config.EngineConfig` and the CLI's ``--store`` option carry;
:func:`open_store` turns a spec into a live backend.
"""

from __future__ import annotations

from ..exceptions import StorageError
from .base import ChangeListener, FactStore
from .memory import MemoryStore
from .snapshot import StoreSnapshot
from .sqlite import SqliteStore

__all__ = [
    "FactStore",
    "ChangeListener",
    "MemoryStore",
    "SqliteStore",
    "StoreSnapshot",
    "SUPPORTED_STORES",
    "DEFAULT_STORE",
    "parse_store_spec",
    "open_store",
]

#: Backend kinds accepted in store specs.
SUPPORTED_STORES = ("memory", "sqlite")
DEFAULT_STORE = "memory"


def parse_store_spec(spec: str) -> tuple[str, str | None]:
    """Split a store spec into ``(kind, argument)``, validating it.

    ``"memory"`` → ``("memory", None)``; ``"sqlite:PATH"`` →
    ``("sqlite", "PATH")``.  Raises :class:`StorageError` on anything else,
    listing the accepted shapes.
    """
    if not isinstance(spec, str):
        raise StorageError(f"store spec must be a string, got {spec!r}")
    kind, _, argument = spec.partition(":")
    if kind == "memory":
        if argument:
            raise StorageError(f"the 'memory' store takes no argument, got {spec!r}")
        return ("memory", None)
    if kind == "sqlite":
        if not argument:
            raise StorageError(
                f"the 'sqlite' store needs a path, e.g. 'sqlite:kb.db'; got {spec!r}"
            )
        return ("sqlite", argument)
    raise StorageError(
        f"unknown store spec {spec!r}; expected 'memory' or 'sqlite:PATH'"
    )


def open_store(spec: str) -> FactStore:
    """Create the backend a spec names: ``"memory"`` or ``"sqlite:PATH"``."""
    kind, argument = parse_store_spec(spec)
    if kind == "memory":
        return MemoryStore()
    return SqliteStore(argument)
