"""The :class:`FactStore` protocol — one storage API for EDB facts.

The paper frames a logic program as a mapping from EDB instances to IDB
instances (Section 2.5), yet the repo historically held EDB facts in three
disjoint representations: :class:`~repro.datalog.database.Database` kept
plain per-relation tuple sets, the grounder rebuilt a
:class:`~repro.datalog.joins.RelationStore` (and all its hash indexes)
from scratch on every run, and :class:`~repro.session.KnowledgeBase`
journaled facts a third way.  :class:`FactStore` is the one interface all
three now share:

* **mutation** — :meth:`add_atom` / :meth:`remove_atom` with change
  notification (:meth:`subscribe`), so a session's incremental engine
  learns about every mutation regardless of who performed it;
* **queries** — membership, per-``(predicate, arity)`` tuple iteration
  (relations are keyed on the full signature, never the bare name, so
  ``p/1`` and ``p/2`` cannot collide);
* **grounding support** — :meth:`candidate_rows` bound-position index
  probes with ``[lo, hi)`` sequence windows, matching the access pattern
  of :class:`repro.datalog.joins.Relation`, so the semi-naive grounder
  probes the live store instead of copying it into a fresh
  ``RelationStore`` per run;
* **transactions** — :meth:`savepoint` / :meth:`rollback_to` /
  :meth:`release`, the substrate of ``KnowledgeBase.batch()``.

Two backends implement the protocol: :class:`~repro.storage.memory.MemoryStore`
(the hash-join relations of :mod:`repro.datalog.joins`, now with removal
support) and :class:`~repro.storage.sqlite.SqliteStore` (a durable
stdlib-``sqlite3`` backend enabling ``KnowledgeBase.open("kb.db")``).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..datalog.terms import Compound, Constant, Term, Variable
from ..exceptions import NotGroundError

__all__ = ["FactStore", "ChangeListener"]

#: A change-notification callback: ``listener(atom, added)`` is invoked
#: after every successful mutation — ``added`` is ``True`` for an insert,
#: ``False`` for a removal.  Savepoint rollbacks re-notify the *inverse*
#: of every undone mutation, so a listener's view stays consistent.
ChangeListener = Callable[[Atom, bool], None]

Signature = tuple[str, int]


def _coerce_row(values: Sequence[object]) -> tuple[Term, ...]:
    """Coerce plain Python values to constants; terms pass through verbatim
    (a Variable then fails the groundness check instead of being silently
    wrapped into a pseudo-constant)."""
    return tuple(
        value if isinstance(value, (Constant, Variable, Compound)) else Constant(value)
        for value in values
    )


class FactStore(ABC):
    """Abstract base of every fact-storage backend.

    Subclasses implement the primitive atom-level operations; the
    value-coercing conveniences (``add``, ``remove``, ``contains``,
    ``load``, ``values``) and the change-notification plumbing are
    provided here so all backends behave identically.
    """

    def __init__(self) -> None:
        self._listeners: list[ChangeListener] = []
        # Outstanding snapshot leases (see snapshot()).  While any lease is
        # live, backends must not invalidate sequence numbers — MemoryStore
        # defers tombstone compaction, exactly as it does inside an open
        # savepoint.  The lock makes the counter safe to release from any
        # thread (snapshots are handed to reader threads, and an unclosed
        # one releases from the GC finalizer thread).
        self._pin_lock = threading.Lock()
        self._pins = 0
        #: Number of :meth:`candidate_rows` index probes served since the
        #: store was created — the cheap per-backend tally surfaced by
        #: :meth:`stats` and sampled by the :mod:`repro.obs` recorders.
        self.probes: int = 0
        #: Number of transient-failure retries the backend performed (e.g.
        #: :class:`~repro.storage.sqlite.SqliteStore` re-attempting a
        #: statement after ``database is locked``).  Always 0 for backends
        #: without a retry path.
        self.retries: int = 0

    # ------------------------------------------------------------------ #
    # Change notification
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: ChangeListener) -> None:
        """Register *listener* to be called after every mutation."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: ChangeListener) -> None:
        """Remove a previously registered listener (no error if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, atom: Atom, added: bool) -> None:
        for listener in self._listeners:
            listener(atom, added)

    # ------------------------------------------------------------------ #
    # Primitive mutation / queries (backend-specific)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom; returns whether the store changed."""

    @abstractmethod
    def remove_atom(self, atom: Atom) -> bool:
        """Remove a ground atom; returns whether the store changed."""

    @abstractmethod
    def contains_atom(self, atom: Atom) -> bool:
        """Membership test for a ground atom."""

    @abstractmethod
    def signatures(self) -> set[Signature]:
        """The ``(predicate, arity)`` signatures of the non-empty relations."""

    @abstractmethod
    def tuples(self, predicate: str, arity: int) -> Iterator[tuple[Term, ...]]:
        """The argument tuples of one relation, in insertion order."""

    @abstractmethod
    def count(self, predicate: str, arity: int) -> int:
        """Number of tuples currently in one relation."""

    # ------------------------------------------------------------------ #
    # Grounding support: sequence windows and index probes
    # ------------------------------------------------------------------ #
    @abstractmethod
    def sequence_bound(self, predicate: str, arity: int) -> int:
        """Exclusive upper bound on the row sequence numbers of a relation.

        Sequence numbers are assigned monotonically on insertion and are
        never reused, so ``[0, sequence_bound())`` always covers every
        live row — this is the delta-window contract semi-naive probing
        relies on.  (Removals may leave gaps, so the bound can exceed
        :meth:`count`.)
        """

    @abstractmethod
    def candidate_rows(
        self,
        predicate: str,
        arity: int,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        """Yield ``(sequence, row)`` for the rows in ``[lo, hi)`` whose
        projection onto *positions* equals *key*, in ascending sequence
        order — the bound-position index probe of
        :class:`repro.datalog.joins.Relation`, generalised over backends.
        Backends maintain (lazily created) indexes per probed position
        pattern, so repeated probes cost the matches, not a scan.
        """

    # ------------------------------------------------------------------ #
    # Savepoints
    # ------------------------------------------------------------------ #
    @abstractmethod
    def savepoint(self) -> object:
        """Open a savepoint and return its token.

        Savepoints nest; each token must be resolved exactly once, with
        either :meth:`rollback_to` or :meth:`release`, innermost first.
        """

    @abstractmethod
    def rollback_to(self, token: object) -> None:
        """Undo every mutation since *token* was taken (notifying the
        inverse of each) and discard the savepoint."""

    @abstractmethod
    def release(self, token: object) -> None:
        """Discard a savepoint, keeping its mutations."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources.  Idempotent; in-memory backends are
        a no-op."""

    def __enter__(self) -> "FactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Value-level conveniences (shared by all backends)
    # ------------------------------------------------------------------ #
    def add(self, relation: str, *values: object) -> bool:
        """Insert a tuple, coercing plain Python values to constants."""
        return self.add_atom(Atom(relation, _coerce_row(values)))

    def remove(self, relation: str, *values: object) -> bool:
        """Remove a tuple if present; returns whether the store changed."""
        return self.remove_atom(Atom(relation, _coerce_row(values)))

    def contains(self, relation: str, *values: object) -> bool:
        return self.contains_atom(Atom(relation, _coerce_row(values)))

    def relation_names(self) -> set[str]:
        """The names of the non-empty relations (all arities collapsed)."""
        return {name for name, _ in self.signatures()}

    def values(self, relation: str) -> set[tuple[object, ...]]:
        """All tuples of *relation* (any arity) with constants unwrapped."""
        found: set[tuple[object, ...]] = set()
        for name, arity in self.signatures():
            if name != relation:
                continue
            for row in self.tuples(name, arity):
                found.add(
                    tuple(term.value if isinstance(term, Constant) else term for term in row)
                )
        return found

    def facts(self) -> Iterator[Atom]:
        """Yield every stored fact as a ground atom."""
        for name, arity in sorted(self.signatures()):
            for row in self.tuples(name, arity):
                yield Atom(name, row)

    def load(self, source: "FactStore | Mapping | Iterable[Atom]") -> int:
        """Bulk-insert facts from another store, a ``{relation: rows}``
        mapping, or an iterable of ground atoms; returns how many were new.
        """
        # Imported here: database.py itself builds on this module.
        from ..datalog.database import Database

        if isinstance(source, Database):
            atoms: Iterable[Atom] = source.facts()
        elif isinstance(source, FactStore):
            atoms = source.facts()
        elif isinstance(source, Mapping):
            atoms = (
                Atom(name, _coerce_row(row)) for name, rows in source.items() for row in rows
            )
        else:
            atoms = source
        added = 0
        for atom in atoms:
            if self.add_atom(atom):
                added += 1
        return added

    def sizes(self) -> dict[Signature, int]:
        """Sequence bounds per relation — a delta-window snapshot."""
        return {
            signature: self.sequence_bound(*signature) for signature in self.signatures()
        }

    def snapshot(self) -> "StoreSnapshot":
        """An explicit read-view pinning every relation's ``[0, seq)``
        window as of now (see :class:`repro.storage.snapshot.StoreSnapshot`).

        Rows inserted after the call are invisible through the view; the
        query service publishes one per model epoch so concurrent readers
        serve consistent results while the single writer keeps mutating.
        The view holds a *lease* on the store — sequence numbers stay
        valid (no compaction) until the snapshot is closed or collected.
        """
        from .snapshot import StoreSnapshot

        return StoreSnapshot(self)

    # -- snapshot leases -------------------------------------------------- #
    def _acquire_pin(self) -> None:
        with self._pin_lock:
            self._pins += 1

    def _release_pin(self) -> None:
        with self._pin_lock:
            if self._pins > 0:
                self._pins -= 1

    def _pinned(self) -> bool:
        """Whether any snapshot lease is outstanding (backends must keep
        sequence numbers stable while this holds)."""
        return self._pins > 0

    def index_count(self) -> int:
        """Number of auxiliary bound-position indexes the backend currently
        maintains (lazily created by :meth:`candidate_rows` probing)."""
        return 0

    def stats(self) -> dict[str, object]:
        """Uniform backend statistics, identical in shape for every backend.

        Returns the backend name, a per-relation map of row counts and
        sequence bounds (``"pred/arity" -> {"rows", "sequence_bound"}``),
        the total row count, the number of auxiliary indexes, the
        cumulative :meth:`candidate_rows` probe count, and the transient
        retry count.
        """
        relations = {
            f"{name}/{arity}": {
                "rows": self.count(name, arity),
                "sequence_bound": self.sequence_bound(name, arity),
            }
            for name, arity in sorted(self.signatures())
        }
        return {
            "backend": type(self).__name__,
            "relations": relations,
            "rows": sum(info["rows"] for info in relations.values()),
            "indexes": self.index_count(),
            "probes": self.probes,
            "retries": self.retries,
        }

    def as_program(self) -> Program:
        """The stored facts as a program of fact rules."""
        return Program(Rule(atom) for atom in self.facts())

    def constants(self) -> set[Term]:
        """Every term appearing in some stored tuple."""
        result: set[Term] = set()
        for name, arity in self.signatures():
            for row in self.tuples(name, arity):
                result.update(row)
        return result

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, atom: object) -> bool:
        return isinstance(atom, Atom) and self.contains_atom(atom)

    def __iter__(self) -> Iterator[Atom]:
        return self.facts()

    def __len__(self) -> int:
        return sum(self.count(name, arity) for name, arity in self.signatures())

    def _check_ground(self, atom: Atom) -> None:
        if not atom.is_ground:
            raise NotGroundError(f"EDB fact {atom} is not ground")

    def contents(self) -> dict[Signature, frozenset[tuple[Term, ...]]]:
        """The full store as a signature-keyed map of tuple sets — the
        canonical shape for cross-backend equality in tests."""
        return {
            signature: frozenset(self.tuples(*signature))
            for signature in self.signatures()
        }
