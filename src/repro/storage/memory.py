"""The in-memory :class:`FactStore` backend.

:class:`MemoryStore` unifies the two in-memory fact representations the
repo used to maintain separately: the plain per-relation tuple sets of the
old ``Database`` and the lazily hash-indexed
:class:`~repro.datalog.joins.Relation` machinery the grounder rebuilt from
scratch on every run.  Facts live in one set of ``Relation`` objects,
keyed on ``(predicate, arity)``; the bound-position indexes built by one
grounding run survive into the next, so the semi-naive grounder probes the
live EDB instead of re-inserting and re-indexing every fact per solve.

Removal tombstones the row (keeping outstanding sequence numbers valid —
see :meth:`Relation.remove`) and compacts a relation once tombstones
outnumber live rows, so long assert/retract sessions stay bounded.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..datalog.atoms import Atom
from ..datalog.joins import Relation, RelationStore
from ..datalog.terms import Term
from ..exceptions import StorageError
from .base import FactStore

__all__ = ["MemoryStore"]

#: Tombstones tolerated in a relation before :meth:`Relation.compact` runs.
_COMPACT_THRESHOLD = 64


class MemoryStore(FactStore):
    """Hash-indexed in-memory fact storage (the default backend)."""

    def __init__(self) -> None:
        super().__init__()
        self._relations = RelationStore()
        # Journal of (atom, added) while savepoints are open; savepoint
        # tokens are journal marks.
        self._journal: list[tuple[Atom, bool]] = []
        self._savepoints: list[int] = []

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_atom(self, atom: Atom) -> bool:
        self._check_ground(atom)
        if not self._relations.add_atom(atom):
            return False
        if self._savepoints:
            self._journal.append((atom, True))
        self._notify(atom, True)
        return True

    def remove_atom(self, atom: Atom) -> bool:
        relation = self._relations.relation(atom.predicate, atom.arity)
        if relation is None or not relation.remove(atom.args):
            return False
        # Compact eagerly when garbage dominates — but never while a
        # savepoint is open, whose rollback replays journal entries that
        # assume stable sequence numbers are irrelevant (it re-adds by
        # value), yet an open grounding run may still hold windows; and
        # never while a snapshot lease is outstanding, whose pinned
        # ``[0, seq)`` windows renumbering would silently corrupt.
        if (
            not self._savepoints
            and not self._pinned()
            and relation.dead > _COMPACT_THRESHOLD
            and relation.dead > len(relation)
        ):
            relation.compact()
        if self._savepoints:
            self._journal.append((atom, False))
        self._notify(atom, False)
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains_atom(self, atom: Atom) -> bool:
        return atom in self._relations

    def signatures(self) -> set[tuple[str, int]]:
        return {
            signature
            for signature, relation in self._relations.relations.items()
            if len(relation)
        }

    def tuples(self, predicate: str, arity: int) -> Iterator[tuple[Term, ...]]:
        relation = self._relations.relation(predicate, arity)
        if relation is None:
            return
        for row in relation.rows:
            if row is not None:
                yield row

    def count(self, predicate: str, arity: int) -> int:
        relation = self._relations.relation(predicate, arity)
        return len(relation) if relation is not None else 0

    # ------------------------------------------------------------------ #
    # Grounding support
    # ------------------------------------------------------------------ #
    def relation(self, predicate: str, arity: int) -> Optional[Relation]:
        """The live :class:`Relation` of one signature (``None`` when the
        signature has never been stored) — the zero-copy view grounding
        probes go through."""
        return self._relations.relation(predicate, arity)

    def sequence_bound(self, predicate: str, arity: int) -> int:
        relation = self._relations.relation(predicate, arity)
        return relation.sequence_bound if relation is not None else 0

    def candidate_rows(
        self,
        predicate: str,
        arity: int,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int,
        hi: int,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        relation = self._relations.relation(predicate, arity)
        if relation is None:
            return iter(())
        self.probes += 1
        return relation.candidate_rows(positions, key, lo, hi)

    def statistics(self) -> dict[str, int]:
        return self._relations.statistics()

    def index_count(self) -> int:
        return sum(
            len(relation.indexes) for relation in self._relations.relations.values()
        )

    # ------------------------------------------------------------------ #
    # Savepoints
    # ------------------------------------------------------------------ #
    def savepoint(self) -> object:
        token = (len(self._savepoints), len(self._journal))
        self._savepoints.append(len(self._journal))
        return token

    def _pop_savepoint(self, token: object) -> int:
        depth, mark = self._validate_token(token)
        if depth != len(self._savepoints) - 1 or self._savepoints[depth] != mark:
            raise StorageError("savepoints must be resolved innermost-first")
        self._savepoints.pop()
        return mark

    def _validate_token(self, token: object) -> tuple[int, int]:
        if (
            not isinstance(token, tuple)
            or len(token) != 2
            or not all(isinstance(part, int) for part in token)
            or not self._savepoints
        ):
            raise StorageError(f"unknown savepoint token {token!r}")
        return token  # type: ignore[return-value]

    def rollback_to(self, token: object) -> None:
        mark = self._pop_savepoint(token)
        while len(self._journal) > mark:
            atom, added = self._journal.pop()
            if added:
                relation = self._relations.relation(atom.predicate, atom.arity)
                relation.remove(atom.args)
            else:
                self._relations.add_atom(atom)
            self._notify(atom, not added)
        if not self._savepoints:
            self._journal.clear()

    def release(self, token: object) -> None:
        self._pop_savepoint(token)
        if not self._savepoints:
            self._journal.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryStore({len(self)} facts, {len(self.signatures())} relations)"
