"""Explicit read-views over a :class:`~repro.storage.FactStore`.

The delta-windowed probe API of PR 5 (``candidate_rows`` over ``[lo, hi)``
sequence windows) is already most of an MVCC read-view: sequence numbers
are assigned monotonically and never reused, so pinning the per-relation
``[0, sequence_bound)`` window at one instant yields a view that *later
insertions can never leak into*.  :class:`StoreSnapshot` makes that view a
first-class object — ``store.snapshot()`` — so many reader threads can
serve consistent results against it while a single serialized writer keeps
mutating the live store.

Scope of the guarantee: the window excludes rows inserted after the
snapshot was taken, which is exactly the isolation a *single-writer*
service needs — the query service publishes a fresh snapshot after every
applied write, so no snapshot is ever read concurrently with an in-place
mutation of its own rows.  Removals are not versioned (a row deleted after
the snapshot disappears from it too); multi-writer backends wanting full
MVCC would layer tombstone visibility on top of the same window contract.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.terms import Term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import FactStore, Signature

__all__ = ["StoreSnapshot"]


class StoreSnapshot:
    """A pinned ``[0, seq)`` window over every relation of a store.

    Construction is O(#relations): it records each relation's current
    sequence bound (and row count, for cheap ``len``); no rows are copied.
    All reads clamp their window to the pinned bound, so facts inserted
    after the snapshot are invisible through it.
    """

    __slots__ = ("_store", "_bounds", "_counts", "_lease", "__weakref__")

    def __init__(self, store: "FactStore") -> None:
        self._store = store
        self._bounds: dict["Signature", int] = {}
        self._counts: dict["Signature", int] = {}
        for signature in store.signatures():
            self._bounds[signature] = store.sequence_bound(*signature)
            self._counts[signature] = store.count(*signature)
        # The lease keeps the store's sequence numbers valid (MemoryStore
        # defers compaction while pinned).  A GC finalizer backs close(),
        # so a dropped snapshot cannot block compaction forever; finalizers
        # run at most once, making close() idempotent for free.
        store._acquire_pin()
        self._lease = weakref.finalize(self, store._release_pin)

    def close(self) -> None:
        """Release the snapshot's lease on the store (idempotent).  Reads
        after close still work, but their windows are no longer protected
        against backend compaction."""
        self._lease()

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Window introspection
    # ------------------------------------------------------------------ #
    @property
    def windows(self) -> Mapping["Signature", int]:
        """The pinned exclusive sequence bound per relation — the
        ``[0, bound)`` windows this snapshot reads through."""
        return dict(self._bounds)

    def sequence_bound(self, predicate: str, arity: int) -> int:
        """The pinned bound of one relation (0 when the relation did not
        exist at snapshot time)."""
        return self._bounds.get((predicate, arity), 0)

    def signatures(self) -> set["Signature"]:
        """The relation signatures that existed (non-empty) at snapshot
        time."""
        return set(self._bounds)

    # ------------------------------------------------------------------ #
    # Reads (window-clamped)
    # ------------------------------------------------------------------ #
    def candidate_rows(
        self,
        predicate: str,
        arity: int,
        positions: tuple[int, ...],
        key: tuple[Term, ...],
        lo: int = 0,
        hi: int | None = None,
    ) -> Iterator[tuple[int, tuple[Term, ...]]]:
        """The store's index probe, clamped to the pinned window."""
        bound = self._bounds.get((predicate, arity), 0)
        hi = bound if hi is None else min(hi, bound)
        if hi <= lo:
            return iter(())
        return self._store.candidate_rows(predicate, arity, positions, key, lo, hi)

    def tuples(self, predicate: str, arity: int) -> Iterator[tuple[Term, ...]]:
        """The rows of one relation that were live inside the window."""
        for _, row in self.candidate_rows(predicate, arity, (), ()):
            yield row

    def contains_atom(self, atom: Atom) -> bool:
        """Membership within the window (an atom inserted after the
        snapshot is *not* contained, even though the live store has it)."""
        for _ in self.candidate_rows(
            atom.predicate, atom.arity, tuple(range(atom.arity)), atom.args
        ):
            return True
        return False

    def facts(self) -> Iterator[Atom]:
        """Every fact visible through the window, relation by relation."""
        for predicate, arity in sorted(self._bounds):
            for row in self.tuples(predicate, arity):
                yield Atom(predicate, row)

    def count(self, predicate: str, arity: int) -> int:
        """Row count of one relation at snapshot time."""
        return self._counts.get((predicate, arity), 0)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, atom: object) -> bool:
        return isinstance(atom, Atom) and self.contains_atom(atom)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreSnapshot({len(self._bounds)} relations, "
            f"{len(self)} rows pinned)"
        )
