"""The stability transformation (Section 4 of the paper).

Gelfond and Lifschitz defined stable models through a three-stage
transformation of the program by a candidate interpretation (the *reduct*).
Van Gelder's reformulation operates on sets of *negative* literals:

* ``S_P(Ĩ)`` — the eventual consequence mapping (Definition 4.2): all
  positive atoms derivable when ``Ĩ`` is held fixed;
* ``S̃_P(Ĩ) = conj(S_P(Ĩ)) = ¬·(H − S_P(Ĩ))`` — the *stability
  transformation* on negative sets.

``S_P`` is monotonic and therefore ``S̃_P`` is **antimonotonic** — the
property the paper points to as the heart of the intractability of stable
models.  A total model (represented by its negative literals) is stable
exactly when it is a fixpoint of ``S̃_P``.

This module also provides the classical three-stage Gelfond–Lifschitz
reduct so the two formulations can be tested against each other.
"""

from __future__ import annotations

from typing import AbstractSet

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..evaluation.engine import DEFAULT_STRATEGY
from ..fixpoint.lattice import NegativeSet, conjugate_of_positive
from .context import GroundContext, build_context
from .eventual import eventual_consequence

__all__ = [
    "stability_transform",
    "gelfond_lifschitz_reduct",
    "reduct_minimum_model",
    "is_stable_set",
]


def stability_transform(
    context: GroundContext,
    negative: NegativeSet,
    strategy: str = DEFAULT_STRATEGY,
) -> NegativeSet:
    """``S̃_P(Ĩ)`` — Definition 4.2.

    Derive everything positive that follows from ``Ĩ`` (via ``S_P``), then
    return the conjugate: the atoms of the base *not* derived, as negative
    literals.
    """
    derived = eventual_consequence(context, negative, strategy=strategy)
    return conjugate_of_positive(derived, context.base)


def gelfond_lifschitz_reduct(program: Program, candidate: AbstractSet[Atom]) -> Program:
    """The three-stage reduct ``P^I`` of a ground program by a candidate set
    of true atoms (Section 4):

    1. delete every rule with a negative literal ``¬q`` whose atom ``q`` is
       in the candidate;
    2. delete the remaining negative literals from the surviving rules;
    3. the result is a Horn program (whose minimum model the stability check
       compares with the candidate).
    """
    program.require_ground()
    reduced: list[Rule] = []
    for rule in program:
        blocked = any(
            lit.negative and lit.atom in candidate for lit in rule.body
        )
        if blocked:
            continue
        positive_only = tuple(lit for lit in rule.body if lit.positive)
        reduced.append(Rule(rule.head, positive_only))
    return Program(reduced)


def reduct_minimum_model(program: Program, candidate: AbstractSet[Atom]) -> frozenset[Atom]:
    """The minimum model of the Gelfond–Lifschitz reduct ``P^I``."""
    reduct = gelfond_lifschitz_reduct(program, candidate)
    reduct_context = build_context(reduct)
    return eventual_consequence(reduct_context, NegativeSet.empty())


def is_stable_set(
    context: GroundContext,
    true_atoms: AbstractSet[Atom],
    strategy: str = DEFAULT_STRATEGY,
) -> bool:
    """Check stability of a candidate total model given by its true atoms.

    Using the paper's formulation: represent the candidate by its negative
    literals ``Ĩ = conj(I⁺)`` and test ``S̃_P(Ĩ) == Ĩ``.  (Equivalently, the
    minimum model of the Gelfond–Lifschitz reduct equals ``I⁺``; the test
    suite checks the two formulations agree.)
    """
    true_atoms = frozenset(true_atoms)
    if not true_atoms <= context.base:
        # Atoms outside the base can never be derived, so a candidate
        # asserting them is not stable.
        return False
    negative = conjugate_of_positive(true_atoms, context.base)
    return stability_transform(context, negative, strategy=strategy) == negative
