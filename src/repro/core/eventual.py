"""The eventual consequence mapping ``S_P`` (Definition 4.2).

``S_P(Ĩ)`` is the least fixpoint of ``T_{P∪Ĩ}``: the set of positive facts
eventually derivable when the negative literals in ``Ĩ`` are treated as
additional EDB facts (Figure 3 of the paper).  It is the workhorse of both
the stability transformation and the alternating fixpoint, so two
implementations are provided:

* :func:`eventual_consequence_naive` — repeated application of
  ``T_{P∪Ĩ}`` until convergence, exactly as the definition reads; and
* :func:`eventual_consequence` — a linear-time counting propagation
  (Dowling–Gallier style): every rule keeps a count of positive body atoms
  not yet derived, and a rule whose negative body is contained in ``Ĩ``
  fires as soon as that count reaches zero.

The two are differentially tested against each other; the fast version is
the default everywhere.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Iterable

from ..datalog.atoms import Atom
from ..fixpoint.lattice import NegativeSet
from ..fixpoint.operators import FixpointTrace, iterate_to_fixpoint
from .context import GroundContext

__all__ = [
    "eventual_consequence",
    "eventual_consequence_naive",
    "eventual_consequence_trace",
    "minimum_model",
]


def eventual_consequence(context: GroundContext, negative: NegativeSet) -> frozenset[Atom]:
    """``S_P(Ĩ)`` — all positive atoms derivable with ``Ĩ`` held fixed.

    Runs a seminaive counting propagation: O(total body size) per call.
    """
    rules = context.rules
    # Rules whose negative body is justified by Ĩ participate; others are inert.
    active: list[bool] = [False] * len(rules)
    remaining: list[int] = [0] * len(rules)
    derived: set[Atom] = set(context.facts)
    queue: deque[Atom] = deque(derived)

    for index, rule in enumerate(rules):
        if all(atom in negative for atom in rule.negative_body):
            active[index] = True
            # Count *distinct* positive body atoms; duplicate occurrences in a
            # body must not be double-counted.
            remaining[index] = len(set(rule.positive_body))
            if remaining[index] == 0 and rule.head not in derived:
                derived.add(rule.head)
                queue.append(rule.head)

    # Each derived atom is dequeued exactly once, and rules_by_positive_atom
    # lists a rule once per distinct body atom, so decrementing on dequeue
    # counts every distinct satisfied body atom exactly once.
    while queue:
        atom = queue.popleft()
        for index in context.rules_by_positive_atom.get(atom, ()):
            if not active[index]:
                continue
            remaining[index] -= 1
            if remaining[index] == 0:
                head = rules[index].head
                if head not in derived:
                    derived.add(head)
                    queue.append(head)
    return frozenset(derived)


def eventual_consequence_naive(context: GroundContext, negative: NegativeSet) -> frozenset[Atom]:
    """Reference implementation of ``S_P(Ĩ)`` by naive iteration of
    ``T_{P∪Ĩ}`` (Definition 4.1) to its least fixpoint."""
    return eventual_consequence_trace(context, negative).fixpoint


def eventual_consequence_trace(
    context: GroundContext, negative: NegativeSet
) -> FixpointTrace[frozenset[Atom]]:
    """The stage-by-stage trace of the ``T_{P∪Ĩ}`` iteration.

    Useful for inspecting derivation rounds; the closure ordinal is at most
    ω (Section 4), i.e. finite here.
    """

    def step(positive: frozenset[Atom]) -> frozenset[Atom]:
        derived: set[Atom] = set(context.facts)
        for rule in context.rules:
            if all(atom in negative for atom in rule.negative_body) and all(
                atom in positive for atom in rule.positive_body
            ):
                derived.add(rule.head)
        return frozenset(derived)

    return iterate_to_fixpoint(step, frozenset())


def minimum_model(context: GroundContext) -> frozenset[Atom]:
    """The minimum model of a definite (Horn) ground program.

    For Horn programs ``S_P`` does not depend on the negative argument, so
    the minimum model is simply ``S_P(∅)``; rules with negative literals are
    ignored (they cannot fire with an empty negative set), which matches the
    Horn restriction the callers enforce.
    """
    return eventual_consequence(context, NegativeSet.empty())
