"""The eventual consequence mapping ``S_P`` (Definition 4.2).

``S_P(Ĩ)`` is the least fixpoint of ``T_{P∪Ĩ}``: the set of positive facts
eventually derivable when the negative literals in ``Ĩ`` are treated as
additional EDB facts (Figure 3 of the paper).  It is the workhorse of both
the stability transformation and the alternating fixpoint, so two
strategies are provided through :mod:`repro.evaluation`:

* ``"naive"`` — repeated application of ``T_{P∪Ĩ}`` until convergence,
  exactly as the definition reads (also exposed as
  :func:`eventual_consequence_naive`); and
* ``"seminaive"`` (default) — the indexed delta propagation of
  :mod:`repro.evaluation.seminaive` (Dowling–Gallier style): every rule
  keeps a count of positive body atoms not yet derived, and a rule whose
  negative body is contained in ``Ĩ`` fires in O(1) when its last positive
  body atom is derived.

The two are differentially tested against each other; the fast version is
the default everywhere.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..evaluation.engine import DEFAULT_STRATEGY, get_engine
from ..fixpoint.lattice import NegativeSet
from ..fixpoint.operators import FixpointTrace, iterate_to_fixpoint
from .context import GroundContext

__all__ = [
    "eventual_consequence",
    "eventual_consequence_naive",
    "eventual_consequence_trace",
    "minimum_model",
]


def eventual_consequence(
    context: GroundContext,
    negative: NegativeSet,
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """``S_P(Ĩ)`` — all positive atoms derivable with ``Ĩ`` held fixed.

    The default semi-naive strategy costs O(total body size) per call.
    """
    return get_engine(strategy).consequence(context, negative)


def eventual_consequence_naive(context: GroundContext, negative: NegativeSet) -> frozenset[Atom]:
    """Reference implementation of ``S_P(Ĩ)`` by naive iteration of
    ``T_{P∪Ĩ}`` (Definition 4.1) to its least fixpoint."""
    return eventual_consequence_trace(context, negative).fixpoint


def eventual_consequence_trace(
    context: GroundContext, negative: NegativeSet
) -> FixpointTrace[frozenset[Atom]]:
    """The stage-by-stage trace of the ``T_{P∪Ĩ}`` iteration.

    Useful for inspecting derivation rounds; the closure ordinal is at most
    ω (Section 4), i.e. finite here.
    """

    def step(positive: frozenset[Atom]) -> frozenset[Atom]:
        derived: set[Atom] = set(context.facts)
        for rule in context.rules:
            if all(atom in negative for atom in rule.negative_body) and all(
                atom in positive for atom in rule.positive_body
            ):
                derived.add(rule.head)
        return frozenset(derived)

    return iterate_to_fixpoint(step, frozenset())


def minimum_model(
    context: GroundContext, strategy: str = DEFAULT_STRATEGY
) -> frozenset[Atom]:
    """The minimum model of a definite (Horn) ground program.

    For Horn programs ``S_P`` does not depend on the negative argument, so
    the minimum model is simply ``S_P(∅)``; rules with negative literals are
    ignored (they cannot fire with an empty negative set), which matches the
    Horn restriction the callers enforce.
    """
    return eventual_consequence(context, NegativeSet.empty(), strategy=strategy)
