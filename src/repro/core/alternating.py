"""The alternating fixpoint (Section 5 of the paper) — the core contribution.

The *alternating transformation* is the composition of the antimonotonic
stability transformation with itself::

    A_P(Ĩ) = S̃_P(S̃_P(Ĩ))            (Definition 5.1)

``A_P`` is monotonic, so its least fixpoint ``Ã = A_P↑∞(∅)`` exists.  With
``A⁺ = S_P(Ã)``, the *alternating fixpoint partial model* is ``A⁺ + Ã``
(Definition 5.2) — and by Theorem 7.8 it equals the well-founded partial
model.

The computation runs the single-step sequence ``Ĩ_{k+1} = S̃_P(Ĩ_k)`` from
``Ĩ_0 = ∅``: even stages form an ascending chain of *underestimates* of the
negative conclusions, odd stages a descending chain of *overestimates*
(Figure 2); the iteration stops when two consecutive even stages coincide.
The full trace — the rows of Table I — is retained on the result object so
the benchmark harness can print the paper's table verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..config import DEFAULT_STRATEGY, EngineConfig, merge_entry_config
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..exceptions import EvaluationError
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet, conjugate_of_positive
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import metered
from .context import GroundContext, build_context
from .eventual import eventual_consequence
from .stability import stability_transform

__all__ = [
    "AlternatingStage",
    "AlternatingFixpointResult",
    "alternating_transform",
    "alternating_fixpoint",
    "afp_model",
]

_MAX_STAGES = 10_000_000


@dataclass(frozen=True)
class AlternatingStage:
    """One row of the Table I trace.

    ``index`` is ``k``; ``negative`` is ``Ĩ_k`` and ``positive`` is
    ``S_P(Ĩ_k)``.  Even ``k`` are underestimates of the false atoms, odd
    ``k`` overestimates.
    """

    index: int
    negative: NegativeSet
    positive: frozenset[Atom]

    @property
    def is_underestimate(self) -> bool:
        return self.index % 2 == 0

    def describe(self) -> str:
        falses = ", ".join(sorted(f"not {a}" for a in self.negative))
        trues = ", ".join(sorted(str(a) for a in self.positive))
        return f"k={self.index}: Ĩ_k = {{{falses}}}  S_P(Ĩ_k) = {{{trues}}}"


@dataclass(frozen=True)
class AlternatingFixpointResult:
    """The outcome of an alternating fixpoint computation.

    Attributes
    ----------
    context:
        The ground evaluation context the fixpoint was computed over.
    negative_fixpoint:
        ``Ã`` — the least fixpoint of ``A_P`` (the well-founded false atoms).
    positive_fixpoint:
        ``A⁺ = S_P(Ã)`` (the well-founded true atoms).
    stages:
        The ``Ĩ_k`` / ``S_P(Ĩ_k)`` trace, i.e. the rows of Table I.  With
        ``keep_stages=False`` only the first and final rows are retained.
    stage_count:
        Number of rows the full trace would have; ``None`` when ``stages``
        already is the full trace.
    """

    context: GroundContext
    negative_fixpoint: NegativeSet
    positive_fixpoint: frozenset[Atom]
    stages: tuple[AlternatingStage, ...]
    stage_count: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Model views
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> PartialInterpretation:
        """The AFP partial model ``A⁺ + Ã`` as a partial interpretation."""
        return PartialInterpretation(self.positive_fixpoint, set(self.negative_fixpoint))

    @property
    def undefined_atoms(self) -> frozenset[Atom]:
        """Atoms of the base left undefined (``W?`` in the paper's notation)."""
        return (
            frozenset(self.context.base)
            - self.positive_fixpoint
            - frozenset(self.negative_fixpoint.atoms)
        )

    @property
    def is_total(self) -> bool:
        """True when the AFP model is a total model of the ground program —
        in which case it is also the unique stable model (Section 5)."""
        return not self.undefined_atoms

    @property
    def iterations(self) -> int:
        """Number of ``S̃_P`` applications performed."""
        if self.stage_count is not None:
            return self.stage_count - 1
        return len(self.stages) - 1

    def true_atoms(self) -> frozenset[Atom]:
        return self.positive_fixpoint

    def false_atoms(self) -> frozenset[Atom]:
        return frozenset(self.negative_fixpoint.atoms)

    def value_of(self, atom: Atom) -> str:
        """Three-valued verdict for a single atom (``"true"``, ``"false"``,
        or ``"undefined"``); atoms outside the base are false by the closed
        world assumption."""
        if atom in self.positive_fixpoint:
            return "true"
        if atom in self.negative_fixpoint or atom not in self.context.base:
            return "false"
        return "undefined"

    def table(self) -> list[tuple[int, frozenset[Atom], frozenset[Atom]]]:
        """The Table I rows as ``(k, atoms false in Ĩ_k, atoms in S_P(Ĩ_k))``."""
        return [
            (stage.index, frozenset(stage.negative.atoms), stage.positive)
            for stage in self.stages
        ]


def alternating_transform(
    context: GroundContext,
    negative: NegativeSet,
    strategy: str = DEFAULT_STRATEGY,
) -> NegativeSet:
    """``A_P(Ĩ) = S̃_P(S̃_P(Ĩ))`` — Definition 5.1 (monotonic)."""
    return stability_transform(
        context, stability_transform(context, negative, strategy=strategy), strategy=strategy
    )


def alternating_fixpoint(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    full_base: bool = False,
    extra_atoms: Iterable[Atom] = (),
    strategy: str | None = None,
    keep_stages: bool = True,
    engine: str | None = None,
    config: Optional[EngineConfig] = None,
    recorder: Recorder | None = None,
) -> AlternatingFixpointResult:
    """Compute the alternating fixpoint partial model of *program*.

    Accepts either a :class:`~repro.datalog.rules.Program` (which is
    grounded first) or a pre-built :class:`GroundContext`.  The inner
    ``S_P`` evaluations run under *strategy* (semi-naive by default).  The
    result carries the full iteration trace — the Table I rows — unless
    ``keep_stages=False``, which retains only the first and final rows
    (large runs need not hold every intermediate interpretation alive;
    ``stage_count`` still reports the true trace length).

    With ``engine="modular"`` the model is computed component-wise by
    :func:`repro.core.modular.modular_well_founded` (SCC condensation of
    the atom dependency graph, cheapest-sound-method dispatch per
    component) instead of by monolithic alternation, and with
    ``engine="kernel"`` by the compiled flat-array evaluator
    (:func:`repro.kernel.kernel_well_founded` — same dispatch, dense-int
    IR); the result then carries a single synthetic stage holding the
    fixpoint, since no global ``Ĩ_k`` sequence exists.  The models are
    identical (Theorem 7.8 plus the splitting property of the well-founded
    semantics); the monolithic engine remains the differential oracle.

    A *config* supplies ``strategy``/``engine``/``limits`` together; the
    per-field keywords are then rejected (except ``limits``, which may
    still override).  Called directly without either, the engine defaults
    to monolithic — this function *is* the monolithic oracle's home.
    """
    strategy, engine, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, engine=engine, limits=limits, default_engine="monolithic"
    )
    recorder = recorder if recorder is not None else NULL_RECORDER
    with metered(budget) as meter:
        if engine != "monolithic":
            # Deferred imports: cycle with the engine dispatch.
            if engine == "kernel":
                from ..kernel import kernel_well_founded as delegate
            else:
                from .modular import modular_well_founded as delegate

            # The delegated call inherits the meter ambiently, so the
            # budget governs the component dispatch as well.
            modular = delegate(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                strategy=strategy,
                grounder=grounder,
                recorder=recorder,
            )
            negative = NegativeSet(modular.model.false_atoms)
            positive = modular.model.true_atoms
            return AlternatingFixpointResult(
                context=modular.context,
                negative_fixpoint=negative,
                positive_fixpoint=positive,
                stages=(AlternatingStage(0, negative, positive),),
            )

        if isinstance(program, GroundContext):
            context = program
        else:
            context = build_context(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                grounder=grounder,
                recorder=recorder,
            )

        with recorder.span("evaluate", method="alternating") as evaluate_span:
            stages: list[AlternatingStage] = []
            current = NegativeSet.empty()
            positive = eventual_consequence(context, current, strategy=strategy)
            stages.append(AlternatingStage(0, current, positive))

            previous_even: Optional[NegativeSet] = current
            index = 0
            while True:
                index += 1
                meter.step("alternating")
                if index > _MAX_STAGES:
                    raise EvaluationError("alternating fixpoint did not converge")
                # S̃_P(Ĩ_k) is the conjugate of the S_P(Ĩ_k) already computed for the
                # previous stage, so each stage needs exactly one S_P evaluation.
                current = conjugate_of_positive(positive, context.base)
                positive = eventual_consequence(context, current, strategy=strategy)
                stage = AlternatingStage(index, current, positive)
                if keep_stages:
                    stages.append(stage)
                if index % 2 == 0:
                    # Even stages form an ascending chain, so unequal sizes decide
                    # inequality without comparing the sets element-wise.
                    if (
                        previous_even is not None
                        and len(current) == len(previous_even)
                        and current == previous_even
                    ):
                        break
                    previous_even = current

            if not keep_stages:
                stages.append(stage)
    if recorder.enabled:
        evaluate_span.annotate(stages=index)
        recorder.count("alternating.stages", index)
    return AlternatingFixpointResult(
        context=context,
        negative_fixpoint=current,
        positive_fixpoint=positive,
        stages=tuple(stages),
        stage_count=None if keep_stages else index + 1,
    )


def afp_model(program: Program, **kwargs) -> PartialInterpretation:
    """Convenience wrapper returning just the AFP partial model."""
    return alternating_fixpoint(program, **kwargs).model
