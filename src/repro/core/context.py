"""Ground evaluation contexts.

Every operator of the paper (``T_P``, ``S_P``, ``S̃_P``, ``A_P``, ``U_P``,
``W_P``) is defined on the Herbrand instantiation of a program.  The
:class:`GroundContext` bundles a ground program together with the atom
universe the operators work over and the rule indexes that make repeated
operator applications fast:

* ``rules`` — the ground non-fact rules, decomposed into head / positive
  body / negative body;
* ``facts`` — the ground atoms asserted unconditionally;
* ``base`` — the atom universe ``H`` relative to which complements and
  conjugates (Definition 3.2) are taken.

By default the base is the set of atoms *occurring* in the ground program.
Atoms of the full Herbrand base that never occur in any rule cannot be
derived under any semantics implemented here, so restricting to occurring
atoms changes nothing except keeping the negative sets small; pass
``full_base=True`` to :func:`build_context` to use the complete Herbrand
base instead (useful when reproducing the paper's examples verbatim, whose
tables list every ``p(x)`` atom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from ..config import DEFAULT_GROUNDER, validate_grounder
from ..datalog.atoms import Atom
from ..datalog.grounding import (
    GroundingLimits,
    herbrand_base,
    naive_ground,
    relevant_ground,
    stream_relevant_ground,
)
from ..datalog.rules import Program, Rule
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import current_meter
if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import EngineConfig
    from ..storage.base import FactStore

__all__ = ["GroundRule", "GroundContext", "build_context"]


@dataclass(frozen=True)
class GroundRule:
    """A ground rule split into the pieces the operators consume."""

    head: Atom
    positive_body: tuple[Atom, ...]
    negative_body: tuple[Atom, ...]
    source: Rule

    def __str__(self) -> str:
        return str(self.source)


@dataclass(frozen=True)
class GroundContext:
    """A ground program prepared for fixpoint evaluation.

    The context is immutable and reusable: all the operators in
    :mod:`repro.core` take a context plus the varying literal sets, so one
    grounding pays for every semantics computed on the program.
    """

    program: Program
    rules: tuple[GroundRule, ...]
    facts: frozenset[Atom]
    base: frozenset[Atom]
    rules_by_positive_atom: Mapping[Atom, tuple[int, ...]]
    rules_by_head: Mapping[Atom, tuple[int, ...]]

    @property
    def atom_count(self) -> int:
        return len(self.base)

    @property
    def rule_count(self) -> int:
        return len(self.rules) + len(self.facts)

    def atoms_of_predicate(self, predicate: str) -> set[Atom]:
        return {atom for atom in self.base if atom.predicate == predicate}

    def statistics(self) -> dict[str, int]:
        return {
            "ground_rules": len(self.rules),
            "facts": len(self.facts),
            "atoms": len(self.base),
        }


def build_context(
    program: Program,
    limits: GroundingLimits | None = None,
    full_base: bool = False,
    extra_atoms: Iterable[Atom] = (),
    grounder: str | None = None,
    config: "EngineConfig | None" = None,
    store: "FactStore | None" = None,
    recorder: Recorder | None = None,
) -> GroundContext:
    """Ground *program* and build an evaluation context.

    Parameters
    ----------
    program:
        The input program (ground or not).
    limits:
        Grounding limits forwarded to the grounder.
    full_base:
        When true, the base is the full Herbrand base over the program's IDB
        predicates (plus all occurring atoms); when false (default) only the
        occurring atoms.
    extra_atoms:
        Additional ground atoms to include in the base, e.g. query atoms the
        caller wants a definite truth value for even if they occur nowhere.
    grounder:
        ``"relevant"`` (default) instantiates only rules whose positive body
        is supportable — equivalent for the well-founded, stable, stratified,
        Horn and inflationary semantics.  It runs the indexed semi-naive
        grounder and consumes its rule stream incrementally: facts, rule
        decomposition and the occurring-atom base are built in the same
        pass that grounds, with no intermediate program materialised
        first.  ``"relevant-scan"`` is the same relevant grounding computed
        by the original linear-scan matcher (the differential oracle).
        ``"naive"`` is the literal Herbrand instantiation ``P_H``; the
        Fitting semantics needs it because it can leave *underivable* atoms
        undefined rather than false.
    config:
        An :class:`~repro.config.EngineConfig` supplying ``grounder`` (with
        the matcher folded in) and ``limits`` together; the per-field
        keywords, when given, take precedence.
    store:
        An optional :class:`~repro.storage.FactStore` supplying EDB facts
        alongside the program's own fact rules.  With the default
        ``"relevant"`` grounder and a non-ground program, the store's rows
        and bound-position indexes are probed in place by the streaming
        grounder — the per-solve copy of the fact base into a fresh
        ``RelationStore`` disappears.  Ground programs and the other
        grounders materialise the store's facts into the program instead
        (preserving their exact historical rule sets and atom bases).
    recorder:
        Optional :class:`~repro.obs.Recorder`; a tracing recorder captures
        the whole grounding-plus-context pass as one ``ground`` span
        (annotated with the resulting rule/fact/atom counts) and the
        grounder's round/delta counters.
    """
    if config is not None:
        if grounder is None:
            grounder = config.resolved_grounder
        if limits is None:
            limits = config.limits
    validate_grounder(grounder if grounder is not None else DEFAULT_GROUNDER)
    if grounder is None:
        grounder = DEFAULT_GROUNDER
    recorder = recorder if recorder is not None else NULL_RECORDER
    with recorder.span("ground", grounder=grounder) as ground_span:
        if store is not None and (program.is_ground or grounder != "relevant"):
            program = Program.union(store.as_program(), program)
            store = None
        grounded: Program | None
        if program.is_ground:
            grounded = program
            rule_stream: Iterable[Rule] = program
        elif grounder == "naive":
            grounded = naive_ground(program, limits)
            rule_stream = grounded
        elif grounder == "relevant-scan":
            grounded = relevant_ground(program, limits, matcher="scan")
            rule_stream = grounded
        else:
            # Consume the indexed grounder's incremental stream directly.
            grounded = None
            rule_stream = stream_relevant_ground(
                program, limits, store=store, recorder=recorder
            )

        collected: list[Rule] | None = [] if grounded is None else None
        facts: set[Atom] = set()
        ground_rules: list[GroundRule] = []
        occurring: set[Atom] = set()
        # Already-ground programs bypass the grounder's own budget ticks,
        # so the collection loop checkpoints the ambient meter itself.
        meter = current_meter()
        for rule in rule_stream:
            meter.tick("ground", stride=256)
            if collected is not None:
                collected.append(rule)
            if rule.is_fact:
                facts.add(rule.head)
                occurring.add(rule.head)
                continue
            positive = tuple(lit.atom for lit in rule.body if lit.positive)
            negative = tuple(lit.atom for lit in rule.body if lit.negative)
            ground_rules.append(GroundRule(rule.head, positive, negative, rule))
            occurring.add(rule.head)
            occurring.update(positive)
            occurring.update(negative)
        if grounded is None:
            grounded = Program(collected)

        base: set[Atom] = set(occurring)
        base.update(extra_atoms)
        if full_base:
            # Widen with the Herbrand base of the *original* program so that the
            # reported models mention every instantiable IDB atom.
            base.update(herbrand_base(program, max_depth=(limits.max_depth if limits else 0)))

        by_positive: dict[Atom, list[int]] = {}
        by_head: dict[Atom, list[int]] = {}
        for index, ground_rule in enumerate(ground_rules):
            meter.tick("ground", stride=512)
            by_head.setdefault(ground_rule.head, []).append(index)
            # Deduplicate so a rule is listed once per *distinct* body atom; the
            # counting propagation in repro.core.eventual relies on this.
            for atom in set(ground_rule.positive_body):
                by_positive.setdefault(atom, []).append(index)

        context = GroundContext(
            program=grounded,
            rules=tuple(ground_rules),
            facts=frozenset(facts),
            base=frozenset(base),
            rules_by_positive_atom={atom: tuple(ids) for atom, ids in by_positive.items()},
            rules_by_head={atom: tuple(ids) for atom, ids in by_head.items()},
        )
    if recorder.enabled:
        ground_span.annotate(
            rules=len(context.rules), facts=len(context.facts), atoms=len(context.base)
        )
        recorder.count("ground.rules", len(context.rules))
        recorder.count("ground.facts", len(context.facts))
        recorder.count("ground.atoms", len(context.base))
    return context
