"""Explanations for well-founded verdicts.

A deductive-database user who asks "why is this atom true / false /
undefined?" deserves more than a truth value.  This module derives
justifications from the alternating fixpoint result:

* a **true** atom gets a derivation tree: a supporting rule instance whose
  positive body atoms are recursively justified and whose negative body
  atoms are all well-founded-false;
* a **false** atom gets the witnesses of unusability (Definition 6.1) of
  every rule for it — each rule is blocked by a body literal that is false
  in the model or by a positive body atom that is itself in the greatest
  unfounded set;
* an **undefined** atom gets the set of rules that are neither usable nor
  blocked, i.e. the loop through negation it participates in.

The derivations are faithful to the semantics: a true atom's tree never
relies on undefined atoms, and a false atom's explanation never cites an
undefined literal as a blocker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Rule
from ..exceptions import EvaluationError
from .alternating import AlternatingFixpointResult, alternating_fixpoint
from .context import GroundContext

__all__ = [
    "Derivation",
    "BlockedRule",
    "Explanation",
    "Explainer",
    "explain",
]


@dataclass(frozen=True)
class Derivation:
    """A proof tree for a well-founded-true atom.

    ``rule`` is the ground rule instance used (``None`` for EDB facts);
    ``subderivations`` justify its positive body atoms; ``assumed_false``
    are its negative body atoms, each of which is false in the model.
    """

    atom: Atom
    rule: Optional[Rule]
    subderivations: tuple["Derivation", ...] = ()
    assumed_false: tuple[Atom, ...] = ()

    @property
    def is_fact(self) -> bool:
        return self.rule is None

    def depth(self) -> int:
        if not self.subderivations:
            return 1
        return 1 + max(sub.depth() for sub in self.subderivations)

    def atoms_used(self) -> set[Atom]:
        used = {self.atom}
        for sub in self.subderivations:
            used |= sub.atoms_used()
        return used

    def render(self, indent: int = 0) -> str:
        """Human-readable indented proof tree."""
        pad = "  " * indent
        if self.is_fact:
            lines = [f"{pad}{self.atom}  [fact]"]
        else:
            lines = [f"{pad}{self.atom}  [by rule: {self.rule}]"]
        for negative in self.assumed_false:
            lines.append(f"{pad}  not {negative}  [false in the well-founded model]")
        for sub in self.subderivations:
            lines.append(sub.render(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class BlockedRule:
    """Why one rule for a false/undefined atom cannot fire.

    ``witnesses`` are the body literals falsified by the model
    (Definition 6.1's witnesses of unusability, condition 1);
    ``unfounded_support`` are positive body atoms that are false because
    they are themselves unfounded (condition 2 of the definition).
    """

    rule: Rule
    witnesses: tuple[Literal, ...]
    unfounded_support: tuple[Atom, ...]

    def render(self) -> str:
        reasons = [f"{w} fails ({w.atom} is {'true' if w.negative else 'false'})" for w in self.witnesses]
        reasons.extend(f"subgoal {a} is itself false/unfounded" for a in self.unfounded_support)
        reason_text = "; ".join(reasons) if reasons else "no usable justification"
        return f"{self.rule}   [blocked: {reason_text}]"


@dataclass(frozen=True)
class Explanation:
    """The full justification for one atom's well-founded verdict."""

    atom: Atom
    verdict: str
    derivation: Optional[Derivation] = None
    blocked_rules: tuple[BlockedRule, ...] = ()
    undefined_rules: tuple[Rule, ...] = ()

    def render(self) -> str:
        lines = [f"{self.atom}: {self.verdict}"]
        if self.derivation is not None:
            lines.append(self.derivation.render(indent=1))
        if self.blocked_rules:
            lines.append("  every rule for it is unusable:")
            lines.extend("    " + blocked.render() for blocked in self.blocked_rules)
        if self.verdict == "false" and not self.blocked_rules and self.derivation is None:
            lines.append("  no rule has this atom in its head (closed world)")
        if self.undefined_rules:
            lines.append("  rules caught in a loop through negation:")
            lines.extend(f"    {rule}" for rule in self.undefined_rules)
        return "\n".join(lines)


class Explainer:
    """Builds explanations against one alternating-fixpoint result.

    The explainer is cheap to construct from an existing result; building it
    from a program computes the alternating fixpoint first.
    """

    def __init__(self, result: AlternatingFixpointResult):
        self._result = result
        self._context: GroundContext = result.context
        self._derivation_cache: dict[Atom, Derivation] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def for_program(cls, program) -> "Explainer":
        return cls(alternating_fixpoint(program))

    @property
    def result(self) -> AlternatingFixpointResult:
        return self._result

    # ------------------------------------------------------------------ #
    def explain(self, atom: Atom) -> Explanation:
        """Explain the verdict of a single ground atom."""
        verdict = self._result.value_of(atom)
        if verdict == "true":
            return Explanation(atom, "true", derivation=self.derive(atom))
        if verdict == "false":
            return Explanation(atom, "false", blocked_rules=tuple(self._blockers(atom)))
        return Explanation(atom, "undefined", undefined_rules=tuple(self._undefined_rules(atom)))

    # ------------------------------------------------------------------ #
    # True atoms: derivation trees
    # ------------------------------------------------------------------ #
    def derive(self, atom: Atom) -> Derivation:
        """A derivation tree for a well-founded-true atom.

        The tree is built by replaying the ``S_P(W̃)`` computation in
        derivation order, so subgoals always have strictly earlier
        derivations and the tree is well founded (no circular support).
        """
        if atom not in self._result.positive_fixpoint:
            raise EvaluationError(f"{atom} is not true in the well-founded model")
        self._ensure_derivations()
        return self._derivation_cache[atom]

    def _ensure_derivations(self) -> None:
        if self._derivation_cache:
            return
        negative = self._result.negative_fixpoint
        derived: dict[Atom, Derivation] = {}
        for fact in self._context.facts:
            derived[fact] = Derivation(fact, None)
        changed = True
        while changed:
            changed = False
            for rule in self._context.rules:
                if rule.head in derived:
                    continue
                if not all(a in negative for a in rule.negative_body):
                    continue
                if not all(a in derived for a in rule.positive_body):
                    continue
                derived[rule.head] = Derivation(
                    rule.head,
                    rule.source,
                    tuple(derived[a] for a in rule.positive_body),
                    tuple(rule.negative_body),
                )
                changed = True
        self._derivation_cache = derived

    # ------------------------------------------------------------------ #
    # False atoms: witnesses of unusability
    # ------------------------------------------------------------------ #
    def _blockers(self, atom: Atom) -> Iterable[BlockedRule]:
        model = self._result.model
        for index in self._context.rules_by_head.get(atom, ()):
            rule = self._context.rules[index]
            witnesses: list[Literal] = []
            unfounded: list[Atom] = []
            for body_atom in rule.negative_body:
                if model.is_true(body_atom):
                    witnesses.append(Literal(body_atom, False))
            for body_atom in rule.positive_body:
                if model.is_false(body_atom) or body_atom not in self._context.base:
                    unfounded.append(body_atom)
            yield BlockedRule(rule.source, tuple(witnesses), tuple(unfounded))

    # ------------------------------------------------------------------ #
    # Undefined atoms: the rules left in limbo
    # ------------------------------------------------------------------ #
    def _undefined_rules(self, atom: Atom) -> Iterable[Rule]:
        model = self._result.model
        for index in self._context.rules_by_head.get(atom, ()):
            rule = self._context.rules[index]
            body_literals = [Literal(a, True) for a in rule.positive_body] + [
                Literal(a, False) for a in rule.negative_body
            ]
            values = [model.value_of_literal(lit) for lit in body_literals]
            if any(value.value == "false" for value in values):
                continue  # definitively blocked, not part of the limbo
            yield rule.source


def explain(program_or_result, atom: Atom) -> Explanation:
    """One-shot helper: explain *atom* under the well-founded model of the
    program (or of an already computed :class:`AlternatingFixpointResult`)."""
    if isinstance(program_or_result, AlternatingFixpointResult):
        explainer = Explainer(program_or_result)
    else:
        explainer = Explainer.for_program(program_or_result)
    return explainer.explain(atom)
