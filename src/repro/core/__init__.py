"""Core contribution of the paper: the alternating fixpoint and its friends.

* :mod:`repro.core.context` — ground evaluation contexts;
* :mod:`repro.core.consequence` — immediate consequence mappings
  (Definitions 3.6–3.7);
* :mod:`repro.core.eventual` — the eventual consequence ``S_P``
  (Definition 4.2);
* :mod:`repro.core.stability` — the stability transformation ``S̃_P`` and
  the Gelfond–Lifschitz reduct (Section 4);
* :mod:`repro.core.alternating` — the alternating transformation ``A_P`` and
  the AFP partial model (Section 5);
* :mod:`repro.core.wellfounded` — unfounded sets and the ``W_P`` fixpoint
  (Section 6), the independent baseline for Theorem 7.8;
* :mod:`repro.core.modular` — the component-wise well-founded evaluator:
  SCC condensation of the atom dependency graph with cheapest-sound-method
  dispatch per component (Horn closure / stratified double closure / local
  alternating fixpoint);
* :mod:`repro.core.stable` — stable models via ``S̃_P`` fixpoints.
"""

from .alternating import (
    AlternatingFixpointResult,
    AlternatingStage,
    afp_model,
    alternating_fixpoint,
    alternating_transform,
)
from .consequence import (
    horn_step,
    immediate_consequence,
    inflationary_step,
    naive_negation_step,
    tp_step,
)
from .context import GroundContext, GroundRule, build_context
from .eventual import (
    eventual_consequence,
    eventual_consequence_naive,
    eventual_consequence_trace,
    minimum_model,
)
from .explain import BlockedRule, Derivation, Explainer, Explanation, explain
from .modular import (
    DEFAULT_ENGINE,
    EVALUATION_ENGINES,
    ComponentReport,
    ModularResult,
    modular_model,
    modular_well_founded,
    validate_engine,
)
from .stability import (
    gelfond_lifschitz_reduct,
    is_stable_set,
    reduct_minimum_model,
    stability_transform,
)
from .stable import (
    StableModel,
    has_stable_model,
    is_stable_model,
    stable_consequences,
    stable_models,
    stable_models_brute_force,
    unique_stable_model,
)
from .wellfounded import (
    WellFoundedResult,
    greatest_unfounded_set,
    is_unfounded_set,
    well_founded_model,
    well_founded_transform,
)

__all__ = [
    "AlternatingFixpointResult",
    "AlternatingStage",
    "afp_model",
    "alternating_fixpoint",
    "alternating_transform",
    "horn_step",
    "immediate_consequence",
    "inflationary_step",
    "naive_negation_step",
    "tp_step",
    "GroundContext",
    "GroundRule",
    "build_context",
    "eventual_consequence",
    "eventual_consequence_naive",
    "eventual_consequence_trace",
    "minimum_model",
    "BlockedRule",
    "Derivation",
    "Explainer",
    "Explanation",
    "explain",
    "DEFAULT_ENGINE",
    "EVALUATION_ENGINES",
    "ComponentReport",
    "ModularResult",
    "modular_model",
    "modular_well_founded",
    "validate_engine",
    "gelfond_lifschitz_reduct",
    "is_stable_set",
    "reduct_minimum_model",
    "stability_transform",
    "StableModel",
    "has_stable_model",
    "is_stable_model",
    "stable_consequences",
    "stable_models",
    "stable_models_brute_force",
    "unique_stable_model",
    "WellFoundedResult",
    "greatest_unfounded_set",
    "is_unfounded_set",
    "well_founded_model",
    "well_founded_transform",
]
