"""Stable models (Gelfond–Lifschitz) on top of the stability transformation.

The paper (Sections 2.4 and 4) relates stable models to the alternating
fixpoint: a total interpretation, represented by its negative literals, is
stable exactly when it is a fixpoint of ``S̃_P``; every stable model extends
the well-founded partial model, and a total AFP model is the unique stable
model.  Deciding stable-model *existence* is NP-complete (Elkan;
Marek–Truszczyński), which is why the enumerators here are exponential in
the number of atoms left undefined by the well-founded model — the
well-founded pruning is what makes them usable in practice.

Three enumeration strategies are provided:

* :func:`stable_models_brute_force` — test every subset of the base;
  only for very small programs and for differential testing;
* :func:`stable_models` — backtracking over the atoms undefined in the
  well-founded model, with over/under-estimate pruning (in the spirit of
  the Saccà–Zaniolo backtracking fixpoint the paper cites);
* :func:`has_stable_model`, :func:`unique_stable_model` — convenience
  wrappers.

The *stable model semantics* (true = in every stable model, false = in no
stable model) is exposed by :func:`stable_consequences`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..config import DEFAULT_STRATEGY, EngineConfig, merge_entry_config
from ..exceptions import EvaluationError
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet, conjugate_of_positive
from ..resilience.budget import metered
from .alternating import AlternatingFixpointResult, alternating_fixpoint
from .context import GroundContext, build_context
from .eventual import eventual_consequence
from .stability import is_stable_set, stability_transform

__all__ = [
    "StableModel",
    "is_stable_model",
    "stable_models",
    "stable_models_brute_force",
    "has_stable_model",
    "unique_stable_model",
    "stable_consequences",
]


@dataclass(frozen=True)
class StableModel:
    """A stable model, carried as its set of true atoms over the context base.

    ``interpretation`` views it as a total partial-interpretation (every
    base atom not true is false).
    """

    context: GroundContext
    true_atoms: frozenset[Atom]

    @property
    def false_atoms(self) -> frozenset[Atom]:
        return frozenset(self.context.base) - self.true_atoms

    @property
    def interpretation(self) -> PartialInterpretation:
        return PartialInterpretation(self.true_atoms, self.false_atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.true_atoms

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(str(a) for a in self.true_atoms)) + "}"


def _as_context(
    program: Program | GroundContext,
    limits: GroundingLimits | None,
    grounder: str | None = None,
) -> GroundContext:
    if isinstance(program, GroundContext):
        return program
    return build_context(program, limits=limits, grounder=grounder)


def is_stable_model(
    program: Program | GroundContext,
    true_atoms: AbstractSet[Atom],
    limits: GroundingLimits | None = None,
    strategy: str = DEFAULT_STRATEGY,
) -> bool:
    """Check whether the total interpretation given by *true_atoms* is a
    stable model of *program*."""
    context = _as_context(program, limits)
    return is_stable_set(context, true_atoms, strategy=strategy)


def stable_models_brute_force(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    strategy: str = DEFAULT_STRATEGY,
) -> list[StableModel]:
    """Enumerate stable models by testing every subset of the base.

    Exponential in ``|base|``; used by the tests to validate the pruned
    enumerator on small programs.
    """
    context = _as_context(program, limits)
    atoms = sorted(context.base, key=str)
    models: list[StableModel] = []
    for size in range(len(atoms) + 1):
        for subset in itertools.combinations(atoms, size):
            candidate = frozenset(subset)
            if is_stable_set(context, candidate, strategy=strategy):
                models.append(StableModel(context, candidate))
    return models


def stable_models(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    afp: Optional[AlternatingFixpointResult] = None,
    limit: Optional[int] = None,
    strategy: str | None = None,
    config: EngineConfig | None = None,
) -> list[StableModel]:
    """Enumerate the stable models of *program*.

    The search space is the set of atoms left undefined by the well-founded
    (= alternating fixpoint) model: the well-founded true atoms are true and
    the well-founded false atoms false in *every* stable model, so only the
    undefined atoms are branched on.  Each branch is pruned with the
    over-/under-estimate argument of Section 4: with ``F`` the atoms decided
    false and ``T`` decided true so far,

    * an atom decided false that is derivable even from the *smallest*
      candidate negative set can never be false — prune;
    * an atom decided true that is not derivable even from the *largest*
      candidate negative set can never be true — prune.

    ``limit`` stops the enumeration after that many models (useful when only
    existence or a sample is needed).  A *config* supplies
    ``strategy``/``limits`` together.
    """
    strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits
    )
    with metered(budget) as meter:
        context = _as_context(program, limits, grounder)
        afp_result = afp if afp is not None else alternating_fixpoint(context, strategy=strategy)
        wf_true = afp_result.positive_fixpoint
        wf_false = frozenset(afp_result.negative_fixpoint.atoms)
        undefined = sorted(afp_result.undefined_atoms, key=str)

        models: list[StableModel] = []

        def candidate_is_new(candidate: frozenset[Atom]) -> bool:
            return all(model.true_atoms != candidate for model in models)

        def search(position: int, decided_true: set[Atom], decided_false: set[Atom]) -> None:
            if limit is not None and len(models) >= limit:
                return
            meter.tick("evaluate", stride=8)
            neg_lower = NegativeSet(wf_false | decided_false)
            neg_upper = NegativeSet(
                frozenset(context.base) - wf_true - decided_true
            )
            derivable_floor = eventual_consequence(context, neg_lower, strategy=strategy)
            derivable_ceiling = eventual_consequence(context, neg_upper, strategy=strategy)
            # Pruning: a decided-false atom already derivable from the floor can
            # only become "more derivable" as further atoms are decided false.
            if decided_false & derivable_floor:
                return
            if not set(decided_true) <= derivable_ceiling:
                return
            if position == len(undefined):
                candidate = frozenset(wf_true | decided_true)
                if is_stable_set(context, candidate, strategy=strategy) and candidate_is_new(
                    candidate
                ):
                    models.append(StableModel(context, candidate))
                return
            atom = undefined[position]
            search(position + 1, decided_true, decided_false | {atom})
            search(position + 1, decided_true | {atom}, decided_false)

        search(0, set(), set())
    return models


def has_stable_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
) -> bool:
    """True when the program has at least one stable model."""
    return bool(stable_models(program, limits=limits, limit=1))


def unique_stable_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
) -> StableModel:
    """Return the unique stable model, raising when there are zero or many.

    Programs whose AFP model is total always satisfy this (Section 5); the
    error message distinguishes the two failure cases for callers.
    """
    found = stable_models(program, limits=limits, limit=2)
    if not found:
        raise EvaluationError("the program has no stable model")
    if len(found) > 1:
        raise EvaluationError("the program has more than one stable model")
    return found[0]


def stable_consequences(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    strategy: str | None = None,
    config: EngineConfig | None = None,
) -> PartialInterpretation:
    """The stable model semantics of Gelfond–Lifschitz (Section 2.4).

    An atom is true when it belongs to every stable model and false when it
    belongs to none.  Raises :class:`EvaluationError` when the program has
    no stable model, where this semantics is undefined.  A *config*
    supplies ``strategy``/``limits`` together.
    """
    strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits
    )
    with metered(budget):
        context = _as_context(program, limits, grounder)
        models = stable_models(context, strategy=strategy)
    if not models:
        raise EvaluationError(
            "the stable model semantics is undefined: the program has no stable model"
        )
    true_everywhere = frozenset.intersection(*(model.true_atoms for model in models))
    false_everywhere = frozenset.intersection(*(model.false_atoms for model in models))
    return PartialInterpretation(true_everywhere, false_everywhere)
