"""Well-founded partial models via unfounded sets (Section 6 of the paper).

This is the *original* (Van Gelder–Ross–Schlipf) characterisation that the
alternating fixpoint is proved equivalent to (Theorem 7.8).  The library
implements it independently so the equivalence can be checked empirically —
the property-based tests and benchmark E6 do exactly that.

Definitions implemented here:

* :func:`greatest_unfounded_set` — ``U_P(I)``, the union of all unfounded
  sets of ``P`` with respect to a partial interpretation ``I``
  (Definition 6.1);
* :func:`well_founded_transform` — ``W_P(I) = T_P(I) ∪ ¬·U_P(I)``
  (Definition 6.2);
* :func:`well_founded_model` — the least fixpoint of ``W_P`` (the
  well-founded partial model), with its stage trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable

from ..config import DEFAULT_STRATEGY, EngineConfig, merge_entry_config
from ..datalog.atoms import Atom
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program
from ..evaluation.engine import get_engine
from ..fixpoint.interpretations import PartialInterpretation
from ..fixpoint.lattice import NegativeSet
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import metered
from .consequence import tp_step
from .context import GroundContext, build_context

__all__ = [
    "WellFoundedResult",
    "greatest_unfounded_set",
    "well_founded_transform",
    "well_founded_model",
    "is_unfounded_set",
]


@dataclass(frozen=True)
class WellFoundedResult:
    """Outcome of the ``W_P`` iteration.

    ``stages`` records each intermediate partial interpretation, starting
    from the empty one; the last stage is the well-founded partial model.
    """

    context: GroundContext
    model: PartialInterpretation
    stages: tuple[PartialInterpretation, ...]

    @property
    def iterations(self) -> int:
        return len(self.stages) - 1

    @property
    def is_total(self) -> bool:
        return self.model.is_total_over(self.context.base)

    @property
    def undefined_atoms(self) -> frozenset[Atom]:
        return self.model.undefined_atoms(self.context.base)


def is_unfounded_set(
    context: GroundContext,
    candidate: AbstractSet[Atom],
    interpretation: PartialInterpretation,
) -> bool:
    """Check Definition 6.1 directly: is *candidate* an unfounded set of the
    program with respect to *interpretation*?

    Every atom of the candidate must have, for each of its rules, a witness
    of unusability: a body literal false in the interpretation, or a
    positive body atom inside the candidate.  Atoms with no rules at all
    satisfy the condition vacuously.
    """
    candidate = frozenset(candidate)
    for atom in candidate:
        for index in context.rules_by_head.get(atom, ()):
            rule = context.rules[index]
            witness = any(
                interpretation.is_false(body_atom) for body_atom in rule.positive_body
            ) or any(
                interpretation.is_true(body_atom) for body_atom in rule.negative_body
            ) or any(body_atom in candidate for body_atom in rule.positive_body)
            if not witness:
                return False
        # A fact rule for the atom means it can never be unfounded.
        if atom in context.facts:
            return False
    return True


def greatest_unfounded_set(
    context: GroundContext,
    interpretation: PartialInterpretation,
    universe: AbstractSet[Atom] | None = None,
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """``U_P(I)`` — the greatest unfounded set with respect to *I*.

    Computed as the complement (within the base) of the least set ``X`` of
    atoms that are *externally supported*: ``p ∈ X`` when some rule for
    ``p`` has no body literal false in ``I`` and all its positive body atoms
    already in ``X``.  Everything not externally supported is unfounded.
    The semi-naive strategy kills rules through the shared watch lists of
    :mod:`repro.evaluation` and propagates support with the same counters
    as ``S_P`` — the standard linear-time computation; the naive strategy
    re-scans the rules until the supported set stops growing.  Both are
    differentially tested against :func:`is_unfounded_set`.
    """
    base = frozenset(universe) if universe is not None else context.base
    supported = get_engine(strategy).supported(context, interpretation)
    return frozenset(base - supported)


def well_founded_transform(
    context: GroundContext,
    interpretation: PartialInterpretation,
    strategy: str = DEFAULT_STRATEGY,
) -> PartialInterpretation:
    """``W_P(I) = T_P(I) ∪ ¬·U_P(I)`` — Definition 6.2."""
    negative_part = NegativeSet(interpretation.false_atoms)
    positives = tp_step(context, interpretation.true_atoms, negative_part, strategy=strategy)
    negatives = greatest_unfounded_set(context, interpretation, strategy=strategy)
    return PartialInterpretation(positives, negatives)


def well_founded_model(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    full_base: bool = False,
    extra_atoms: Iterable[Atom] = (),
    strategy: str | None = None,
    engine: str | None = None,
    config: "EngineConfig | None" = None,
    recorder: Recorder | None = None,
) -> WellFoundedResult:
    """The well-founded partial model: the least fixpoint of ``W_P``.

    ``W_P`` is monotone in the information ordering of partial
    interpretations, so iterating from the empty interpretation converges;
    the stages are recorded for inspection and for the Figure 2 benchmark.

    With ``engine="modular"`` the model is instead assembled component by
    component (:func:`repro.core.modular.modular_well_founded`), and with
    ``engine="kernel"`` by the compiled flat-array evaluator
    (:func:`repro.kernel.kernel_well_founded`); the resulting ``stages``
    collapse to ``(empty, model)`` since no global ``W_P`` sequence is run.
    The default monolithic iteration remains the independent unfounded-set
    oracle of Theorem 7.8.  A *config* supplies
    ``strategy``/``engine``/``limits`` together.
    """
    strategy, engine, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, engine=engine, limits=limits, default_engine="monolithic"
    )
    recorder = recorder if recorder is not None else NULL_RECORDER
    with metered(budget) as meter:
        if engine != "monolithic":
            if engine == "kernel":
                from ..kernel import kernel_well_founded as delegate
            else:
                from .modular import modular_well_founded as delegate

            # Inherits the meter ambiently — the budget governs the
            # delegated component dispatch too.
            result = delegate(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                strategy=strategy,
                grounder=grounder,
                recorder=recorder,
            )
            return WellFoundedResult(
                context=result.context,
                model=result.model,
                stages=(PartialInterpretation.empty(), result.model),
            )

        if isinstance(program, GroundContext):
            context = program
        else:
            context = build_context(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                grounder=grounder,
                recorder=recorder,
            )

        with recorder.span("evaluate", method="unfounded-sets") as evaluate_span:
            stages: list[PartialInterpretation] = [PartialInterpretation.empty()]
            current = stages[0]
            while True:
                meter.step("unfounded")
                following = well_founded_transform(context, current, strategy=strategy)
                stages.append(following)
                if (
                    following.true_atoms == current.true_atoms
                    and following.false_atoms == current.false_atoms
                ):
                    break
                current = following
    if recorder.enabled:
        evaluate_span.annotate(iterations=len(stages) - 1)
        recorder.count("unfounded.iterations", len(stages) - 1)
    return WellFoundedResult(context=context, model=stages[-1], stages=tuple(stages))
