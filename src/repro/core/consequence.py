"""Immediate consequence mappings (Definitions 3.6 and 3.7).

The two-argument *immediate consequence mapping* ``C_P(I⁺, Ĩ)`` returns the
heads of rules whose positive body atoms are all in ``I⁺`` and whose
negative body literals are all in ``Ĩ``.  From it the paper derives:

* the Horn transformation ``T_P(I⁺) = C_P(I⁺, ∅)`` (van Emden–Kowalski);
* the non-monotonic Apt–van Emden extension ``C_P(I⁺, conj(I⁺))``;
* the *inflationary* transformation of IFP, ``C_P(I⁺, ¬·I⁺) ∪ I⁺``;
* the monotone ``T_P(I)`` of Definition 3.7 used by the well-founded
  transformation ``W_P``; and
* the parametrised ``T_{P∪Ĩ}`` of Definition 4.1, whose least fixpoint is
  the eventual consequence ``S_P`` (computed in :mod:`repro.core.eventual`).

All of these take a :class:`~repro.core.context.GroundContext` and a
``strategy`` selecting the evaluation engine: ``"seminaive"`` (default)
applies one step through the per-context rule index of
:mod:`repro.evaluation`, ``"naive"`` re-scans every rule exactly as the
definitions read and serves as the differential-testing oracle.
"""

from __future__ import annotations

from typing import AbstractSet

from ..datalog.atoms import Atom
from ..evaluation.engine import DEFAULT_STRATEGY, get_engine
from ..fixpoint.lattice import NegativeSet, conjugate_of_positive
from .context import GroundContext

__all__ = [
    "immediate_consequence",
    "horn_step",
    "tp_step",
    "inflationary_step",
    "naive_negation_step",
]

_EMPTY_NEGATIVE = NegativeSet.empty()


def immediate_consequence(
    context: GroundContext,
    positive: AbstractSet[Atom],
    negative: NegativeSet,
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """``C_P(I⁺, Ĩ)`` — Definition 3.6.

    Facts always belong to the result (their body is empty).  The combined
    argument is *not* required to be consistent: as the paper notes,
    overestimates of negative facts may coexist with the positive atoms they
    negate.
    """
    return get_engine(strategy).step(context, positive, negative)


def horn_step(
    context: GroundContext,
    positive: AbstractSet[Atom],
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """The Horn-clause immediate consequence ``T_P(I⁺) = C_P(I⁺, ∅)``.

    Only rules without negative body literals can fire (an empty negative
    context justifies no negative literal).  This is the transformation
    whose least fixpoint is the minimum model of a definite program (van
    Emden–Kowalski).
    """
    return get_engine(strategy).step(context, positive, _EMPTY_NEGATIVE)


def tp_step(
    context: GroundContext,
    positive: AbstractSet[Atom],
    negative: NegativeSet,
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """``T_P(I)`` of Definition 3.7 for ``I = I⁺ + Ĩ``.

    Identical to :func:`immediate_consequence`; kept as a separate name so
    call sites read like the paper (``T_P`` produces only positive literals,
    negative conclusions are drawn by a separate mechanism such as ``U_P``).
    """
    return immediate_consequence(context, positive, negative, strategy=strategy)


def inflationary_step(
    context: GroundContext,
    positive: AbstractSet[Atom],
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """One round of the inflationary (IFP) transformation.

    ``T_P(I⁺) = C_P(I⁺, conj(I⁺)) ∪ I⁺``: a negative literal is treated as
    true when its atom has not been concluded *yet*, and previously drawn
    conclusions are kept forever (Section 3.4).  The fixpoint of this
    operator is the inflationary semantics compared against in Example 2.2.
    """
    negative = conjugate_of_positive(positive, context.base)
    return immediate_consequence(context, positive, negative, strategy=strategy) | frozenset(
        positive
    )


def naive_negation_step(
    context: GroundContext,
    positive: AbstractSet[Atom],
    strategy: str = DEFAULT_STRATEGY,
) -> frozenset[Atom]:
    """The non-inflationary, non-monotonic extension ``C_P(I⁺, conj(I⁺))``.

    Included because the paper (Section 3.4) discusses it as the variant
    studied by Kolaitis and Papadimitriou that "frequently fails" to be
    increasing; the tests demonstrate exactly that failure.
    """
    negative = conjugate_of_positive(positive, context.base)
    return immediate_consequence(context, positive, negative, strategy=strategy)
