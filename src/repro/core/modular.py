"""Component-wise alternating fixpoint: SCC-decomposed well-founded evaluation.

The monolithic alternating fixpoint (Section 5) re-derives the *entire*
ground program at every stage ``Ĩ_{k+1} = S̃_P(Ĩ_k)``, so a program made of
``c`` independent or layered negation clusters pays ``O(c)`` alternating
stages × whole-program ``S_P`` cost.  But the well-founded semantics is
*relevant*: an atom's verdict only depends on the atoms it transitively
depends on (the Section 8 dependency-graph analyses, here at ground-atom
granularity).  This module exploits that:

1. condense the ground program's atom-level dependency graph
   (:func:`repro.analysis.dependency.build_atom_dependency_graph`) into
   strongly connected components, topologically ordered callees-first;
2. evaluate components bottom-up, freezing each solved component's
   true/false atoms as fixed context for the components above it;
3. per component, dispatch to the cheapest sound method:

   * ``"horn"`` — no negation left after partial evaluation against the
     solved context: one semi-naive counter closure; underivable atoms of
     the component are false;
   * ``"stratified"`` — negation only points *downward* (the component is
     locally stratified within itself) but some body literal rests on an
     atom left *undefined* below: two counter closures — the definite
     closure gives the true atoms, the closure that also fires through the
     undefined literals gives the envelope of possibly-true atoms; atoms
     outside the envelope are false, inside-but-underived undefined;
   * ``"alternating"`` — negation through recursion inside the component:
     the full alternating fixpoint, run over just this component's rules
     with a component-local base.  Undefined literals from below are
     replaced by one designated undefined atom (defined by the canonical
     ``u ← ¬u`` rule), which is exactly the three-valued partial
     evaluation of the splitting property of the well-founded semantics.
     The local :class:`~repro.core.context.GroundContext` caches its
     :class:`~repro.evaluation.indexes.RuleIndex`, so all of the
     component's ``S_P`` stages share one index build.

On layered workloads (stacked win–move towers, chained same-generation
blocks — see :func:`repro.workloads.generators.layered_program`) this turns
quadratic-in-layers work into near-linear work; the equality of the
assembled model with the monolithic alternating fixpoint and with the
unfounded-set characterisation is checked by the differential property
tests and by ``benchmarks/bench_modular_wfs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..analysis.dependency import build_atom_dependency_graph
from ..config import (
    DEFAULT_ENGINE,
    DEFAULT_STRATEGY,
    EVALUATION_ENGINES,
    EngineConfig,
    merge_entry_config,
    validate_engine,
)
from ..datalog.atoms import Atom, Literal
from ..datalog.grounding import GroundingLimits
from ..datalog.rules import Program, Rule
from ..fixpoint.interpretations import PartialInterpretation
from ..obs.recorder import NULL_RECORDER, Recorder
from ..resilience.budget import metered
from .context import GroundContext, build_context

__all__ = [
    "EVALUATION_ENGINES",
    "DEFAULT_ENGINE",
    "validate_engine",
    "ComponentReport",
    "ModularResult",
    "fresh_undef_atom",
    "solve_component",
    "modular_well_founded",
    "modular_model",
]

#: Fallback predicate name for the designated undefined atom injected into
#: component-local programs (suffixed until fresh if a program really uses
#: the name).
_UNDEF_PREDICATE = "_wfs_undef"


@dataclass(frozen=True)
class ComponentReport:
    """How one strongly connected component was solved.

    ``stages`` counts fixpoint passes: the number of counter closures for
    the ``horn``/``stratified`` methods, the number of ``S̃_P`` applications
    for ``alternating``.

    When a tracing :class:`~repro.obs.Recorder` is attached, every field of
    this report is also emitted as the attributes of the per-``component``
    span — the report is the *derived*, API-stable view of the same
    per-component record the :mod:`repro.obs` trace captures.
    """

    index: int
    atoms: tuple[Atom, ...]
    method: str
    rules: int
    stages: int
    true_count: int
    false_count: int

    @property
    def size(self) -> int:
        return len(self.atoms)

    @property
    def undefined_count(self) -> int:
        return len(self.atoms) - self.true_count - self.false_count


@dataclass(frozen=True)
class ModularResult:
    """The assembled well-founded partial model plus the per-component log."""

    context: GroundContext
    model: PartialInterpretation
    components: tuple[ComponentReport, ...]

    @property
    def component_count(self) -> int:
        return len(self.components)

    @property
    def largest_component(self) -> int:
        return max((report.size for report in self.components), default=0)

    @property
    def is_total(self) -> bool:
        return self.model.is_total_over(self.context.base)

    @property
    def undefined_atoms(self) -> frozenset[Atom]:
        return self.model.undefined_atoms(self.context.base)

    def method_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.components:
            counts[report.method] = counts.get(report.method, 0) + 1
        return counts

    def stages_by_method(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for report in self.components:
            totals[report.method] = totals.get(report.method, 0) + report.stages
        return totals

    def statistics(self) -> dict[str, object]:
        return {
            "components": self.component_count,
            "largest_component": self.largest_component,
            "methods": self.method_counts(),
            "stages": self.stages_by_method(),
            **self.context.statistics(),
        }


# --------------------------------------------------------------------- #
# Component-local closures (horn / stratified methods)
# --------------------------------------------------------------------- #
def _component_closure(
    local_rules: list[tuple[Atom, tuple[Atom, ...], tuple[Atom, ...], bool]],
    seed: Iterable[Atom],
    fire_markers: bool,
    recorder: Recorder = NULL_RECORDER,
) -> set[Atom]:
    """Least set containing *seed* closed under the definite local rules,
    by counter propagation (Dowling–Gallier, mirroring
    :mod:`repro.evaluation.seminaive` on the component-local rule list).

    Rules carrying an undefined-marker only participate when *fire_markers*
    is set (the envelope closure of the stratified method).  Rules with
    internal negation never reach here — the dispatcher sends those
    components to the alternating method.
    """
    heads: list[Atom] = []
    counters: list[int] = []
    watchers: dict[Atom, list[int]] = {}
    zero_rules: list[Atom] = []

    for head, positive, _negative, marker in local_rules:
        if marker and not fire_markers:
            continue
        distinct = set(positive)
        rule_id = len(heads)
        heads.append(head)
        counters.append(len(distinct))
        if not distinct:
            zero_rules.append(head)
        else:
            for atom in distinct:
                watchers.setdefault(atom, []).append(rule_id)

    derived: set[Atom] = set()
    frontier: list[Atom] = []
    for atom in seed:
        if atom not in derived:
            derived.add(atom)
            frontier.append(atom)
    for head in zero_rules:
        if head not in derived:
            derived.add(head)
            frontier.append(head)

    while frontier:
        atom = frontier.pop()
        for rule_id in watchers.get(atom, ()):
            counters[rule_id] -= 1
            if counters[rule_id] == 0:
                head = heads[rule_id]
                if head not in derived:
                    derived.add(head)
                    frontier.append(head)
    if recorder.enabled:
        # Every derived atom is popped from the frontier exactly once and
        # decrements each rule watching it, so the Dowling–Gallier work is
        # reconstructible after the fact — the hot loop stays untouched.
        recorder.count(
            "dg.decrements",
            sum(len(watchers.get(atom, ())) for atom in derived),
        )
    return derived


def fresh_undef_atom(base: Iterable[Atom]) -> Atom:
    """A zero-arity atom whose predicate name clashes with nothing in *base*."""
    name = _UNDEF_PREDICATE
    taken = {atom.predicate for atom in base}
    while name in taken:
        name += "_"
    return Atom(name, ())


def solve_component(
    component: set[Atom],
    comp_index: int,
    rules: Sequence,
    rules_by_head: Mapping[Atom, tuple[int, ...]],
    facts: frozenset[Atom],
    true_atoms: set[Atom],
    false_atoms: set[Atom],
    undef_atom: Atom,
    strategy: str = DEFAULT_STRATEGY,
    *,
    recorder: Recorder = NULL_RECORDER,
    kernel=None,
) -> tuple[set[Atom], set[Atom], ComponentReport]:
    """Solve one strongly connected component against its solved context.

    *true_atoms* / *false_atoms* are the verdicts of the components already
    evaluated (everything this component's rules can reach outside itself
    must be decided or deliberately left undefined there); they are read,
    never written.  Returns the component's true set, false set and
    :class:`ComponentReport`.  This is the unit of work shared by the batch
    evaluator below and by the incremental maintenance of
    :mod:`repro.session` (which re-runs it only for components downstream
    of a changed fact).

    *kernel* — a :class:`repro.kernel.ComponentKernel` whose truth and
    fact vectors its owner keeps in sync with *true_atoms* /
    *false_atoms* / *facts* — routes the solve through the compiled
    flat-array path; the object path is the automatic fallback whenever
    the component holds an atom the kernel was not compiled with.
    """
    if kernel is not None:
        fast = kernel.solve_component(component, tracing=recorder.enabled)
        if fast is not None:
            comp_true, comp_false, method, rule_count, stages, decrements = fast
            if recorder.enabled:
                recorder.count("kernel.decrements", decrements)
                if method == "alternating":
                    recorder.count("alternating.stages", stages)
            return (
                comp_true,
                comp_false,
                ComponentReport(
                    index=comp_index,
                    atoms=tuple(component),
                    method=method,
                    rules=rule_count,
                    stages=stages,
                    true_count=len(comp_true),
                    false_count=len(comp_false),
                ),
            )
    # ---- singleton fast path ---------------------------------------- #
    # The vast majority of components are single atoms with no
    # self-dependency; their verdict falls out of one pass over their
    # rules with no closure machinery at all.
    if len(component) == 1:
        fast = _solve_singleton(component, rules, rules_by_head, facts, true_atoms, false_atoms)
        if fast is not None:
            comp_true, comp_false, method, rule_count, stages = fast
            return (
                comp_true,
                comp_false,
                ComponentReport(
                    index=comp_index,
                    atoms=tuple(component),
                    method=method,
                    rules=rule_count,
                    stages=stages,
                    true_count=len(comp_true),
                    false_count=len(comp_false),
                ),
            )

    # ---- partial evaluation against the solved context --------------- #
    local_rules: list[tuple[Atom, tuple[Atom, ...], tuple[Atom, ...], bool]] = []
    has_internal_negation = False
    for head in component:
        for rule_id in rules_by_head.get(head, ()):
            rule = rules[rule_id]
            killed = False
            positive_internal: list[Atom] = []
            negative_internal: list[Atom] = []
            marker = False
            for atom in rule.positive_body:
                if atom in component:
                    positive_internal.append(atom)
                elif atom in true_atoms:
                    continue  # satisfied; drop the literal
                elif atom in false_atoms:
                    killed = True
                    break
                else:
                    marker = True  # undefined below
            if not killed:
                for atom in rule.negative_body:
                    if atom in component:
                        negative_internal.append(atom)
                    elif atom in false_atoms:
                        continue  # satisfied; drop the literal
                    elif atom in true_atoms:
                        killed = True
                        break
                    else:
                        marker = True  # undefined below
            if killed:
                continue
            if negative_internal:
                has_internal_negation = True
            local_rules.append(
                (head, tuple(positive_internal), tuple(negative_internal), marker)
            )

    local_facts = component & facts

    # ---- cheapest-sound-method dispatch ------------------------------ #
    if has_internal_negation:
        method = "alternating"
        comp_true, comp_false, stages = _solve_alternating(
            component, local_rules, local_facts, undef_atom, strategy
        )
        if recorder.enabled:
            recorder.count("alternating.stages", stages)
    else:
        definite = _component_closure(
            local_rules, local_facts, fire_markers=False, recorder=recorder
        )
        if any(marker for (_, _, _, marker) in local_rules):
            method = "stratified"
            envelope = _component_closure(
                local_rules, local_facts, fire_markers=True, recorder=recorder
            )
            stages = 2
        else:
            method = "horn"
            envelope = definite
            stages = 1
        comp_true = definite
        comp_false = component - envelope

    return (
        comp_true,
        comp_false,
        ComponentReport(
            index=comp_index,
            atoms=tuple(component),
            method=method,
            rules=len(local_rules),
            stages=stages,
            true_count=len(comp_true),
            false_count=len(comp_false),
        ),
    )


# --------------------------------------------------------------------- #
# The component-wise evaluator
# --------------------------------------------------------------------- #
def modular_well_founded(
    program: Program | GroundContext,
    limits: GroundingLimits | None = None,
    full_base: bool = False,
    extra_atoms: Iterable[Atom] = (),
    strategy: str | None = None,
    config: Optional[EngineConfig] = None,
    grounder: str | None = None,
    recorder: Recorder | None = None,
) -> ModularResult:
    """Compute the well-founded partial model component by component.

    Accepts either a :class:`~repro.datalog.rules.Program` (grounded first)
    or a pre-built :class:`GroundContext`.  *strategy* selects the engine
    used inside the per-component alternating fixpoints; a *config* supplies
    ``strategy``/``limits`` together (the two spellings are exclusive).

    A tracing *recorder* (see :mod:`repro.obs`) captures the evaluation's
    phase structure: a ``condense`` span around the SCC condensation, one
    ``component`` span per SCC (annotated with the fields of its
    :class:`ComponentReport`), and an ``assemble`` span around the final
    model construction, plus per-method component counters.
    """
    strategy, _, limits, grounder, budget = merge_entry_config(
        config, strategy=strategy, limits=limits, grounder=grounder
    )
    recorder = recorder if recorder is not None else NULL_RECORDER
    with metered(budget) as meter:
        if isinstance(program, GroundContext):
            context = program
        else:
            context = build_context(
                program,
                limits=limits,
                full_base=full_base,
                extra_atoms=extra_atoms,
                grounder=grounder,
                recorder=recorder,
            )

        with recorder.span("condense") as condense_span:
            graph = build_atom_dependency_graph(context)
            meter.check("component")
            components = graph.condensation_order()
            meter.check("component")
        undef_atom = fresh_undef_atom(context.base)

        rules = context.rules
        rules_by_head: Mapping[Atom, tuple[int, ...]] = context.rules_by_head
        facts = context.facts

        true_atoms: set[Atom] = set()
        false_atoms: set[Atom] = set()
        reports: list[ComponentReport] = []

        tracing = recorder.enabled
        if tracing:
            condense_span.annotate(components=len(components))
            recorder.count("components.total", len(components))
            # Trace path: one `components` group span holding a `component`
            # child per SCC, so the loop's own bookkeeping is accounted to the
            # phase rather than falling between spans.
            with recorder.span("components"):
                for comp_index, component in enumerate(components):
                    meter.step("component")
                    with recorder.span("component") as comp_span:
                        comp_true, comp_false, report = solve_component(
                            component,
                            comp_index,
                            rules,
                            rules_by_head,
                            facts,
                            true_atoms,
                            false_atoms,
                            undef_atom,
                            strategy,
                            recorder=recorder,
                        )
                        comp_span.annotate(
                            index=comp_index,
                            method=report.method,
                            size=report.size,
                            rules=report.rules,
                            stages=report.stages,
                            true=report.true_count,
                            false=report.false_count,
                        )
                        recorder.count(f"components.{report.method}")
                    true_atoms.update(comp_true)
                    false_atoms.update(comp_false)
                    reports.append(report)
        else:
            for comp_index, component in enumerate(components):
                meter.step("component")
                comp_true, comp_false, report = solve_component(
                    component,
                    comp_index,
                    rules,
                    rules_by_head,
                    facts,
                    true_atoms,
                    false_atoms,
                    undef_atom,
                    strategy,
                )
                true_atoms.update(comp_true)
                false_atoms.update(comp_false)
                reports.append(report)

    with recorder.span("assemble") as assemble_span:
        model = PartialInterpretation(true_atoms, false_atoms)
        result = ModularResult(context=context, model=model, components=tuple(reports))
    if tracing:
        assemble_span.annotate(true=len(true_atoms), false=len(false_atoms))
    return result


def _solve_singleton(
    component: set[Atom],
    rules,
    rules_by_head,
    facts: frozenset[Atom],
    true_atoms: set[Atom],
    false_atoms: set[Atom],
):
    """Resolve a single-atom component without closure machinery.

    Returns ``(true, false, method, rules, stages)`` or ``None`` when the
    atom depends on itself (a genuine one-atom SCC with a loop), which the
    generic dispatcher handles.
    """
    head = next(iter(component))
    satisfied = head in facts
    possible = False
    rule_count = 0
    marker_seen = False
    for rule_id in rules_by_head.get(head, ()):
        rule = rules[rule_id]
        rule_count += 1
        killed = False
        marker = False
        for atom in rule.positive_body:
            if atom == head:
                return None  # self-dependent: generic path
            if atom in true_atoms:
                continue
            if atom in false_atoms:
                killed = True
                break
            marker = True
        if killed:
            continue
        for atom in rule.negative_body:
            if atom == head:
                return None  # self-dependent: generic path
            if atom in false_atoms:
                continue
            if atom in true_atoms:
                killed = True
                break
            marker = True
        if killed:
            continue
        if marker:
            marker_seen = True
            possible = True
        else:
            satisfied = True
    method = "stratified" if marker_seen else "horn"
    stages = 2 if marker_seen else 1
    if satisfied:
        return {head}, set(), method, rule_count, stages
    if possible:
        return set(), set(), method, rule_count, stages
    return set(), {head}, method, rule_count, stages


def _solve_alternating(
    component: set[Atom],
    local_rules: list[tuple[Atom, tuple[Atom, ...], tuple[Atom, ...], bool]],
    local_facts: set[Atom],
    undef_atom: Atom,
    strategy: str,
) -> tuple[set[Atom], set[Atom], int]:
    """Run the full alternating fixpoint on one component's residual rules.

    Undefined-marker literals become positive occurrences of *undef_atom*,
    which is made undefined by the canonical ``u ← ¬u`` rule; the component
    atoms are forced into the local base via ``extra_atoms`` so that atoms
    whose rules were all killed still come out false.
    """
    from .alternating import alternating_fixpoint  # deferred: cycle with engine dispatch

    needs_undef = any(marker for (_, _, _, marker) in local_rules)
    pieces: list[Rule] = [Rule(fact) for fact in local_facts]
    for head, positive, negative, marker in local_rules:
        body = [Literal(atom, positive=True) for atom in positive]
        body.extend(Literal(atom, positive=False) for atom in negative)
        if marker:
            body.append(Literal(undef_atom, positive=True))
        pieces.append(Rule(head, tuple(body)))
    if needs_undef:
        pieces.append(Rule(undef_atom, (Literal(undef_atom, positive=False),)))

    local_context = build_context(Program(pieces), extra_atoms=component)
    result = alternating_fixpoint(local_context, strategy=strategy, keep_stages=False)

    comp_true = set(result.positive_fixpoint) & component
    comp_false = set(result.negative_fixpoint.atoms) & component
    return comp_true, comp_false, result.iterations


def modular_model(program: Program | GroundContext, **kwargs) -> PartialInterpretation:
    """Convenience wrapper returning just the well-founded partial model."""
    return modular_well_founded(program, **kwargs).model
