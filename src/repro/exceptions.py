"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when a program or query text cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(ReproError):
    """Raised when a rule violates the range-restriction (safety) condition.

    A rule is *safe* when every variable occurring in the head or in a
    negative body literal also occurs in some positive body literal.
    Unsafe rules do not have a well-defined finite grounding.
    """


class GroundingError(ReproError):
    """Raised when a program cannot be grounded.

    Typical causes are an empty Herbrand universe for a rule that requires
    one, or an instantiation that would exceed the configured limits
    (maximum term depth or maximum number of ground rules).
    """


class BudgetError(ReproError):
    """Base class for resource-governance aborts (:mod:`repro.resilience`).

    Attributes
    ----------
    phase:
        Pipeline phase that tripped the limit (``"ground"``, ``"evaluate"``,
        ``"alternating"``, ``"unfounded"``, ``"component"``, ``"refresh"``),
        when known.
    elapsed:
        Seconds actually spent before aborting — a lower bound on the true
        cost of the aborted computation.
    steps:
        Fixpoint steps counted by the active meter before aborting.
    """

    def __init__(
        self,
        message: str,
        phase: str | None = None,
        elapsed: float | None = None,
        steps: int | None = None,
    ):
        super().__init__(message)
        self.phase = phase
        self.elapsed = elapsed
        self.steps = steps


class BudgetExceeded(BudgetError):
    """Raised when evaluation exhausts its wall-clock or step budget."""


class Cancelled(BudgetError):
    """Raised when a cooperative :class:`~repro.resilience.CancelToken`
    was cancelled (typically from another thread) and the evaluation
    noticed at its next budget checkpoint."""


class GroundingTimeout(BudgetExceeded, GroundingError):
    """Raised when grounding exceeds its wall-clock budget — either the
    legacy ``max_seconds`` of :class:`~repro.datalog.grounding.GroundingLimits`
    or a deadline from a :class:`~repro.resilience.Budget` that trips while
    the grounding phase is running.

    Kept as a distinct class for backward compatibility (it predates the
    unified :class:`BudgetError` hierarchy); it is both a
    :class:`GroundingError` and a :class:`BudgetExceeded`, so old and new
    ``except`` clauses each keep working.
    """

    def __init__(
        self,
        message: str,
        elapsed: float | None = None,
        phase: str | None = "ground",
        steps: int | None = None,
    ):
        super().__init__(message, phase=phase, elapsed=elapsed, steps=steps)


class NotStratifiedError(ReproError):
    """Raised when a stratification-based evaluator receives a program that
    has no stratification (i.e. negation occurs inside a recursive cycle)."""


class NotGroundError(ReproError):
    """Raised when an operation that requires a ground (variable-free)
    program or atom receives a non-ground one."""


class UnknownPredicateError(ReproError):
    """Raised when a query mentions a predicate that the program does not
    define and that is not part of the extensional database."""


class EvaluationError(ReproError):
    """Raised when model computation fails for reasons other than the ones
    covered by the more specific exception classes."""


class StorageError(ReproError):
    """Raised by the :mod:`repro.storage` backends: unknown store
    specifications, operations on a closed store, savepoint misuse, or a
    value that the backend cannot serialise."""


class StoreCorrupt(StorageError):
    """Raised when opening a persistent store whose on-disk state fails
    validation — a file that is not a database, a failed
    ``integrity_check``, or catalogue entries whose backing tables are
    missing or have the wrong shape."""


class FormulaError(ReproError):
    """Raised when a first-order formula (Section 8 of the paper) is
    malformed or used in a context where it is not supported."""
