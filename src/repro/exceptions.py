"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when a program or query text cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(ReproError):
    """Raised when a rule violates the range-restriction (safety) condition.

    A rule is *safe* when every variable occurring in the head or in a
    negative body literal also occurs in some positive body literal.
    Unsafe rules do not have a well-defined finite grounding.
    """


class GroundingError(ReproError):
    """Raised when a program cannot be grounded.

    Typical causes are an empty Herbrand universe for a rule that requires
    one, or an instantiation that would exceed the configured limits
    (maximum term depth or maximum number of ground rules).
    """


class GroundingTimeout(GroundingError):
    """Raised when grounding exceeds the ``max_seconds`` wall-clock budget
    of its :class:`~repro.datalog.grounding.GroundingLimits`.

    Carries ``elapsed``, the seconds actually spent before aborting, so
    callers (benchmark harnesses, request handlers with deadlines) can use
    the aborted run as a lower bound on the true cost.
    """

    def __init__(self, message: str, elapsed: float | None = None):
        super().__init__(message)
        self.elapsed = elapsed


class NotStratifiedError(ReproError):
    """Raised when a stratification-based evaluator receives a program that
    has no stratification (i.e. negation occurs inside a recursive cycle)."""


class NotGroundError(ReproError):
    """Raised when an operation that requires a ground (variable-free)
    program or atom receives a non-ground one."""


class UnknownPredicateError(ReproError):
    """Raised when a query mentions a predicate that the program does not
    define and that is not part of the extensional database."""


class EvaluationError(ReproError):
    """Raised when model computation fails for reasons other than the ones
    covered by the more specific exception classes."""


class StorageError(ReproError):
    """Raised by the :mod:`repro.storage` backends: unknown store
    specifications, operations on a closed store, savepoint misuse, or a
    value that the backend cannot serialise."""


class FormulaError(ReproError):
    """Raised when a first-order formula (Section 8 of the paper) is
    malformed or used in a context where it is not supported."""
