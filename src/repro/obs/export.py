"""Trace exporters: JSONL dumps and human-readable span trees.

Two consumers, two formats:

* :func:`write_trace_jsonl` / :func:`trace_records` — one JSON object per
  line, machine-readable.  The first line is a ``meta`` record, then one
  ``span`` record per span (pre-order, with ``id``/``parent`` links), and
  a final ``counters`` record with the aggregated totals:

  .. code-block:: text

     {"type": "meta", "schema": 1, ...caller metadata...}
     {"type": "span", "id": 0, "parent": null, "depth": 0, "name": "solve",
      "start": 0.0, "elapsed": 0.0123, "attributes": {...}, "counters": {...}}
     {"type": "counters", "totals": {"ground.rules": 2612, ...}}

* :func:`render_span_tree` / :func:`render_counters` — fixed-width tables
  via :func:`repro.reporting.format_table` (imported lazily so the
  storage/core layers can import :mod:`repro.obs` without cycles).
  Sibling spans sharing a name are aggregated into one row (count, total,
  mean, share of parent), so a 2000-component solve prints a handful of
  lines rather than a scroll of per-component noise.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from .recorder import SpanRecord, TraceRecorder

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "REQUIRED_SPAN_KEYS",
    "trace_records",
    "write_trace_jsonl",
    "render_span_tree",
    "render_counters",
    "phase_coverage",
]

#: Bump when the JSONL record shape changes.
TRACE_SCHEMA_VERSION = 1

#: Keys every ``span`` record carries — what CI's smoke step validates.
REQUIRED_SPAN_KEYS = (
    "type",
    "id",
    "parent",
    "depth",
    "name",
    "start",
    "elapsed",
    "attributes",
    "counters",
)


def trace_records(
    recorder: TraceRecorder, metadata: dict[str, object] | None = None
) -> Iterator[dict[str, object]]:
    """Yield the JSONL records of a trace: meta, spans, counter totals."""
    meta: dict[str, object] = {"type": "meta", "schema": TRACE_SCHEMA_VERSION}
    if metadata:
        meta.update(metadata)
    yield meta
    next_id = 0
    # Pre-order walk carrying parent ids.
    stack: list[tuple[SpanRecord, int | None, int]] = [
        (span, None, 0) for span in reversed(recorder.spans)
    ]
    while stack:
        span, parent, depth = stack.pop()
        span_id = next_id
        next_id += 1
        yield {
            "type": "span",
            "id": span_id,
            "parent": parent,
            "depth": depth,
            "name": span.name,
            "start": round(span.start, 9),
            "elapsed": round(span.elapsed, 9),
            "attributes": dict(span.attributes),
            "counters": dict(span.counters),
        }
        for child in reversed(span.children):
            stack.append((child, span_id, depth + 1))
    yield {"type": "counters", "totals": recorder.counter_totals()}


def write_trace_jsonl(
    recorder: TraceRecorder,
    destination: "str | IO[str]",
    metadata: dict[str, object] | None = None,
) -> int:
    """Write the trace as JSON Lines to a path or text stream; returns the
    number of records written."""
    written = 0

    def _dump(stream: IO[str]) -> int:
        count = 0
        for record in trace_records(recorder, metadata):
            stream.write(json.dumps(record, sort_keys=True, default=str))
            stream.write("\n")
            count += 1
        return count

    if hasattr(destination, "write"):
        written = _dump(destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as stream:  # type: ignore[arg-type]
            written = _dump(stream)
    return written


def _aggregate_rows(
    spans: Iterable[SpanRecord],
    parent_elapsed: float,
    depth: int,
    rows: list[tuple[str, str, str, str, str]],
) -> None:
    """Group sibling spans by name into one table row each, recursing into
    the grouped children."""
    groups: dict[str, list[SpanRecord]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    for name, group in groups.items():
        total = sum(span.elapsed for span in group)
        share = (total / parent_elapsed * 100.0) if parent_elapsed > 0 else 100.0
        rows.append(
            (
                "  " * depth + name,
                str(len(group)),
                f"{total * 1000:.2f}",
                f"{total * 1000 / len(group):.3f}",
                f"{share:.1f}",
            )
        )
        children = [child for span in group for child in span.children]
        if children:
            _aggregate_rows(children, total, depth + 1, rows)


def render_span_tree(recorder: TraceRecorder) -> str:
    """The trace as an indented fixed-width table, siblings aggregated by
    name: span, count, total ms, mean ms, share of parent time."""
    from ..reporting import format_table  # lazy: avoids an import cycle

    rows: list[tuple[str, str, str, str, str]] = []
    wall = sum(span.elapsed for span in recorder.spans)
    _aggregate_rows(recorder.spans, wall, 0, rows)
    if not rows:
        return "(no spans recorded)"
    return format_table(("span", "count", "total ms", "mean ms", "% parent"), rows)


def render_counters(recorder: TraceRecorder) -> str:
    """The aggregated counter totals as a two-column table."""
    from ..reporting import format_table  # lazy: avoids an import cycle

    totals = recorder.counter_totals()
    if not totals:
        return "(no counters recorded)"
    rows = [
        (name, f"{value:g}" if isinstance(value, float) else str(value))
        for name, value in totals.items()
    ]
    return format_table(("counter", "value"), rows)


def phase_coverage(recorder: TraceRecorder, root: str = "solve") -> float | None:
    """Fraction of the *root* span's wall-clock accounted for by its direct
    child phases — ``None`` when the root span is missing or instant."""
    span = recorder.find(root)
    if span is None or span.elapsed <= 0:
        return None
    return span.child_elapsed / span.elapsed
