"""Low-overhead engine instrumentation: recorders, spans, counters.

The alternating fixpoint of Van Gelder's paper is a multi-phase
computation — ground the relevant instantiation, condense the atom
dependency graph, dispatch each strongly connected component to the
cheapest sound method, assemble the partial model — and the incremental
session layer adds a second shape (refresh → affected-set → per-component
re-solve).  This module gives every phase one telemetry vocabulary:

* a **span** is a named, timed, hierarchical region
  (``solve`` → ``ground`` → ``condense`` → per-``component`` →
  ``assemble``), carrying arbitrary key/value attributes;
* a **counter** is a named monotone tally (rules grounded, delta sizes,
  ``candidate_rows`` probes, Dowling–Gallier counter decrements,
  unfounded-set iterations, incremental cache hits) attached to the
  innermost open span.  Budget-governed runs (:mod:`repro.resilience`)
  additionally emit ``budget.steps`` (fixpoint steps metered) and
  ``budget.elapsed_ms`` (wall-clock under the meter) when they finish —
  including when they finish by exceeding the budget, so a trace of an
  aborted run shows how far it got.

Two recorders implement the protocol:

* :class:`NullRecorder` — the default everywhere.  Its ``span()`` hands
  back one reusable no-op context manager and ``count()`` does nothing;
  hot loops additionally guard on :attr:`Recorder.enabled` so the
  instrumented engine costs a single attribute load per loop when nobody
  is listening.
* :class:`TraceRecorder` — captures the full span tree plus counters,
  exportable as JSONL or a human-readable table via
  :mod:`repro.obs.export`.

This module deliberately imports nothing from the rest of the package so
any layer (storage, grounding, core, session) can depend on it without
cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "NULL_RECORDER",
    "ensure_recorder",
]


@dataclass
class SpanRecord:
    """One completed (or still open) timed region of a trace.

    ``start`` is seconds since the owning :class:`TraceRecorder`'s epoch;
    ``elapsed`` is filled in when the span closes.  ``counters`` holds the
    tallies incremented while this span was innermost; ``children`` the
    spans opened (and closed) inside it, in order.
    """

    name: str
    start: float
    elapsed: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def child_elapsed(self) -> float:
        """Total time accounted for by direct children."""
        return sum(child.elapsed for child in self.children)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanRecord"]]:
        """Yield ``(depth, span)`` over this subtree, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """The single reusable no-op span handed out by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attributes: object) -> None:
        """Discard attributes (no trace is being captured)."""


_NULL_SPAN = _NullSpan()


class Recorder:
    """The recorder protocol: ``span(name, **attrs)`` and ``count(name, n)``.

    The base class *is* the null implementation; :class:`TraceRecorder`
    overrides both methods.  Hot loops should hoist
    ``tracing = recorder.enabled`` and skip per-iteration calls entirely
    when it is ``False`` — that keeps the instrumented engine within
    measurement noise of the uninstrumented one.
    """

    #: ``True`` only when the recorder actually captures anything.
    enabled: bool = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        """Open a timed region; use as a context manager."""
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1) -> None:
        """Add *amount* to the named counter of the innermost open span."""


class NullRecorder(Recorder):
    """Zero-cost default recorder: records nothing, allocates nothing."""

    __slots__ = ()


#: Shared default instance — every ``recorder=None`` resolves to this.
NULL_RECORDER = NullRecorder()


def ensure_recorder(recorder: "Recorder | None") -> Recorder:
    """Resolve an optional ``recorder=`` argument to a live recorder."""
    return recorder if recorder is not None else NULL_RECORDER


class _Span:
    """Context manager pushing/popping one :class:`SpanRecord`."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "TraceRecorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        record = self.record
        stack = recorder._stack
        if stack:
            stack[-1].children.append(record)
        else:
            recorder._adopt_root(record)
        stack.append(record)
        record.start = recorder._clock() - recorder._epoch
        return self

    def __exit__(self, *exc_info: object) -> bool:
        recorder = self._recorder
        record = self.record
        record.elapsed = recorder._clock() - recorder._epoch - record.start
        # Tolerate exceptions unwinding through nested spans: pop up to and
        # including this span so the stack stays well-nested.
        stack = recorder._stack
        while stack:
            if stack.pop() is record:
                break
        return False

    def annotate(self, **attributes: object) -> None:
        """Attach key/value attributes to this span (callable after exit —
        useful when the values are only known once the work is done)."""
        self.record.attributes.update(attributes)


class TraceRecorder(Recorder):
    """Captures hierarchical timed spans and named counters.

    ``spans`` holds the completed top-level spans; ``counters`` the
    tallies incremented outside any span.  Spans are well-nested by
    construction: they are context managers pushed onto a stack, so a
    child always opens after and closes before its parent.

    The recorder is **thread-safe**: the span stack is *per thread*
    (:class:`threading.local`), so concurrent readers sharing one
    recorder — the query service traces every request through the
    session's recorder — each build their own well-nested span tree, and
    a span opened in one thread never becomes the accidental parent of
    another thread's work.  The shared structures (the top-level
    ``spans`` list and the span-less ``counters`` map) are guarded by one
    lock; per-span counter/attribute mutation needs no lock because a
    span's innermost-open window belongs to exactly one thread.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._local = threading.local()
        self._lock = threading.Lock()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}

    @property
    def _stack(self) -> list[SpanRecord]:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _adopt_root(self, record: SpanRecord) -> None:
        """Append a top-level span to the shared list (lock-guarded: many
        threads may open root spans concurrently)."""
        with self._lock:
            self.spans.append(record)

    def span(self, name: str, **attributes: object) -> _Span:
        return _Span(self, SpanRecord(name, 0.0, attributes=attributes))

    def count(self, name: str, amount: float = 1) -> None:
        stack = self._stack
        if stack:
            # The innermost open span of *this* thread: single-owner by
            # construction, so plain dict mutation is safe.
            counters = stack[-1].counters
            counters[name] = counters.get(name, 0) + amount
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    @property
    def elapsed(self) -> float:
        """Seconds since this recorder was created."""
        return self._clock() - self._epoch

    def walk(self) -> Iterator[tuple[int, SpanRecord]]:
        """Yield ``(depth, span)`` over every recorded span, pre-order."""
        with self._lock:
            roots = list(self.spans)
        for span in roots:
            yield from span.walk()

    def counter_totals(self) -> dict[str, float]:
        """All counters aggregated across the whole trace, sorted by name."""
        with self._lock:
            totals = dict(self.counters)
        for _, span in self.walk():
            for name, amount in span.counters.items():
                totals[name] = totals.get(name, 0) + amount
        return dict(sorted(totals.items()))

    def find(self, name: str) -> SpanRecord | None:
        """The first recorded span with the given name, if any."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder({len(self.spans)} top-level spans, "
            f"{len(self.counter_totals())} counters)"
        )
