"""``repro.obs`` — low-overhead engine instrumentation.

One telemetry vocabulary for the whole pipeline: hierarchical timed
**spans** and named **counters**, captured by a :class:`TraceRecorder`
(or discarded at near-zero cost by the default :class:`NullRecorder`),
exportable as JSONL traces or human-readable span-tree tables.

Entry points accept ``recorder=`` throughout the stack —
``solve_configured``, ``build_context`` / ``stream_relevant_ground``,
``modular_well_founded``, ``IncrementalEngine``, ``KnowledgeBase`` — and
the CLI surfaces the subsystem as ``repro profile`` and ``--trace-out``.
"""

from .export import (
    REQUIRED_SPAN_KEYS,
    TRACE_SCHEMA_VERSION,
    phase_coverage,
    render_counters,
    render_span_tree,
    trace_records,
    write_trace_jsonl,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
    TraceRecorder,
    ensure_recorder,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "ensure_recorder",
    "TRACE_SCHEMA_VERSION",
    "REQUIRED_SPAN_KEYS",
    "trace_records",
    "write_trace_jsonl",
    "render_span_tree",
    "render_counters",
    "phase_coverage",
]
