"""Unit tests for dependency graphs (Definition 8.3's graph)."""

from repro.analysis.dependency import ArcPolarity, build_dependency_graph
from repro.datalog.parser import parse_program


class TestArcs:
    def test_positive_and_negative_arcs(self):
        graph = build_dependency_graph(parse_program("p :- q, not r."))
        assert graph.polarity("p", "q") is ArcPolarity.POSITIVE
        assert graph.polarity("p", "r") is ArcPolarity.NEGATIVE

    def test_mixed_arc_in_one_rule(self):
        graph = build_dependency_graph(parse_program("p :- q, not q."))
        assert graph.polarity("p", "q") is ArcPolarity.MIXED

    def test_mixed_arc_across_rules(self):
        graph = build_dependency_graph(parse_program("p :- q. p :- not q."))
        assert graph.polarity("p", "q") is ArcPolarity.MIXED

    def test_polarity_merge(self):
        assert ArcPolarity.POSITIVE.merge(ArcPolarity.POSITIVE) is ArcPolarity.POSITIVE
        assert ArcPolarity.POSITIVE.merge(ArcPolarity.NEGATIVE) is ArcPolarity.MIXED

    def test_nodes_include_body_only_predicates(self):
        graph = build_dependency_graph(parse_program("p :- q."))
        assert {"p", "q"} <= graph.nodes

    def test_idb_only_skips_edb(self):
        program = parse_program("e(1, 2). p(X) :- e(X, Y), not q(Y). q(X) :- e(X, X).")
        graph = build_dependency_graph(program, idb_only=True)
        assert graph.polarity("p", "e") is None
        assert graph.polarity("p", "q") is ArcPolarity.NEGATIVE

    def test_successors_and_predecessors(self):
        graph = build_dependency_graph(parse_program("p :- q, not r. q :- s."))
        assert graph.successors("p") == {"q", "r"}
        assert graph.predecessors("q") == {"p"}

    def test_has_negative_arc(self):
        assert build_dependency_graph(parse_program("p :- not q.")).has_negative_arc()
        assert not build_dependency_graph(parse_program("p :- q.")).has_negative_arc()


class TestSccAndCycles:
    def test_sccs_of_mutual_recursion(self):
        graph = build_dependency_graph(parse_program("p :- q. q :- p. r :- p."))
        components = graph.strongly_connected_components()
        assert {"p", "q"} in components
        assert {"r"} in components

    def test_scc_order_is_callees_first(self):
        graph = build_dependency_graph(parse_program("a :- b. b :- c. c :- d."))
        components = graph.strongly_connected_components()
        order = {next(iter(c)): i for i, c in enumerate(components)}
        assert order["d"] < order["c"] < order["b"] < order["a"]

    def test_negative_cycle_detection(self):
        graph = build_dependency_graph(parse_program("wins(X) :- move(X, Y), not wins(Y)."))
        assert graph.negative_cycle_predicates() == {"wins"}

    def test_negative_self_loop(self):
        graph = build_dependency_graph(parse_program("p :- not p."))
        assert graph.negative_cycle_predicates() == {"p"}

    def test_positive_cycle_is_not_flagged(self):
        graph = build_dependency_graph(parse_program("p :- q. q :- p."))
        assert graph.negative_cycle_predicates() == set()

    def test_negative_arc_between_components_is_fine(self):
        graph = build_dependency_graph(parse_program("p :- not q. q :- r."))
        assert graph.negative_cycle_predicates() == set()

    def test_reachable_from(self):
        graph = build_dependency_graph(parse_program("a :- b. b :- c. d :- a."))
        assert graph.reachable_from("a") == {"a", "b", "c"}
        assert graph.reachable_from("c") == {"c"}


class TestAtomDependencyGraph:
    def _graph(self, text):
        from repro.analysis.dependency import build_atom_dependency_graph

        return build_atom_dependency_graph(parse_program(text))

    def test_arcs_and_polarity(self):
        from repro.datalog.atoms import Atom

        graph = self._graph("p :- q, not r.")
        p, q, r = Atom("p"), Atom("q"), Atom("r")
        assert graph.polarity(p, q) is ArcPolarity.POSITIVE
        assert graph.polarity(p, r) is ArcPolarity.NEGATIVE
        assert graph.polarity(q, p) is None
        assert set(graph.successors(p)) == {q, r}

    def test_mixed_polarity_merges(self):
        from repro.datalog.atoms import Atom

        graph = self._graph("p :- q. p :- not q.")
        assert graph.polarity(Atom("p"), Atom("q")) is ArcPolarity.MIXED
        assert graph.has_negative_arc()

    def test_distinct_ground_atoms_are_distinct_nodes(self):
        from repro.analysis.dependency import build_atom_dependency_graph
        from repro.core.context import build_context
        from repro.datalog.atoms import ground_atom

        context = build_context(
            parse_program("e(1, 2). e(2, 1). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
        )
        graph = build_atom_dependency_graph(context)
        # Atom-level granularity: t(1, 2) depends on e(1, 2) but not on e(2, 2).
        t12 = ground_atom("t", 1, 2)
        assert graph.polarity(t12, ground_atom("e", 1, 2)) is ArcPolarity.POSITIVE
        assert graph.polarity(t12, ground_atom("e", 2, 2)) is None

    def test_sccs_callees_first(self):
        from repro.datalog.atoms import Atom

        graph = self._graph("p :- q. q :- p. r :- p.")
        components = graph.strongly_connected_components()
        loop = {Atom("p"), Atom("q")}
        assert loop in components
        assert components.index(loop) < components.index({Atom("r")})
        assert graph.condensation_order() == components

    def test_negative_cycle_atoms(self):
        from repro.datalog.atoms import Atom

        graph = self._graph("p :- not q. q :- not p. r :- p.")
        assert graph.negative_cycle_atoms() == {Atom("p"), Atom("q")}
        assert graph.negative_arc_within({Atom("p"), Atom("q")})
        assert not graph.negative_arc_within({Atom("r"), Atom("p")})

    def test_acyclic_negation_has_no_offenders(self):
        graph = self._graph("p :- not q. q :- not r. r.")
        assert graph.negative_cycle_atoms() == set()

    def test_context_build_includes_isolated_base_atoms(self):
        from repro.analysis.dependency import build_atom_dependency_graph
        from repro.core.context import build_context
        from repro.datalog.atoms import Atom

        context = build_context(parse_program("p :- q."), extra_atoms=[Atom("lonely")])
        graph = build_atom_dependency_graph(context)
        assert Atom("lonely") in graph.nodes
        assert {Atom("lonely")} in graph.strongly_connected_components()

    def test_context_and_program_builds_agree(self):
        from repro.analysis.dependency import build_atom_dependency_graph
        from repro.core.context import build_context

        program = parse_program("a. p :- a, not q. q :- p. r :- not p, not r.")
        from_program = build_atom_dependency_graph(program)
        from_context = build_atom_dependency_graph(build_context(program))
        assert from_program.nodes == from_context.nodes
        assert {
            (s, t, p) for s, t, p in from_program.arcs()
        } == {(s, t, p) for s, t, p in from_context.arcs()}

    def test_non_ground_program_rejected(self):
        import pytest

        from repro.analysis.dependency import build_atom_dependency_graph
        from repro.exceptions import NotGroundError

        with pytest.raises(NotGroundError):
            build_atom_dependency_graph(parse_program("p(X) :- q(X)."))


class TestSharedTarjan:
    def test_generic_tarjan_on_plain_graph(self):
        from repro.analysis.dependency import tarjan_scc

        adjacency = {1: [2], 2: [3], 3: [1], 4: [3]}
        components = tarjan_scc([1, 2, 3, 4], adjacency)
        assert {1, 2, 3} in components and {4} in components
        assert components.index({1, 2, 3}) < components.index({4})

    def test_predicate_graph_still_uses_it(self):
        graph = build_dependency_graph(parse_program("p :- q. q :- p. r :- q."))
        components = graph.strongly_connected_components()
        assert {"p", "q"} in components and {"r"} in components
